//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop.
//! Results are printed as mean time per iteration (and derived throughput
//! when declared); there is no statistical analysis, HTML report, or
//! baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work declared per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter (`name/param`).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter (common inside groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement loop.
pub struct Bencher {
    /// Target number of timed samples.
    sample_size: usize,
    /// Mean duration of one iteration, recorded by `iter`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and rough calibration: one untimed call.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        // Cap total measurement near 200ms so `cargo bench` stays usable.
        let budget = Duration::from_millis(200);
        let fit = (budget.as_nanos() / once.as_nanos()).max(1) as usize;
        let iters = self.sample_size.min(fit).max(1);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; we have none).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 100 }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; accepted for compatibility.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None, sample_size }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name, sample_size, None, f);
        self
    }

    fn run_one<F>(
        &mut self,
        label: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { sample_size, mean: Duration::ZERO };
        f(&mut bencher);
        let mean = bencher.mean;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.3e} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.3e} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{label:<60} time: {}{rate}", format_duration(mean));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_positive_mean() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| std::hint::black_box((0..n).sum::<u64>()));
        });
        group.bench_function("plain", |b| b.iter(|| std::hint::black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).id, "10");
    }
}
