//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies: an exact length, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_all_size_forms() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            assert_eq!(vec(0u32..5, 4).gen_value(&mut rng).len(), 4);
            let l = vec(0u32..5, 1..4).gen_value(&mut rng).len();
            assert!((1..4).contains(&l));
            let l = vec(0u32..5, 2..=6).gen_value(&mut rng).len();
            assert!((2..=6).contains(&l));
        }
    }

    #[test]
    fn elements_come_from_element_strategy() {
        let mut rng = TestRng::from_seed(10);
        for v in vec(10u32..12, 0..8).gen_value(&mut rng) {
            assert!((10..12).contains(&v));
        }
    }
}
