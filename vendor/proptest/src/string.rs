//! String generation from a small regex subset.
//!
//! String literals used as strategies (e.g. `"k[0-9a-f]{1,6}"`) are parsed
//! as patterns built from:
//!
//! - literal characters;
//! - `.` (any printable, non-newline character);
//! - character classes `[a-z0-9_]` (ranges and singletons, no negation);
//! - escapes `\d` `\w` `\s` `\PC` (printable, i.e. not a control character)
//!   and escaped metacharacters (`\.`, `\\`, ...);
//! - quantifiers `{n}`, `{m,n}`, `*` (0–16), `+` (1–16), `?`.
//!
//! Unsupported constructs (groups, alternation, anchors, negated classes)
//! panic, so misuse is loud rather than silently wrong.

use rand::RngExt;

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum CharSet {
    Literal(char),
    /// `.`: printable, excluding line terminators.
    AnyPrintable,
    /// `\PC`: any character that is not a control character.
    NotControl,
    Digit,
    Word,
    Space,
    /// Explicit `[...]` class: (lo, hi) inclusive ranges.
    Ranges(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let reps = rng.random_range(atom.min..=atom.max);
        for _ in 0..reps {
            out.push(sample_char(&atom.set, rng));
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::AnyPrintable
            }
            '\\' => {
                i += 1;
                let c =
                    *chars.get(i).unwrap_or_else(|| panic!("trailing backslash in {pattern:?}"));
                i += 1;
                match c {
                    'd' => CharSet::Digit,
                    'w' => CharSet::Word,
                    's' => CharSet::Space,
                    'P' | 'p' => {
                        // Unicode category: we support \PC / \p{C}-style "not
                        // control" only, the single form the suite uses.
                        let class = if chars.get(i) == Some(&'{') {
                            let end = chars[i..]
                                .iter()
                                .position(|&c| c == '}')
                                .unwrap_or_else(|| panic!("unclosed {{ in {pattern:?}"));
                            let name: String = chars[i + 1..i + end].iter().collect();
                            i += end + 1;
                            name
                        } else {
                            let c = *chars
                                .get(i)
                                .unwrap_or_else(|| panic!("truncated \\P in {pattern:?}"));
                            i += 1;
                            c.to_string()
                        };
                        assert!(
                            class == "C" || class == "Cc",
                            "unsupported unicode class \\P{{{class}}} in {pattern:?}"
                        );
                        CharSet::NotControl
                    }
                    // Escaped literal / metacharacter.
                    other => CharSet::Literal(other),
                }
            }
            '[' => {
                i += 1;
                assert!(
                    chars.get(i) != Some(&'^'),
                    "negated classes are unsupported in {pattern:?}"
                );
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(chars.get(i) == Some(&']'), "unclosed [ in {pattern:?}");
                i += 1;
                assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                CharSet::Ranges(ranges)
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex construct {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in {pattern:?}"));
                let body: String = chars[i + 1..i + end].iter().collect();
                i += end + 1;
                match body.split_once(',') {
                    None => {
                        let n: u32 = body
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in {pattern:?}"));
                        (n, n)
                    }
                    Some((lo, hi)) => {
                        let lo: u32 = lo
                            .parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in {pattern:?}"));
                        let hi: u32 = if hi.is_empty() {
                            lo + 16
                        } else {
                            hi.parse().unwrap_or_else(|_| {
                                panic!("bad quantifier {{{body}}} in {pattern:?}")
                            })
                        };
                        assert!(lo <= hi, "inverted quantifier {{{body}}} in {pattern:?}");
                        (lo, hi)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn sample_char(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Literal(c) => *c,
        CharSet::Digit => char::from(rng.random_range(b'0'..=b'9')),
        CharSet::Space => *[' ', '\t'].get(rng.random_range(0..2usize)).unwrap(),
        CharSet::Word => {
            let pools: [(char, char); 4] = [('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')];
            let (lo, hi) = pools[rng.random_range(0..pools.len())];
            char::from_u32(rng.random_range(lo as u32..=hi as u32)).unwrap()
        }
        CharSet::AnyPrintable | CharSet::NotControl => {
            // Mostly printable ASCII, with occasional wider unicode scalars to
            // exercise escaping paths.
            if rng.random_range(0..10u32) < 8 {
                char::from(rng.random_range(0x20u8..0x7F))
            } else {
                loop {
                    let v = rng.random_range(0xA0u32..=0x2FFFF);
                    if let Some(c) = char::from_u32(v) {
                        if !c.is_control() {
                            return c;
                        }
                    }
                }
            }
        }
        CharSet::Ranges(ranges) => {
            let (lo, hi) = ranges[rng.random_range(0..ranges.len())];
            loop {
                if let Some(c) = char::from_u32(rng.random_range(lo as u32..=hi as u32)) {
                    return c;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_prefix_matches() {
        let mut rng = TestRng::from_seed(21);
        for _ in 0..200 {
            let s = generate_matching("k[0-9a-f]{1,6}", &mut rng);
            assert!(s.starts_with('k'));
            assert!((2..=7).contains(&s.len()));
            assert!(s[1..].chars().all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
        }
    }

    #[test]
    fn dot_quantifier_bounds_length() {
        let mut rng = TestRng::from_seed(22);
        for _ in 0..200 {
            let s = generate_matching(".{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn not_control_star_generates_clean_strings() {
        let mut rng = TestRng::from_seed(23);
        let mut nonempty = false;
        for _ in 0..200 {
            let s = generate_matching("\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
            nonempty |= !s.is_empty();
        }
        assert!(nonempty);
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn groups_are_rejected() {
        let mut rng = TestRng::from_seed(24);
        generate_matching("(ab)+", &mut rng);
    }
}
