//! Test-execution support: configuration, case-level errors, and the
//! deterministic generator handed to strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Outcome of a single generated case (other than success).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was skipped (`prop_assume!` failed); it does not count.
    Reject(String),
    /// The property failed for this case.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The generator strategies draw from.
///
/// Seeded deterministically from the test name (FNV-1a), or from
/// `PROPTEST_SEED` when set, so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok()) {
            Some(s) => s ^ fnv1a(name),
            None => fnv1a(name),
        };
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// A generator from an explicit seed (used by strategy unit tests).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
