//! `any::<T>()` — default strategies per type.

use rand::{Rng, RngExt};
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Arbitrary bit patterns: covers subnormals, huge magnitudes, NaN and
    /// infinities (callers filter what they need).
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.random_range(0u32..=0x10FFFF)) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_eventually_generates_finite_and_nonfinite() {
        let mut rng = TestRng::from_seed(31);
        let mut finite = false;
        let mut nonfinite = false;
        // Non-finite patterns (exponent all ones) are ~1/2048 of the space;
        // 100k draws make missing them astronomically unlikely.
        for _ in 0..100_000 {
            let x = any::<f64>().gen_value(&mut rng);
            if x.is_finite() {
                finite = true;
            } else {
                nonfinite = true;
            }
        }
        assert!(finite && nonfinite);
    }

    #[test]
    fn u64_spans_wide_range() {
        let mut rng = TestRng::from_seed(32);
        let mut high = false;
        let mut low = false;
        for _ in 0..1000 {
            let v = any::<u64>().gen_value(&mut rng);
            if v > u64::MAX / 2 {
                high = true;
            } else {
                low = true;
            }
        }
        assert!(high && low);
    }
}
