//! The [`Strategy`] trait, combinators, and primitive strategies.
//!
//! A strategy here is simply a value generator: `gen_value` draws one value
//! from the strategy's distribution using the deterministic [`TestRng`].
//! Shrinking is intentionally not implemented.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::RngExt;

use crate::test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (regenerating on mismatch).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }

    /// Builds recursive structures: `recurse` receives a strategy for the
    /// substructure and returns a strategy for one level above it. `depth`
    /// bounds the nesting; the other two parameters (upstream's desired size
    /// and expected branch factor) are accepted for signature compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At every level, mix leaves back in so shallow values stay common.
            let deeper = recurse(current).boxed();
            current =
                WeightedUnion { choices: vec![(2, leaf.clone()), (3, deeper)], total: 5 }.boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.gen_value(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive values", self.whence);
    }
}

/// Uniform choice among strategies of the same value type (`prop_oneof!`).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    #[must_use]
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one strategy");
        Union { choices }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { choices: self.choices.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.choices.len());
        self.choices[i].gen_value(rng)
    }
}

/// Weighted choice (used internally by `prop_recursive`).
struct WeightedUnion<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.choices {
            if pick < *w {
                return s.gen_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted");
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, booleans, tuples, regex-pattern strings.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Strategy for bool {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> bool {
        // `bool` as a strategy means "any bool" (matches proptest's Arbitrary).
        rng.random::<bool>()
    }
}

/// A string literal is a regex-style pattern strategy producing matching
/// strings (see [`crate::string`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3usize..9).gen_value(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.75).gen_value(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (2u32..=4).gen_value(&mut rng);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0).prop_map(|v| v + 1);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!(v % 2 == 1 && v < 101);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_seed(3);
        let s = Union::new(vec![Just(0u32).boxed(), Just(1u32).boxed()]);
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::from_seed(4);
        let strat = Just(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 4);
            if matches!(t, Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion should sometimes branch");
    }
}
