//! The common imports: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// The `prop` module alias upstream exposes (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
