//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the slice of the proptest API the suite uses: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive`, range and tuple strategies,
//! [`collection::vec`], regex-pattern string strategies, `any::<T>()`, and the
//! `proptest!` / `prop_assert!` / `prop_assume!` / `prop_oneof!` macros.
//!
//! Differences from upstream: failing cases are reported but **not shrunk**,
//! and the default case count is 64 (override with `PROPTEST_CASES` or
//! `ProptestConfig::with_cases`). Generation is deterministic per test name
//! unless `PROPTEST_SEED` is set.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// item becomes a `#[test]` that runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __strategies = ($($strat,)+);
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest '{}': too many rejected cases ({} attempts for {} accepted)",
                        stringify!($name),
                        __attempts,
                        __accepted,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::gen_value(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}: {}",
                                stringify!($name),
                                __accepted,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right` (left: {:?}, right: {:?})", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right` (left: {:?}, right: {:?}): {}",
                    l,
                    r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right` (both: {:?})",
                l
            )));
        }
    }};
}

/// Skips the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Picks uniformly among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
