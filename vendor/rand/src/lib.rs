//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand` API the suite actually uses:
//!
//! - [`Rng`]: the core generator trait (`next_u32`/`next_u64`/`fill_bytes`);
//! - [`RngExt`]: blanket extension with `random`, `random_range`, and
//!   `random_bool` (the value-level sampling surface);
//! - [`SeedableRng`]: `from_seed` / `seed_from_u64` / `try_from_rng`;
//! - [`rngs::StdRng`]: a deterministic xoshiro256** generator;
//! - [`rngs::SysRng`]: an OS-entropy-derived generator for unseeded use;
//! - [`seq::SliceRandom`]: Fisher–Yates `shuffle` and `choose`.
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64, which passes the
//! statistical tolerances the test suite asserts (moment, CDF, and χ²
//! checks on tens of thousands of draws).

use std::ops::{Range, RangeInclusive};

/// Error type for fallible generator construction ([`SeedableRng::try_from_rng`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) &'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from its "standard" distribution:
/// `[0, 1)` for floats, a fair coin for `bool`, the full range for integers.
pub trait StandardValue {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for u128 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// A range a value can be drawn from uniformly (argument to
/// [`RngExt::random_range`]).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(span, rng) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                start + (uniform_u64_below(span, rng) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Compute the span in the unsigned counterpart: a direct
                // `as u64` would sign-extend when the signed subtraction
                // wraps (e.g. `-2i32..i32::MAX`).
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64_below(span, rng) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == <$u>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(span + 1, rng) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform draw from `[0, span)` by rejection (avoids modulo bias).
fn uniform_u64_below<R: Rng + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject draws past the largest multiple of `span` to avoid modulo bias.
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let x = rng.next_u64();
        if x < limit {
            return x % span;
        }
    }
}

/// Value-level sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value from the type's standard distribution
    /// (`[0, 1)` for floats, fair coin for `bool`).
    fn random<T: StandardValue>(&mut self) -> T {
        T::standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        f64::standard(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Builds a generator by drawing a seed from another generator.
    fn try_from_rng<R: Rng + ?Sized>(rng: &mut R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// SplitMix64: seed expander (Vigna, 2015).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Error, Rng, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; rescue it.
            if s == [0, 0, 0, 0] {
                let mut sm = SplitMix64(0x9E37_79B9_7F4A_7C15);
                for slot in &mut s {
                    *slot = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// An OS-entropy generator for unseeded use.
    ///
    /// Entropy comes from the standard library's `RandomState` (which itself
    /// draws OS randomness at process start), mixed with the monotonic clock,
    /// so repeated constructions diverge. Usable as a unit value:
    /// `StdRng::try_from_rng(&mut SysRng)`.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct SysRng;

    impl Rng for SysRng {
        fn next_u64(&mut self) -> u64 {
            use std::hash::{BuildHasher, Hasher};
            use std::time::{SystemTime, UNIX_EPOCH};
            let h = std::collections::hash_map::RandomState::new().build_hasher();
            let clock = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0);
            let mut sm = SplitMix64(h.finish() ^ clock.rotate_left(17));
            sm.next()
        }
    }

    impl SysRng {
        /// Fallibly draws entropy (always succeeds on supported platforms).
        pub fn try_next_u64(&mut self) -> Result<u64, Error> {
            Ok(self.next_u64())
        }
    }
}

pub mod seq {
    //! Sequence-related randomisation.

    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range_with_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_sampling_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            let frac = f64::from(c) / 50_000.0;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.random_range(1..=3u32) {
                1 => lo_seen = true,
                3 => hi_seen = true,
                2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn signed_ranges_stay_in_bounds_even_when_span_wraps() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut below_mid = false;
        let mut above_mid = false;
        for _ in 0..2000 {
            // Span overflows i32: a sign-extending bug would leave the range.
            let v = rng.random_range(-2i32..i32::MAX);
            assert!((-2..i32::MAX).contains(&v));
            if v < i32::MAX / 2 {
                below_mid = true;
            } else {
                above_mid = true;
            }
            let w = rng.random_range(i8::MIN..=i8::MAX);
            let _: i8 = w; // full inclusive range must not panic
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
        assert!(below_mid && above_mid, "wide range must cover both halves");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sys_rng_seeds_distinct_generators() {
        let mut a = StdRng::try_from_rng(&mut super::rngs::SysRng).unwrap();
        let mut b = StdRng::try_from_rng(&mut super::rngs::SysRng).unwrap();
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb, "OS-entropy generators should diverge");
    }
}
