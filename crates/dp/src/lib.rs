//! Differential-privacy primitives for the PrivBayes reproduction.
//!
//! Implements the two mechanisms the paper relies on (§2.1):
//!
//! * the **Laplace mechanism** ([`laplace`]) for numeric releases, used by
//!   PrivBayes' distribution-learning phase and most baselines;
//! * the **exponential mechanism** ([`exponential`]) for categorical
//!   selections, used by the network-learning phase;
//! * the **geometric mechanism** ([`geometric`]) — the discrete analogue of
//!   Laplace for count-scale releases, used by the noise-distribution
//!   ablation;
//!
//! plus [`budget`] (sequential-composition accounting, Theorem 3.2),
//! [`stats`] (Gaussian/Gamma/Dirichlet samplers needed by substrates such as
//! PrivateERM's noise vector and the synthetic-dataset generators — the
//! offline crate set has no `rand_distr`), and [`alias`] (compiled O(1)
//! discrete sampling for the synthesis hot loop).

pub mod alias;
pub mod budget;
pub mod error;
pub mod exponential;
pub mod geometric;
pub mod laplace;
pub mod stats;

pub use alias::AliasTable;
pub use budget::{BudgetSplit, PrivacyBudget};
pub use error::DpError;
pub use exponential::exponential_mechanism;
pub use geometric::{geometric_mechanism, sample_two_sided_geometric};
pub use laplace::{laplace_mechanism, sample_laplace};
