//! The geometric mechanism (two-sided / discrete Laplace).
//!
//! For integer-valued queries the geometric mechanism adds noise drawn from
//! the two-sided geometric distribution
//! `Pr[η = k] = (1 − α)/(1 + α) · α^|k|` with `α = exp(−ε/Δ)`, which is
//! ε-DP for Δ-sensitivity counting queries and is the discrete analogue of
//! `Lap(Δ/ε)`. PrivBayes itself perturbs probability-scale marginals with
//! continuous Laplace noise (Algorithm 1); the geometric mechanism is the
//! natural alternative when marginals are released on the *count* scale, and
//! the `ablation_noise` bench compares the two head to head.

use rand::{Rng, RngExt};

use crate::error::DpError;

/// Draws one sample from the two-sided geometric distribution with parameter
/// `alpha = exp(−ε/Δ) ∈ (0, 1)`.
///
/// Sampling is by inverse CDF on the magnitude: `|η|` is geometric with
/// `Pr[|η| = 0] = (1 − α)/(1 + α)` and `Pr[|η| = k] = 2α^k·(1 − α)/(1 + α)`
/// for `k ≥ 1`; the sign is uniform given `|η| > 0`.
///
/// # Panics
/// Panics if `alpha` is outside `(0, 1)` (programming error; public entry
/// points validate first).
pub fn sample_two_sided_geometric<R: Rng + ?Sized>(alpha: f64, rng: &mut R) -> i64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1), got {alpha}");
    // Invert the CDF of the signed distribution directly: map u ∈ [0,1) onto
    // the two tails. Using the magnitude representation keeps the math exact:
    //   Pr[|η| ≥ k] = 2α^k/(1+α) for k ≥ 1.
    let u: f64 = rng.random();
    let p0 = (1.0 - alpha) / (1.0 + alpha);
    if u < p0 {
        return 0;
    }
    // Remaining mass is split evenly between the two signs; fold u into one
    // geometric tail.
    let v = (u - p0) / (1.0 - p0); // uniform in [0,1)
    let sign = if v < 0.5 { -1 } else { 1 };
    // Fold v back onto [0,1); then |η| = k ≥ 1 with Pr[k] ∝ α^k(1−α) is a
    // shifted geometric: P(|η| > k | |η| ≥ 1) = α^k ⇒ k = 1 + floor(ln(w)/ln(α)).
    let w = if v < 0.5 { v * 2.0 } else { (v - 0.5) * 2.0 };
    let tail = 1 + (w.max(f64::MIN_POSITIVE).ln() / alpha.ln()).floor() as i64;
    sign * tail.max(1)
}

/// Adds i.i.d. two-sided geometric noise calibrated to `(sensitivity, epsilon)`
/// to every count in place.
///
/// Counts may go negative; callers release them as-is or post-process with
/// the usual non-negativity step (post-processing preserves ε-DP).
///
/// # Errors
/// Returns [`DpError::InvalidParameter`] if `epsilon` is not strictly positive
/// and finite, or `sensitivity` is zero.
pub fn geometric_mechanism<R: Rng + ?Sized>(
    counts: &mut [i64],
    sensitivity: u64,
    epsilon: f64,
    rng: &mut R,
) -> Result<(), DpError> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(DpError::InvalidParameter(format!("epsilon must be positive, got {epsilon}")));
    }
    if sensitivity == 0 {
        return Err(DpError::InvalidParameter("sensitivity must be at least 1".into()));
    }
    let alpha = (-epsilon / sensitivity as f64).exp();
    for c in counts {
        *c += sample_two_sided_geometric(alpha, rng);
    }
    Ok(())
}

/// The probability mass `Pr[η = k]` of the two-sided geometric distribution
/// (used in tests and documentation).
#[must_use]
pub fn geometric_pmf(k: i64, alpha: f64) -> f64 {
    (1.0 - alpha) / (1.0 + alpha) * alpha.powi(k.unsigned_abs().min(i32::MAX as u64) as i32)
}

/// Standard deviation of the two-sided geometric distribution,
/// `sqrt(2α)/(1 − α)` — compare `sqrt(2)·λ` for `Lap(λ)`.
#[must_use]
pub fn geometric_std(alpha: f64) -> f64 {
    (2.0 * alpha).sqrt() / (1.0 - alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        for alpha in [0.1, 0.5, 0.9] {
            let total: f64 = (-500..=500).map(|k| geometric_pmf(k, alpha)).sum();
            assert!((total - 1.0).abs() < 1e-12, "alpha={alpha}: total={total}");
        }
    }

    #[test]
    fn empirical_pmf_matches_theory() {
        let alpha: f64 = (-0.5f64).exp(); // ε = 0.5, Δ = 1
        let mut rng = StdRng::seed_from_u64(1);
        let m = 400_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..m {
            *counts.entry(sample_two_sided_geometric(alpha, &mut rng)).or_insert(0usize) += 1;
        }
        for k in -3..=3i64 {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / m as f64;
            let theory = geometric_pmf(k, alpha);
            assert!(
                (emp - theory).abs() < 0.004,
                "k={k}: empirical {emp:.4} vs theory {theory:.4}"
            );
        }
    }

    #[test]
    fn distribution_is_symmetric() {
        let alpha = 0.7;
        let mut rng = StdRng::seed_from_u64(2);
        let m = 200_000;
        let mean: f64 =
            (0..m).map(|_| sample_two_sided_geometric(alpha, &mut rng) as f64).sum::<f64>()
                / m as f64;
        assert!(mean.abs() < 0.05, "mean {mean} should be ~0");
    }

    #[test]
    fn empirical_std_matches_formula() {
        let alpha: f64 = (-0.2f64).exp();
        let mut rng = StdRng::seed_from_u64(3);
        let m = 200_000;
        let samples: Vec<f64> =
            (0..m).map(|_| sample_two_sided_geometric(alpha, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / m as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m as f64;
        let expected = geometric_std(alpha);
        assert!(
            (var.sqrt() - expected).abs() / expected < 0.02,
            "std {} vs expected {expected}",
            var.sqrt()
        );
    }

    #[test]
    fn privacy_ratio_holds_on_pmf() {
        // ε-DP for Δ=1 means Pr[η = k] / Pr[η = k+1] lies in [e^−ε, e^ε] for
        // all k: shifting the true count by one changes each output's
        // probability by at most e^ε. Verify on the pmf directly.
        let epsilon: f64 = 0.4;
        let alpha = (-epsilon).exp();
        for k in -50..=50i64 {
            let ratio = geometric_pmf(k, alpha) / geometric_pmf(k + 1, alpha);
            assert!(
                ratio <= epsilon.exp() + 1e-12 && ratio >= (-epsilon).exp() - 1e-12,
                "k={k}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn mechanism_perturbs_counts_and_preserves_type() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![100i64; 128];
        geometric_mechanism(&mut counts, 2, 0.5, &mut rng).unwrap();
        assert!(counts.iter().any(|&c| c != 100), "some cells must change");
        // Integrality is inherent: the noise is integer-valued by type.
    }

    #[test]
    fn mechanism_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0i64];
        assert!(geometric_mechanism(&mut counts, 1, 0.0, &mut rng).is_err());
        assert!(geometric_mechanism(&mut counts, 1, f64::NAN, &mut rng).is_err());
        assert!(geometric_mechanism(&mut counts, 0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn larger_epsilon_means_less_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let spread = |eps: f64, rng: &mut StdRng| {
            let alpha = (-eps).exp();
            (0..20_000).map(|_| sample_two_sided_geometric(alpha, rng).unsigned_abs()).sum::<u64>()
                as f64
                / 20_000.0
        };
        let noisy = spread(0.1, &mut rng);
        let tight = spread(2.0, &mut rng);
        assert!(noisy > tight * 3.0, "E|η| at ε=0.1 ({noisy}) must dwarf ε=2 ({tight})");
    }

    #[test]
    fn deterministic_under_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| sample_two_sided_geometric(0.6, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
    }
}
