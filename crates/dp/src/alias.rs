//! Walker/Vose alias tables: O(1) sampling from a fixed discrete
//! distribution after O(k) preprocessing.
//!
//! [`crate::stats::sample_discrete`] walks the weight vector on every draw —
//! fine for one-off selections, but ancestral sampling draws from the *same*
//! conditional slices n times. Compiling each slice into an [`AliasTable`]
//! turns every draw into one uniform variate, one comparison, and at most one
//! table lookup, independent of the domain size.

use rand::{Rng, RngExt};

/// A compiled discrete distribution (Vose's alias method).
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold per bucket, premultiplied by the bucket count:
    /// bucket `i` keeps a draw `u ∈ [i, i+1)` iff `u − i < prob[i]`.
    prob: Vec<f64>,
    /// Redirect target per bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Compiles non-negative `weights` (need not be normalised), or `None`
    /// if the weights are not a samplable distribution (empty, negative,
    /// non-finite, or zero-sum) — for callers that must tolerate degenerate
    /// slices instead of panicking.
    #[must_use]
    pub fn try_new(weights: &[f64]) -> Option<Self> {
        let samplable = !weights.is_empty()
            && weights.iter().all(|&w| w >= 0.0 && w.is_finite())
            && weights.iter().sum::<f64>() > 0.0;
        samplable.then(|| Self::new(weights))
    }

    /// Compiles non-negative `weights` (need not be normalised).
    ///
    /// # Panics
    /// Panics if `weights` is empty, longer than `u32::MAX`, contains
    /// negatives/NaN, or sums to 0 — the same contract as
    /// [`crate::stats::sample_discrete`].
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        let k = weights.len();
        assert!(k > 0, "no weights");
        assert!(u32::try_from(k).is_ok(), "too many weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative, got {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "weights sum to zero");

        // Scaled weights: mean 1. Buckets below 1 are "small" and get topped
        // up by an alias drawn from a "large" bucket.
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..k as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(&l)) = (small.pop(), large.last()) {
            alias[s as usize] = l;
            // The large bucket donates the deficit of the small one.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical residue: leftover buckets are exactly full.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table has no outcomes (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index: a single uniform variate selects both the bucket and
    /// the accept/redirect branch.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.random::<f64>() * self.prob.len() as f64;
        let i = (u as usize).min(self.prob.len() - 1);
        if u - (i as f64) < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::sample_discrete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies<F: FnMut() -> usize>(k: usize, trials: usize, mut draw: F) -> Vec<f64> {
        let mut counts = vec![0usize; k];
        for _ in 0..trials {
            counts[draw()] += 1;
        }
        counts.into_iter().map(|c| c as f64 / trials as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let w = [1.0, 3.0, 6.0, 0.0, 10.0];
        let table = AliasTable::new(&w);
        let mut rng = StdRng::seed_from_u64(1);
        let freq = frequencies(w.len(), 200_000, || table.sample(&mut rng));
        for (i, f) in freq.iter().enumerate() {
            let expected = w[i] / 20.0;
            assert!((f - expected).abs() < 0.01, "index {i}: {f} vs {expected}");
        }
    }

    #[test]
    fn matches_sample_discrete_statistically() {
        let w = [0.05, 0.2, 0.3, 0.45];
        let table = AliasTable::new(&w);
        let mut rng_a = StdRng::seed_from_u64(2);
        let mut rng_b = StdRng::seed_from_u64(3);
        let fa = frequencies(w.len(), 100_000, || table.sample(&mut rng_a));
        let fb = frequencies(w.len(), 100_000, || sample_discrete(&w, &mut rng_b));
        for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
            assert!((a - b).abs() < 0.01, "index {i}: alias {a} vs scan {b}");
        }
    }

    #[test]
    fn zero_weights_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[0.7]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn degenerate_near_one_hot() {
        // Tiny but non-zero mass must survive compilation.
        let w = [1e-12, 1.0];
        let table = AliasTable::new(&w);
        let mut rng = StdRng::seed_from_u64(6);
        let freq = frequencies(2, 100_000, || table.sample(&mut rng));
        assert!(freq[1] > 0.999);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn try_new_rejects_exactly_what_new_panics_on() {
        for degenerate in [&[][..], &[0.0, 0.0][..], &[0.5, -0.1][..], &[f64::NAN][..]] {
            assert!(AliasTable::try_new(degenerate).is_none(), "{degenerate:?}");
        }
        assert!(AliasTable::try_new(&[0.3, 0.7]).is_some());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = AliasTable::new(&[0.5, -0.1]);
    }

    #[test]
    #[should_panic(expected = "no weights")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }
}
