//! Auxiliary samplers: Gaussian, Gamma, Dirichlet, discrete.
//!
//! The offline crate set has no `rand_distr`, so the distributions needed by
//! the substrates are implemented here: Gaussian (polar Box–Muller), Gamma
//! (Marsaglia–Tsang squeeze), Dirichlet (normalised Gammas — used for the
//! ground-truth CPTs of the synthetic datasets), and discrete sampling from a
//! weight vector (used by ancestral sampling and PrivGene selection).

use rand::{Rng, RngExt};

/// One standard-normal sample via the polar (Marsaglia) Box–Muller method.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A `N(mean, std²)` sample.
///
/// # Panics
/// Panics if `std` is negative or non-finite.
pub fn sample_normal<R: Rng + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    assert!(std >= 0.0 && std.is_finite(), "std must be non-negative, got {std}");
    mean + std * sample_standard_normal(rng)
}

/// A `Gamma(shape, scale)` sample via Marsaglia–Tsang (2000), with the
/// standard `U^{1/shape}` boost for `shape < 1`.
///
/// # Panics
/// Panics if `shape` or `scale` is not strictly positive.
pub fn sample_gamma<R: Rng + ?Sized>(shape: f64, scale: f64, rng: &mut R) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "shape must be positive, got {shape}");
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive, got {scale}");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
        let g = sample_gamma(shape + 1.0, 1.0, rng);
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return scale * g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.random();
        // Squeeze then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return scale * d * v3;
        }
    }
}

/// A Dirichlet(α·1) sample of dimension `dim` (symmetric concentration).
///
/// # Panics
/// Panics if `dim == 0` or `alpha <= 0`.
pub fn sample_dirichlet_symmetric<R: Rng + ?Sized>(
    dim: usize,
    alpha: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(dim > 0, "dimension must be positive");
    let mut g: Vec<f64> = (0..dim).map(|_| sample_gamma(alpha, 1.0, rng)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        // Degenerate under extreme underflow: fall back to uniform.
        return vec![1.0 / dim as f64; dim];
    }
    for x in &mut g {
        *x /= sum;
    }
    g
}

/// Samples an index from non-negative `weights` (need not be normalised).
///
/// # Panics
/// Panics if `weights` is empty, contains negatives/NaN, or sums to 0.
pub fn sample_discrete<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "no weights");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0 && w.is_finite(), "weights must be non-negative, got {w}");
            w
        })
        .sum();
    assert!(total > 0.0, "weights sum to zero");
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// A point uniform on the unit sphere in `dim` dimensions (direction vector
/// for PrivateERM's noise term).
///
/// # Panics
/// Panics if `dim == 0`.
pub fn sample_unit_sphere<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<f64> {
    assert!(dim > 0, "dimension must be positive");
    loop {
        let v: Vec<f64> = (0..dim).map(|_| sample_standard_normal(rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let s: Vec<f64> = (0..200_000).map(|_| sample_normal(3.0, 2.0, &mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let (shape, scale) = (4.0, 0.5);
        let s: Vec<f64> = (0..200_000).map(|_| sample_gamma(shape, scale, &mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - shape * scale).abs() < 0.02, "mean {mean} vs {}", shape * scale);
        assert!((var - shape * scale * scale).abs() < 0.05, "var {var}");
        assert!(s.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let (shape, scale) = (0.5, 2.0);
        let s: Vec<f64> = (0..200_000).map(|_| sample_gamma(shape, scale, &mut rng)).collect();
        let (mean, _) = moments(&s);
        assert!((mean - shape * scale).abs() < 0.03, "mean {mean} vs {}", shape * scale);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_uniform_in_expectation() {
        let mut rng = StdRng::seed_from_u64(4);
        let dim = 5;
        let mut acc = vec![0.0; dim];
        let reps = 20_000;
        for _ in 0..reps {
            let p = sample_dirichlet_symmetric(dim, 1.0, &mut rng);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        for a in acc {
            assert!((a / reps as f64 - 0.2).abs() < 0.01);
        }
    }

    #[test]
    fn dirichlet_small_alpha_is_sparse() {
        let mut rng = StdRng::seed_from_u64(5);
        // With α = 0.05 most of the mass should concentrate in one cell.
        let mut max_mass = 0.0;
        for _ in 0..100 {
            let p = sample_dirichlet_symmetric(8, 0.05, &mut rng);
            max_mass += p.iter().copied().fold(0.0, f64::max);
        }
        assert!(max_mass / 100.0 > 0.8, "small-α Dirichlet should be near one-hot");
    }

    #[test]
    fn discrete_sampling_frequencies() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let trials = 100_000;
        for _ in 0..trials {
            counts[sample_discrete(&w, &mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = w[i] / 10.0;
            assert!((c as f64 / trials as f64 - expected).abs() < 0.01, "index {i}: {c}");
        }
    }

    #[test]
    fn discrete_skips_zero_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = sample_discrete(&[0.0, 1.0, 0.0], &mut rng);
            assert_eq!(i, 1);
        }
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn discrete_rejects_all_zero() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = sample_discrete(&[0.0, 0.0], &mut rng);
    }

    #[test]
    fn unit_sphere_norm_one() {
        let mut rng = StdRng::seed_from_u64(9);
        for dim in [1usize, 2, 10, 100] {
            let v = sample_unit_sphere(dim, &mut rng);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "dim {dim}: norm {norm}");
        }
    }

    #[test]
    fn unit_sphere_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(10);
        let dim = 3;
        let mut acc = vec![0.0; dim];
        let reps = 50_000;
        for _ in 0..reps {
            for (a, x) in acc.iter_mut().zip(sample_unit_sphere(dim, &mut rng)) {
                *a += x;
            }
        }
        for a in acc {
            assert!((a / reps as f64).abs() < 0.01);
        }
    }
}
