//! The Laplace mechanism (Dwork et al. \[19\]).
//!
//! `Lap(λ)` has pdf `(1/2λ)·exp(−|x|/λ)`; adding `Lap(S(F)/ε)` noise to each
//! coordinate of a function with L1-sensitivity `S(F)` yields ε-DP.

use rand::{Rng, RngExt};

use crate::error::DpError;

/// Draws one sample from `Lap(scale)` by inverse-CDF transform.
///
/// # Panics
/// Panics if `scale` is not strictly positive (programming error; public
/// entry points validate first).
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(scale > 0.0 && scale.is_finite(), "Laplace scale must be positive, got {scale}");
    // u uniform in (-0.5, 0.5]; the open lower end avoids ln(0).
    let u: f64 = rng.random::<f64>() - 0.5;
    let sign = if u < 0.0 { -1.0 } else { 1.0 };
    -scale * sign * (1.0 - 2.0 * u.abs()).ln()
}

/// Adds i.i.d. `Lap(sensitivity/epsilon)` noise to every value in place.
///
/// # Errors
/// Returns [`DpError::InvalidParameter`] if `epsilon` or `sensitivity` is not
/// strictly positive and finite.
pub fn laplace_mechanism<R: Rng + ?Sized>(
    values: &mut [f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<(), DpError> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(DpError::InvalidParameter(format!("epsilon must be positive, got {epsilon}")));
    }
    if !(sensitivity > 0.0 && sensitivity.is_finite()) {
        return Err(DpError::InvalidParameter(format!(
            "sensitivity must be positive, got {sensitivity}"
        )));
    }
    let scale = sensitivity / epsilon;
    for v in values {
        *v += sample_laplace(scale, rng);
    }
    Ok(())
}

/// The pdf of `Lap(scale)` at `x` (used in tests and documentation).
#[must_use]
pub fn laplace_pdf(x: f64, scale: f64) -> f64 {
    (-(x.abs()) / scale).exp() / (2.0 * scale)
}

/// Expected absolute value of `Lap(scale)` — the paper's "average scale of
/// noise" in the θ-usefulness analysis (Lemma 4.8) is `E|η| = scale`.
#[must_use]
pub fn expected_abs(scale: f64) -> f64 {
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = 2.0;
        let m = 200_000;
        let samples: Vec<f64> = (0..m).map(|_| sample_laplace(scale, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / m as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / m as f64;
        assert!(mean.abs() < 0.05, "mean {mean} should be ~0");
        // Var(Lap(λ)) = 2λ² = 8.
        assert!((var - 8.0).abs() < 0.3, "variance {var} should be ~8");
    }

    #[test]
    fn sample_mean_abs_matches_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let scale = 0.5;
        let m = 100_000;
        let mean_abs: f64 =
            (0..m).map(|_| sample_laplace(scale, &mut rng).abs()).sum::<f64>() / m as f64;
        assert!((mean_abs - expected_abs(scale)).abs() < 0.02, "E|η| = λ, got {mean_abs}");
    }

    #[test]
    fn mechanism_perturbs_every_cell() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v = vec![0.0; 64];
        laplace_mechanism(&mut v, 2.0 / 1000.0, 0.1, &mut rng).unwrap();
        assert!(v.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn mechanism_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v = vec![0.0];
        assert!(laplace_mechanism(&mut v, 1.0, 0.0, &mut rng).is_err());
        assert!(laplace_mechanism(&mut v, 0.0, 1.0, &mut rng).is_err());
        assert!(laplace_mechanism(&mut v, -1.0, 1.0, &mut rng).is_err());
        assert!(laplace_mechanism(&mut v, 1.0, f64::INFINITY, &mut rng).is_err());
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        let s = 1.5;
        assert!((laplace_pdf(1.0, s) - laplace_pdf(-1.0, s)).abs() < 1e-15);
        assert!(laplace_pdf(0.0, s) > laplace_pdf(0.1, s));
        assert!((laplace_pdf(0.0, s) - 1.0 / (2.0 * s)).abs() < 1e-15);
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| sample_laplace(1.0, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..10).map(|_| sample_laplace(1.0, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn empirical_cdf_matches_theory_at_quartiles() {
        // For Lap(λ), P(X ≤ 0) = 0.5 and P(X ≤ λ·ln2) = 0.75.
        let mut rng = StdRng::seed_from_u64(5);
        let scale = 1.0;
        let m = 100_000;
        let samples: Vec<f64> = (0..m).map(|_| sample_laplace(scale, &mut rng)).collect();
        let frac_le = |t: f64| samples.iter().filter(|&&x| x <= t).count() as f64 / m as f64;
        assert!((frac_le(0.0) - 0.5).abs() < 0.01);
        assert!((frac_le(std::f64::consts::LN_2) - 0.75).abs() < 0.01);
    }
}
