//! Privacy-budget accounting via sequential composition.
//!
//! PrivBayes satisfies (ε₁+ε₂)-DP (Theorem 3.2); the split is governed by the
//! β parameter: ε₁ = βε, ε₂ = (1−β)ε (§3). [`PrivacyBudget`] enforces that no
//! pipeline spends more than its total, which the integration tests rely on to
//! check end-to-end accounting.

use crate::error::DpError;

/// Tracks spending of an ε-differential-privacy budget under sequential
/// composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates a budget of `total` > 0.
    ///
    /// # Errors
    /// Returns [`DpError::InvalidParameter`] for non-positive or non-finite totals.
    pub fn new(total: f64) -> Result<Self, DpError> {
        if !total.is_finite() || total <= 0.0 {
            return Err(DpError::InvalidParameter(format!("budget must be positive, got {total}")));
        }
        Ok(Self { total, spent: 0.0 })
    }

    /// Total budget.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget spent so far.
    #[must_use]
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget remaining.
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Checks whether `epsilon` could be consumed, without consuming it —
    /// the `try_spend` probe used by serving-layer ledgers to pre-validate a
    /// request before committing to it.
    ///
    /// Uses exactly the same tolerance rule as [`PrivacyBudget::consume`], so
    /// `check(ε).is_ok()` if and only if `consume(ε)` would succeed on the
    /// current state.
    ///
    /// # Errors
    /// Returns [`DpError::BudgetExhausted`] if `epsilon` exceeds the
    /// remaining budget, or [`DpError::InvalidParameter`] for non-positive
    /// requests.
    pub fn check(&self, epsilon: f64) -> Result<(), DpError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(DpError::InvalidParameter(format!(
                "consumed epsilon must be positive, got {epsilon}"
            )));
        }
        let tolerance = 1e-9 * self.total;
        if epsilon > self.remaining() + tolerance {
            return Err(DpError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    /// Consumes `epsilon` from the budget.
    ///
    /// # Errors
    /// Returns [`DpError::BudgetExhausted`] if `epsilon` exceeds the remaining
    /// budget (with a small tolerance for floating-point splits), or
    /// [`DpError::InvalidParameter`] for non-positive requests. On error the
    /// budget state is unchanged.
    pub fn consume(&mut self, epsilon: f64) -> Result<(), DpError> {
        self.check(epsilon)?;
        self.spent = (self.spent + epsilon).min(self.total);
        Ok(())
    }

    /// Returns `epsilon` to the budget (compensation for an operation that
    /// was charged but then failed before touching sensitive data). Never
    /// drives `spent` below zero; requests of garbage amounts are clamped
    /// rather than rejected because refunds run on error paths.
    pub fn refund(&mut self, epsilon: f64) {
        if epsilon.is_finite() && epsilon > 0.0 {
            self.spent = (self.spent - epsilon).max(0.0);
        }
    }

    /// Reconstructs a budget with `spent` of `total` already consumed — the
    /// restore half of ledger persistence ([`spent`] / [`total`] being the
    /// save half).
    ///
    /// # Errors
    /// Returns [`DpError::InvalidParameter`] if `total` is not a valid budget
    /// total, or `spent` is negative, non-finite, or exceeds `total`.
    ///
    /// [`spent`]: PrivacyBudget::spent
    /// [`total`]: PrivacyBudget::total
    pub fn with_spent(total: f64, spent: f64) -> Result<Self, DpError> {
        let mut budget = Self::new(total)?;
        if !spent.is_finite() || spent < 0.0 || spent > total {
            return Err(DpError::InvalidParameter(format!(
                "spent must lie in [0, {total}], got {spent}"
            )));
        }
        budget.spent = spent;
        Ok(budget)
    }
}

/// The β budget split of §3: ε₁ = βε for network learning, ε₂ = (1−β)ε for
/// distribution learning. The paper's default (justified in §6.4) is β = 0.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSplit {
    beta: f64,
}

impl BudgetSplit {
    /// The paper's default β = 0.3.
    pub const DEFAULT_BETA: f64 = 0.3;

    /// Creates a split with the given β ∈ (0, 1).
    ///
    /// # Errors
    /// Returns [`DpError::InvalidParameter`] if β ∉ (0, 1).
    pub fn new(beta: f64) -> Result<Self, DpError> {
        if !(beta > 0.0 && beta < 1.0) {
            return Err(DpError::InvalidParameter(format!("beta must lie in (0,1), got {beta}")));
        }
        Ok(Self { beta })
    }

    /// The paper's default split.
    #[must_use]
    pub fn default_paper() -> Self {
        Self { beta: Self::DEFAULT_BETA }
    }

    /// β itself.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Splits `epsilon` into (ε₁, ε₂).
    #[must_use]
    pub fn split(&self, epsilon: f64) -> (f64, f64) {
        (self.beta * epsilon, (1.0 - self.beta) * epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn consume_tracks_spending() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.consume(0.3).unwrap();
        b.consume(0.7).unwrap();
        assert!(b.remaining() < 1e-12);
        assert!(matches!(b.consume(0.1), Err(DpError::BudgetExhausted { .. })));
    }

    #[test]
    fn consume_rejects_nonpositive() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        assert!(b.consume(0.0).is_err());
        assert!(b.consume(-0.5).is_err());
        assert!(b.consume(f64::NAN).is_err());
    }

    #[test]
    fn check_matches_consume_without_mutating() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.consume(0.9).unwrap();
        let before = b.clone();
        assert!(b.check(0.1).is_ok(), "exactly the remaining budget is allowed");
        assert!(matches!(b.check(0.2), Err(DpError::BudgetExhausted { .. })));
        assert!(b.check(0.0).is_err());
        assert!(b.check(f64::NAN).is_err());
        assert_eq!(b, before, "check must not mutate");
        // A passing check is a guarantee that consume succeeds.
        b.consume(0.1).unwrap();
    }

    #[test]
    fn refund_restores_spent_and_clamps() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.consume(0.6).unwrap();
        b.refund(0.2);
        assert!((b.spent() - 0.4).abs() < 1e-12);
        b.refund(10.0); // clamps at zero
        assert_eq!(b.spent(), 0.0);
        b.refund(f64::NAN); // garbage is ignored
        assert_eq!(b.spent(), 0.0);
    }

    #[test]
    fn with_spent_round_trips() {
        let mut b = PrivacyBudget::new(2.5).unwrap();
        b.consume(1.0).unwrap();
        let restored = PrivacyBudget::with_spent(b.total(), b.spent()).unwrap();
        assert_eq!(restored, b);
        assert!(PrivacyBudget::with_spent(1.0, -0.1).is_err());
        assert!(PrivacyBudget::with_spent(1.0, 1.1).is_err());
        assert!(PrivacyBudget::with_spent(1.0, f64::NAN).is_err());
        assert!(PrivacyBudget::with_spent(0.0, 0.0).is_err(), "total still validated");
        // A fully spent budget is restorable.
        assert!(PrivacyBudget::with_spent(1.0, 1.0).is_ok());
    }

    #[test]
    fn new_rejects_bad_totals() {
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(-1.0).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY).is_err());
    }

    #[test]
    fn many_small_consumptions_allowed_up_to_total() {
        // d-1 exponential-mechanism invocations at ε₁/(d-1) each (§4.2).
        let mut b = PrivacyBudget::new(0.3).unwrap();
        let d = 23;
        for _ in 0..d - 1 {
            b.consume(0.3 / (d - 1) as f64).unwrap();
        }
        assert!(b.remaining() < 1e-9);
    }

    #[test]
    fn split_default_beta() {
        let s = BudgetSplit::default_paper();
        let (e1, e2) = s.split(1.6);
        assert!((e1 - 0.48).abs() < 1e-12);
        assert!((e2 - 1.12).abs() < 1e-12);
    }

    #[test]
    fn split_rejects_degenerate_beta() {
        assert!(BudgetSplit::new(0.0).is_err());
        assert!(BudgetSplit::new(1.0).is_err());
        assert!(BudgetSplit::new(f64::NAN).is_err());
    }

    proptest! {
        /// ε₁ + ε₂ = ε exactly (up to float rounding), both positive.
        #[test]
        fn prop_split_sums(beta in 0.01f64..0.99, eps in 0.01f64..10.0) {
            let s = BudgetSplit::new(beta).unwrap();
            let (e1, e2) = s.split(eps);
            prop_assert!(e1 > 0.0 && e2 > 0.0);
            prop_assert!(((e1 + e2) - eps).abs() < 1e-12 * eps.max(1.0));
        }

        /// A budget never reports negative remaining.
        #[test]
        fn prop_budget_non_negative(steps in proptest::collection::vec(0.01f64..0.5, 1..20)) {
            let mut b = PrivacyBudget::new(1.0).unwrap();
            for s in steps {
                let _ = b.consume(s);
                prop_assert!(b.remaining() >= 0.0);
                prop_assert!(b.spent() <= b.total() + 1e-12);
            }
        }
    }
}
