//! The exponential mechanism (McSherry & Talwar \[39\]).
//!
//! Samples ω from a finite candidate set with probability proportional to
//! `exp(f_s(D, ω) / 2Δ)`, which is ε-DP whenever `Δ ≥ S(f_s)/ε` (§2.1). The
//! paper instantiates this with Δ = (d−1)·S/ε₁ for the d−1 network-learning
//! selections (§4.2).

use rand::{Rng, RngExt};

use crate::error::DpError;

/// Selects an index from `scores` with probability ∝ `exp(score/(2·delta))`.
///
/// This is the paper's parameterisation: `delta` is the scaling factor Δ, so
/// callers pass `Δ = sensitivity / epsilon` (possibly already divided among
/// composed invocations). Computation subtracts the maximum score for
/// numerical stability.
///
/// # Errors
/// Returns [`DpError::InvalidParameter`] if `scores` is empty, any score is
/// non-finite, or `delta` is not strictly positive.
pub fn select_with_scale<R: Rng + ?Sized>(
    scores: &[f64],
    delta: f64,
    rng: &mut R,
) -> Result<usize, DpError> {
    if scores.is_empty() {
        return Err(DpError::InvalidParameter("no candidates".into()));
    }
    if !(delta > 0.0 && delta.is_finite()) {
        return Err(DpError::InvalidParameter(format!("delta must be positive, got {delta}")));
    }
    if scores.iter().any(|s| !s.is_finite()) {
        return Err(DpError::InvalidParameter("non-finite score".into()));
    }
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores.iter().map(|&s| ((s - max) / (2.0 * delta)).exp()).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return Ok(i);
        }
    }
    Ok(scores.len() - 1) // float round-off fallback
}

/// Convenience wrapper: ε-DP selection given the score function's sensitivity.
///
/// Equivalent to [`select_with_scale`] with `delta = sensitivity / epsilon`.
///
/// # Errors
/// Same as [`select_with_scale`], plus invalid `epsilon`/`sensitivity`.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    scores: &[f64],
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<usize, DpError> {
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(DpError::InvalidParameter(format!("epsilon must be positive, got {epsilon}")));
    }
    if !(sensitivity > 0.0 && sensitivity.is_finite()) {
        return Err(DpError::InvalidParameter(format!(
            "sensitivity must be positive, got {sensitivity}"
        )));
    }
    select_with_scale(scores, sensitivity / epsilon, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(1);
        let scores = [0.0, 0.0, 5.0];
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[exponential_mechanism(&scores, 1.0, 2.0, &mut rng).unwrap()] += 1;
        }
        assert!(counts[2] > 1800, "high-score candidate should dominate: {counts:?}");
    }

    #[test]
    fn selection_ratio_matches_theory() {
        // P(i)/P(j) = exp((s_i - s_j)·ε / (2S)). With s = [1, 0], ε = 2, S = 1:
        // ratio = e ≈ 2.718.
        let mut rng = StdRng::seed_from_u64(2);
        let scores = [1.0, 0.0];
        let trials = 300_000;
        let mut c0 = 0usize;
        for _ in 0..trials {
            if exponential_mechanism(&scores, 1.0, 2.0, &mut rng).unwrap() == 0 {
                c0 += 1;
            }
        }
        let ratio = c0 as f64 / (trials - c0) as f64;
        assert!((ratio - std::f64::consts::E).abs() < 0.08, "ratio {ratio} should be ~e");
    }

    #[test]
    fn near_zero_epsilon_is_near_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let scores = [10.0, 0.0];
        let trials = 100_000;
        let mut c0 = 0usize;
        for _ in 0..trials {
            if exponential_mechanism(&scores, 1.0, 1e-6, &mut rng).unwrap() == 0 {
                c0 += 1;
            }
        }
        let frac = c0 as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.01, "ε→0 should look uniform, got {frac}");
    }

    #[test]
    fn handles_large_score_magnitudes() {
        // Without max-subtraction this would overflow exp().
        let mut rng = StdRng::seed_from_u64(4);
        let scores = [1e6, 1e6 - 1.0];
        let idx = select_with_scale(&scores, 0.5, &mut rng).unwrap();
        assert!(idx < 2);
    }

    #[test]
    fn single_candidate_always_selected() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(exponential_mechanism(&[42.0], 1.0, 0.1, &mut rng).unwrap(), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(exponential_mechanism(&[], 1.0, 1.0, &mut rng).is_err());
        assert!(exponential_mechanism(&[1.0], 1.0, 0.0, &mut rng).is_err());
        assert!(exponential_mechanism(&[1.0], 0.0, 1.0, &mut rng).is_err());
        assert!(exponential_mechanism(&[f64::NAN], 1.0, 1.0, &mut rng).is_err());
        assert!(select_with_scale(&[1.0], 0.0, &mut rng).is_err());
    }
}
