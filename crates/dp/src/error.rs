//! Error type for the DP crate.

use std::fmt;

/// Errors raised by mechanisms and budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// Requested more budget than remains.
    BudgetExhausted {
        /// Amount requested.
        requested: f64,
        /// Amount remaining.
        remaining: f64,
    },
    /// A mechanism parameter was non-positive or otherwise invalid.
    InvalidParameter(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::BudgetExhausted { requested, remaining } => {
                write!(f, "privacy budget exhausted: requested {requested}, remaining {remaining}")
            }
            DpError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = DpError::BudgetExhausted { requested: 0.5, remaining: 0.1 };
        assert!(e.to_string().contains("0.5"));
        let e = DpError::InvalidParameter("epsilon must be positive".into());
        assert!(e.to_string().contains("epsilon"));
    }
}
