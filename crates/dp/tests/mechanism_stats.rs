//! Seeded statistical acceptance tests for the DP mechanisms.
//!
//! Each test draws a large, deterministically seeded sample and checks the
//! empirical moments (or selection frequencies) against the closed-form
//! values the privacy analysis relies on. Tolerances are set several
//! standard errors wide so the tests are stable under the fixed seeds.

use privbayes_dp::budget::{BudgetSplit, PrivacyBudget};
use privbayes_dp::error::DpError;
use privbayes_dp::exponential::select_with_scale;
use privbayes_dp::geometric::{geometric_std, sample_two_sided_geometric};
use privbayes_dp::laplace::sample_laplace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mean_and_var(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

#[test]
fn laplace_moments_across_scales() {
    // Lap(λ): mean 0, variance 2λ², E|η| = λ.
    let m = 200_000;
    for (seed, scale) in [(101u64, 0.25f64), (102, 1.0), (103, 4.0)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..m).map(|_| sample_laplace(scale, &mut rng)).collect();
        let (mean, var) = mean_and_var(&samples);
        let expected_var = 2.0 * scale * scale;
        // std of the sample mean is sqrt(2λ²/m); allow ~6 standard errors.
        let mean_tol = 6.0 * (expected_var / m as f64).sqrt();
        assert!(mean.abs() < mean_tol, "scale {scale}: mean {mean} (tol {mean_tol})");
        assert!(
            (var - expected_var).abs() / expected_var < 0.03,
            "scale {scale}: var {var} vs {expected_var}"
        );
        let mean_abs = samples.iter().map(|x| x.abs()).sum::<f64>() / m as f64;
        assert!(
            (mean_abs - scale).abs() / scale < 0.02,
            "scale {scale}: E|η| {mean_abs} vs {scale}"
        );
    }
}

#[test]
fn geometric_moments_across_epsilons() {
    // Two-sided geometric with α = e^{−ε}: mean 0, std sqrt(2α)/(1−α).
    let m = 200_000;
    for (seed, epsilon) in [(201u64, 0.2f64), (202, 0.5), (203, 1.5)] {
        let alpha = (-epsilon).exp();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> =
            (0..m).map(|_| sample_two_sided_geometric(alpha, &mut rng) as f64).collect();
        let (mean, var) = mean_and_var(&samples);
        let expected_std = geometric_std(alpha);
        let mean_tol = 6.0 * expected_std / (m as f64).sqrt();
        assert!(mean.abs() < mean_tol, "ε={epsilon}: mean {mean} (tol {mean_tol})");
        assert!(
            (var.sqrt() - expected_std).abs() / expected_std < 0.03,
            "ε={epsilon}: std {} vs {expected_std}",
            var.sqrt()
        );
    }
}

#[test]
fn exponential_mechanism_frequencies_match_weights() {
    // Selection probability must be ∝ exp(score/2Δ).
    let scores = [0.0f64, 1.0, 2.0, 3.5];
    let delta = 0.75;
    let weights: Vec<f64> = scores.iter().map(|&s| (s / (2.0 * delta)).exp()).collect();
    let total: f64 = weights.iter().sum();
    let m = 300_000;
    let mut rng = StdRng::seed_from_u64(301);
    let mut counts = [0usize; 4];
    for _ in 0..m {
        counts[select_with_scale(&scores, delta, &mut rng).unwrap()] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        let emp = c as f64 / m as f64;
        let theory = weights[i] / total;
        // Binomial std error is sqrt(p(1−p)/m) < 1e-3 here; allow 6×.
        assert!(
            (emp - theory).abs() < 6.0 * (theory * (1.0 - theory) / m as f64).sqrt() + 1e-4,
            "candidate {i}: empirical {emp:.4} vs theory {theory:.4}"
        );
    }
}

#[test]
fn exponential_mechanism_uniform_when_scores_tie() {
    let scores = [7.0f64; 5];
    let m = 100_000;
    let mut rng = StdRng::seed_from_u64(302);
    let mut counts = [0usize; 5];
    for _ in 0..m {
        counts[select_with_scale(&scores, 1.0, &mut rng).unwrap()] += 1;
    }
    for &c in &counts {
        let frac = c as f64 / m as f64;
        assert!((frac - 0.2).abs() < 0.01, "tied scores must select uniformly, got {frac}");
    }
}

#[test]
fn budget_split_rejects_degenerate_beta_zero_and_one() {
    // β ∈ {0, 1} would silence one of the two phases entirely; the paper's
    // split is defined on the open interval.
    for beta in [0.0, 1.0, -0.3, 1.3, f64::NAN, f64::INFINITY] {
        assert!(
            matches!(BudgetSplit::new(beta), Err(DpError::InvalidParameter(_))),
            "β={beta} must be rejected"
        );
    }
    // The open interval itself is fully usable, even arbitrarily close to
    // the endpoints.
    for beta in [f64::MIN_POSITIVE, 1e-9, 0.5, 1.0 - 1e-9] {
        let split = BudgetSplit::new(beta).unwrap();
        let (e1, e2) = split.split(2.0);
        assert!(e1 >= 0.0 && e2 >= 0.0);
        assert!(((e1 + e2) - 2.0).abs() < 1e-12);
    }
}

#[test]
fn budget_accounting_boundary_cases() {
    // Spending the exact total is allowed; one float-visible step past it is
    // not, and a failed consume must not burn budget.
    let mut b = PrivacyBudget::new(1.0).unwrap();
    b.consume(1.0).unwrap();
    assert!(b.remaining() < 1e-12);
    assert!(matches!(b.consume(1e-6), Err(DpError::BudgetExhausted { .. })));

    let mut b = PrivacyBudget::new(0.5).unwrap();
    assert!(b.consume(0.5000001).is_err(), "over-budget request must fail");
    assert!((b.spent() - 0.0).abs() < 1e-15, "failed consume must not spend");
    b.consume(0.25).unwrap();
    b.consume(0.25).unwrap();
    assert!(b.remaining() < 1e-12);
}

#[test]
fn budget_tolerates_accumulated_float_splits() {
    // ε/k consumed k times must land exactly on empty for awkward k.
    for k in [3usize, 7, 11, 13] {
        let mut b = PrivacyBudget::new(0.1).unwrap();
        for _ in 0..k {
            b.consume(0.1 / k as f64).unwrap();
        }
        assert!(b.remaining() < 1e-9, "k={k}: remaining {}", b.remaining());
    }
}
