//! Serde-free JSON (de)serialization for [`PrivacyBudget`].
//!
//! A serving layer that accounts privacy spending per tenant must survive
//! restarts without forgetting what was already spent — otherwise a crash
//! would silently reset every tenant's ε to zero and break the composition
//! guarantee. These helpers give `privbayes-dp`'s budget a JSON form using
//! the same dependency-free [`Json`] document type as the release artifacts,
//! with the same property: `f64` totals round-trip bit-exactly, so a
//! persisted ledger restores to *exactly* the budget state it saved
//! (`budget_from_json(budget_to_json(b)) == b`).

use privbayes_dp::PrivacyBudget;

use crate::error::ModelError;
use crate::json::Json;

/// Serializes a budget as `{"total": …, "spent": …}`.
#[must_use]
pub fn budget_to_json(budget: &PrivacyBudget) -> Json {
    Json::object(vec![
        ("total", Json::Number(budget.total())),
        ("spent", Json::Number(budget.spent())),
    ])
}

/// Restores a budget from the [`budget_to_json`] form.
///
/// # Errors
/// Returns [`ModelError::Field`] for missing or mistyped fields and
/// [`ModelError::Invalid`] if the amounts do not form a valid budget state
/// (non-positive total, `spent` outside `[0, total]`).
pub fn budget_from_json(json: &Json) -> Result<PrivacyBudget, ModelError> {
    let total = json
        .get("total")
        .and_then(Json::as_f64)
        .ok_or_else(|| ModelError::Field("budget.total".into()))?;
    let spent = json
        .get("spent")
        .and_then(Json::as_f64)
        .ok_or_else(|| ModelError::Field("budget.spent".into()))?;
    PrivacyBudget::with_spent(total, spent).map_err(|e| ModelError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let mut budget = PrivacyBudget::new(1.6).unwrap();
        budget.consume(0.1).unwrap();
        budget.consume(0.07).unwrap();
        let json = budget_to_json(&budget);
        let restored = budget_from_json(&json).unwrap();
        assert_eq!(restored.total().to_bits(), budget.total().to_bits());
        assert_eq!(restored.spent().to_bits(), budget.spent().to_bits());
        // And through serialized text, as the ledger file does.
        let text = json.to_string_pretty().unwrap();
        let reparsed = budget_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed, budget);
    }

    #[test]
    fn fresh_and_exhausted_budgets_round_trip() {
        for spent in [0.0, 2.0] {
            let budget = PrivacyBudget::with_spent(2.0, spent).unwrap();
            assert_eq!(budget_from_json(&budget_to_json(&budget)).unwrap(), budget);
        }
    }

    #[test]
    fn rejects_missing_and_invalid_fields() {
        assert!(matches!(
            budget_from_json(&Json::parse(r#"{"spent": 0}"#).unwrap()),
            Err(ModelError::Field(_))
        ));
        assert!(matches!(
            budget_from_json(&Json::parse(r#"{"total": 1.0, "spent": "x"}"#).unwrap()),
            Err(ModelError::Field(_))
        ));
        assert!(matches!(
            budget_from_json(&Json::parse(r#"{"total": 1.0, "spent": 1.5}"#).unwrap()),
            Err(ModelError::Invalid(_))
        ));
        assert!(matches!(
            budget_from_json(&Json::parse(r#"{"total": -1.0, "spent": 0.0}"#).unwrap()),
            Err(ModelError::Invalid(_))
        ));
    }
}
