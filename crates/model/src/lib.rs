//! Release artifacts for PrivBayes models.
//!
//! PrivBayes's privacy guarantee (Theorem 3.2) covers the *model* — the
//! Bayesian network plus the noisy conditional distributions — not just one
//! synthetic dataset sampled from it. This crate turns that model into a
//! publishable artifact:
//!
//! * [`ReleasedModel`] bundles the model with the schema it is expressed over
//!   and fitting provenance ([`ModelMetadata`]), validates internal
//!   consistency, and converts to/from a versioned, self-describing JSON
//!   format ([`FORMAT`]).
//! * Consumers can [`ReleasedModel::sample`] fresh synthetic datasets of any
//!   size, or answer marginal queries exactly with
//!   [`privbayes::inference::model_marginal`] — both are post-processing and
//!   cost no additional privacy budget.
//! * [`json`] is the small, dependency-free JSON reader/writer behind the
//!   format; it round-trips `f64` probabilities bit-exactly.
//! * [`budget_io`] round-trips `privbayes-dp` privacy budgets through the
//!   same JSON type, so serving-layer ledgers can persist per-tenant ε
//!   accounting across restarts without losing precision.
//! * [`ReleasedRelationalModel`] does the same for the multi-table extension:
//!   both phase models of a `privbayes-relational` synthesis in one artifact,
//!   from which consumers regenerate complete two-table databases.
//!
//! # Example
//!
//! ```
//! use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
//! use privbayes_data::{Attribute, Dataset, Schema};
//! use privbayes_model::{ModelMetadata, ReleasedModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let schema = Schema::new(vec![
//!     Attribute::binary("smoker"),
//!     Attribute::binary("disease"),
//! ]).unwrap();
//! let rows: Vec<Vec<u32>> = (0..200).map(|i| vec![i % 2, i % 2]).collect();
//! let data = Dataset::from_rows(schema, &rows).unwrap();
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let options = PrivBayesOptions::new(1.0);
//! let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng).unwrap();
//!
//! let artifact = ReleasedModel::new(
//!     ModelMetadata {
//!         method: "privbayes".into(),
//!         epsilon: options.epsilon,
//!         beta: options.beta,
//!         theta: options.theta,
//!         score: options.effective_score().name().to_string(),
//!         encoding: options.encoding.name().to_string(),
//!         source_rows: data.n(),
//!         comment: "doc example".to_string(),
//!     },
//!     data.schema().clone(),
//!     result.model,
//! ).unwrap();
//!
//! let text = artifact.to_json_string().unwrap();
//! let restored = ReleasedModel::from_json_string(&text).unwrap();
//! assert_eq!(restored, artifact);
//! ```

pub mod budget_io;
pub mod error;
pub mod json;
pub mod model_io;
pub mod relational_io;
pub mod schema_io;

pub use budget_io::{budget_from_json, budget_to_json};
pub use error::ModelError;
pub use json::{Json, JsonError};
pub use model_io::{ModelMetadata, ReleasedModel, FORMAT};
pub use relational_io::{RelationalMetadata, ReleasedRelationalModel, RELATIONAL_FORMAT};
pub use schema_io::{schema_from_json, schema_to_json};
