//! The release artifact: a versioned JSON envelope around the private model.
//!
//! PrivBayes's output model — the Bayesian network `N` plus the noisy
//! conditionals `Pr*[Xᵢ | Πᵢ]` — is itself differentially private, so it can
//! be published as-is (Theorem 3.2; sampling is post-processing). Publishing
//! the *model* rather than one fixed synthetic dataset lets consumers draw
//! samples of any size or answer queries exactly via
//! [`privbayes::inference::model_marginal`] (the paper's §7 direction).

use std::fs;
use std::path::Path;

use std::sync::OnceLock;

use privbayes::conditionals::{Conditional, NoisyModel};
use privbayes::network::{ApPair, BayesianNetwork};
use privbayes::sampler::CompiledSampler;
use privbayes_data::{Dataset, Schema};
use privbayes_marginals::Axis;
use rand::Rng;

use crate::error::ModelError;
use crate::json::Json;
use crate::schema_io::{schema_from_json, schema_to_json};

/// The artifact format identifier accepted by this version of the crate.
pub const FORMAT: &str = "privbayes-model/1";

/// Tolerance when checking that stored conditionals are normalised.
const NORMALISATION_TOLERANCE: f64 = 1e-6;

/// Provenance recorded alongside a released model.
///
/// These fields are descriptive only — they document how the model was fit so
/// a consumer can interpret it, but nothing is recomputed from them.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMetadata {
    /// Name of the synthesis method that fit the model (`"privbayes"`,
    /// `"privbayes-k"`, `"mwem"`, `"laplace"`, `"geometric"`, `"uniform"`).
    /// Artifacts written before the field existed parse as `"privbayes"`.
    pub method: String,
    /// Total privacy budget ε spent fitting the model.
    pub epsilon: f64,
    /// Budget split β between network and distribution learning.
    pub beta: f64,
    /// θ-usefulness threshold used for degree selection.
    pub theta: f64,
    /// Name of the score function that selected AP pairs (`"I"`, `"F"`, `"R"`).
    pub score: String,
    /// Name of the attribute encoding (`"vanilla"`, `"hierarchical"`, …).
    pub encoding: String,
    /// Number of rows in the sensitive input the model was fit on.
    pub source_rows: usize,
    /// Free-form comment (provenance, dataset name, fitting date).
    pub comment: String,
}

impl ModelMetadata {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("method", Json::String(self.method.clone())),
            ("epsilon", Json::Number(self.epsilon)),
            ("beta", Json::Number(self.beta)),
            ("theta", Json::Number(self.theta)),
            ("score", Json::String(self.score.clone())),
            ("encoding", Json::String(self.encoding.clone())),
            ("source_rows", Json::from_usize(self.source_rows)),
            ("comment", Json::String(self.comment.clone())),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, ModelError> {
        let path = |field: &str| ModelError::Field(format!("metadata.{field}"));
        Ok(Self {
            // Absent in pre-PR4 artifacts, which were always PrivBayes fits.
            method: json.get("method").and_then(Json::as_str).unwrap_or("privbayes").to_string(),
            epsilon: json.get("epsilon").and_then(Json::as_f64).ok_or_else(|| path("epsilon"))?,
            beta: json.get("beta").and_then(Json::as_f64).ok_or_else(|| path("beta"))?,
            theta: json.get("theta").and_then(Json::as_f64).ok_or_else(|| path("theta"))?,
            score: json
                .get("score")
                .and_then(Json::as_str)
                .ok_or_else(|| path("score"))?
                .to_string(),
            encoding: json
                .get("encoding")
                .and_then(Json::as_str)
                .ok_or_else(|| path("encoding"))?
                .to_string(),
            source_rows: json
                .get("source_rows")
                .and_then(Json::as_usize)
                .ok_or_else(|| path("source_rows"))?,
            comment: json
                .get("comment")
                .and_then(Json::as_str)
                .ok_or_else(|| path("comment"))?
                .to_string(),
        })
    }
}

/// A released PrivBayes model: metadata, the schema of the (possibly encoded)
/// attribute space the model lives in, and the noisy model itself.
#[derive(Debug, Clone)]
pub struct ReleasedModel {
    /// Fitting provenance.
    pub metadata: ModelMetadata,
    /// Schema of the attribute space the conditionals are expressed over.
    pub schema: Schema,
    /// The private network and noisy conditionals.
    pub model: NoisyModel,
    /// Alias-table form of the model, compiled on first [`sample`] call and
    /// reused by every subsequent one (repeat consumers don't pay the
    /// per-slice compilation again).
    ///
    /// [`sample`]: ReleasedModel::sample
    sampler: OnceLock<CompiledSampler>,
}

/// Equality is over the released artifact (metadata, schema, model); the
/// lazily-compiled sampler cache is derived state and does not participate.
impl PartialEq for ReleasedModel {
    fn eq(&self, other: &Self) -> bool {
        self.metadata == other.metadata && self.schema == other.schema && self.model == other.model
    }
}

impl ReleasedModel {
    /// Bundles a fit result into a release artifact, validating consistency.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] if the model does not match the schema
    /// (see [`ReleasedModel::validate`]).
    pub fn new(
        metadata: ModelMetadata,
        schema: Schema,
        model: NoisyModel,
    ) -> Result<Self, ModelError> {
        let artifact = Self { metadata, schema, model, sampler: OnceLock::new() };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Checks the internal consistency a consumer relies on: one conditional
    /// per network pair with matching child/parents, dimensions that agree
    /// with the schema (at the recorded generalisation levels), finite
    /// probabilities, and normalised child distributions.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] describing the first violation found.
    pub fn validate(&self) -> Result<(), ModelError> {
        let d = self.schema.len();
        let pairs = self.model.network.pairs();
        let conds = &self.model.conditionals;
        if pairs.len() != d {
            return Err(ModelError::Invalid(format!(
                "network has {} pairs but schema has {d} attributes",
                pairs.len()
            )));
        }
        if conds.len() != d {
            return Err(ModelError::Invalid(format!(
                "model has {} conditionals but schema has {d} attributes",
                conds.len()
            )));
        }
        for (i, (pair, cond)) in pairs.iter().zip(conds).enumerate() {
            if pair.child != cond.child || pair.parents != cond.parents {
                return Err(ModelError::Invalid(format!(
                    "conditional {i} does not match network pair {i}"
                )));
            }
            let child_dim = self.schema.attribute(cond.child).domain_size();
            if cond.child_dim != child_dim {
                return Err(ModelError::Invalid(format!(
                    "conditional {i}: child_dim {} but attribute `{}` has domain size {child_dim}",
                    cond.child_dim,
                    self.schema.attribute(cond.child).name()
                )));
            }
            if cond.parent_dims.len() != cond.parents.len() {
                return Err(ModelError::Invalid(format!(
                    "conditional {i}: {} parent dims for {} parents",
                    cond.parent_dims.len(),
                    cond.parents.len()
                )));
            }
            for (axis, &dim) in cond.parents.iter().zip(&cond.parent_dims) {
                let expected = axis.size(&self.schema);
                if dim != expected {
                    return Err(ModelError::Invalid(format!(
                        "conditional {i}: parent {} at level {} has dim {dim}, expected {expected}",
                        axis.attr, axis.level
                    )));
                }
            }
            let parent_cells: usize = cond.parent_dims.iter().product();
            if cond.probs.len() != parent_cells * cond.child_dim {
                return Err(ModelError::Invalid(format!(
                    "conditional {i}: {} probabilities for a {}×{} table",
                    cond.probs.len(),
                    parent_cells,
                    cond.child_dim
                )));
            }
            for (s, slice) in cond.probs.chunks_exact(cond.child_dim).enumerate() {
                if slice.iter().any(|p| !p.is_finite() || *p < 0.0) {
                    return Err(ModelError::Invalid(format!(
                        "conditional {i}, slice {s}: negative or non-finite probability"
                    )));
                }
                let total: f64 = slice.iter().sum();
                if (total - 1.0).abs() > NORMALISATION_TOLERANCE {
                    return Err(ModelError::Invalid(format!(
                        "conditional {i}, slice {s}: probabilities sum to {total}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Serializes the artifact to pretty-printed JSON text.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] if validation fails (e.g. the model was
    /// mutated after construction) or the document cannot be serialized.
    pub fn to_json_string(&self) -> Result<String, ModelError> {
        self.validate()?;
        Ok(self.to_json().to_string_pretty()?)
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("format", Json::String(FORMAT.to_string())),
            ("metadata", self.metadata.to_json()),
            ("schema", schema_to_json(&self.schema)),
            ("network", network_to_json(&self.model.network)),
            ("conditionals", conditionals_to_json(&self.model.conditionals)),
        ])
    }

    /// Parses and validates an artifact from JSON text.
    ///
    /// # Errors
    /// Returns [`ModelError::Json`] for malformed JSON,
    /// [`ModelError::UnsupportedFormat`] for a wrong `format` field,
    /// [`ModelError::Field`] for missing fields, and [`ModelError::Invalid`]
    /// for inconsistent contents.
    pub fn from_json_string(text: &str) -> Result<Self, ModelError> {
        let json = Json::parse(text)?;
        let format = json
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| ModelError::Field("format".into()))?;
        if format != FORMAT {
            return Err(ModelError::UnsupportedFormat(format.to_string()));
        }
        let metadata = ModelMetadata::from_json(
            json.get("metadata").ok_or_else(|| ModelError::Field("metadata".into()))?,
        )?;
        let schema = schema_from_json(
            json.get("schema").ok_or_else(|| ModelError::Field("schema".into()))?,
        )?;

        let network = network_from_json(
            json.get("network").ok_or_else(|| ModelError::Field("network".into()))?,
            &schema,
            "network",
        )?;
        let conditionals = conditionals_from_json(
            json.get("conditionals").ok_or_else(|| ModelError::Field("conditionals".into()))?,
            "conditionals",
        )?;

        Self::new(metadata, schema, NoisyModel { network, conditionals })
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    /// Returns [`ModelError::Io`] on filesystem failure and the
    /// [`ReleasedModel::to_json_string`] errors otherwise.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        let text = self.to_json_string()?;
        fs::write(path, text)?;
        Ok(())
    }

    /// Reads and validates an artifact from a file.
    ///
    /// # Errors
    /// Returns [`ModelError::Io`] on filesystem failure and the
    /// [`ReleasedModel::from_json_string`] errors otherwise.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let text = fs::read_to_string(path)?;
        Self::from_json_string(&text)
    }

    /// Samples `rows` synthetic tuples from the released model — the same
    /// ancestral sampler PrivBayes uses internally; no privacy cost. The
    /// model is compiled into alias tables on the first call and the
    /// compiled form is cached for subsequent draws.
    ///
    /// # Errors
    /// Propagates sampler errors as [`ModelError::Invalid`] (these indicate
    /// artifact corruption that validation could not detect).
    pub fn sample<R: Rng + ?Sized>(&self, rows: usize, rng: &mut R) -> Result<Dataset, ModelError> {
        self.sample_with_threads(rows, None, rng)
    }

    /// As [`ReleasedModel::sample`], with an explicit sampling worker count
    /// (`None` uses [`std::thread::available_parallelism`]). The output
    /// depends only on `rng`'s state, never on the worker count.
    ///
    /// # Errors
    /// As [`ReleasedModel::sample`].
    pub fn sample_with_threads<R: Rng + ?Sized>(
        &self,
        rows: usize,
        threads: Option<usize>,
        rng: &mut R,
    ) -> Result<Dataset, ModelError> {
        self.compiled()?
            .sample_dataset(rows, threads, rng)
            .map_err(|e| ModelError::Invalid(e.to_string()))
    }

    /// The model's cached [`CompiledSampler`], compiling it on the first
    /// call. This is the hook serving layers use to share one set of alias
    /// tables across every request against the same released model: the
    /// registry holds the `ReleasedModel` and all synthesis paths — batch
    /// sampling and chunked row streaming alike — draw from this one
    /// compiled form.
    ///
    /// # Errors
    /// Propagates compilation failures as [`ModelError::Invalid`] (these
    /// indicate artifact corruption that validation could not detect).
    pub fn compiled(&self) -> Result<&CompiledSampler, ModelError> {
        if self.sampler.get().is_none() {
            let compiled =
                self.model.compile(&self.schema).map_err(|e| ModelError::Invalid(e.to_string()))?;
            // A racing caller may have compiled the same model meanwhile;
            // either value is equivalent, keep the first.
            let _ = self.sampler.set(compiled);
        }
        Ok(self.sampler.get().expect("sampler initialised above"))
    }
}

/// Serializes a network as an array of `{child, parents}` objects.
pub(crate) fn network_to_json(network: &BayesianNetwork) -> Json {
    Json::Array(
        network
            .pairs()
            .iter()
            .map(|pair| {
                Json::object(vec![
                    ("child", Json::from_usize(pair.child)),
                    ("parents", axes_to_json(&pair.parents)),
                ])
            })
            .collect(),
    )
}

/// Parses a network, validating structure against `schema`.
pub(crate) fn network_from_json(
    json: &Json,
    schema: &Schema,
    context: &str,
) -> Result<BayesianNetwork, ModelError> {
    let pairs_json = json.as_array().ok_or_else(|| ModelError::Field(context.to_string()))?;
    let mut pairs = Vec::with_capacity(pairs_json.len());
    for (i, pair) in pairs_json.iter().enumerate() {
        let path = |field: &str| ModelError::Field(format!("{context}[{i}].{field}"));
        let child = pair.get("child").and_then(Json::as_usize).ok_or_else(|| path("child"))?;
        let parents = axes_from_json(
            pair.get("parents").ok_or_else(|| path("parents"))?,
            &format!("{context}[{i}].parents"),
        )?;
        pairs.push(ApPair::generalized(child, parents));
    }
    BayesianNetwork::new(pairs, schema).map_err(|e| ModelError::Invalid(format!("{context}: {e}")))
}

/// Serializes conditionals as an array of CPT objects.
pub(crate) fn conditionals_to_json(conditionals: &[Conditional]) -> Json {
    Json::Array(
        conditionals
            .iter()
            .map(|cond| {
                Json::object(vec![
                    ("child", Json::from_usize(cond.child)),
                    ("parents", axes_to_json(&cond.parents)),
                    (
                        "parent_dims",
                        Json::Array(
                            cond.parent_dims.iter().map(|&v| Json::from_usize(v)).collect(),
                        ),
                    ),
                    ("child_dim", Json::from_usize(cond.child_dim)),
                    ("probs", Json::Array(cond.probs.iter().map(|&p| Json::Number(p)).collect())),
                ])
            })
            .collect(),
    )
}

/// Parses a conditional array (shape validation happens at the artifact
/// level, where the schema is known).
pub(crate) fn conditionals_from_json(
    json: &Json,
    context: &str,
) -> Result<Vec<Conditional>, ModelError> {
    let conds_json = json.as_array().ok_or_else(|| ModelError::Field(context.to_string()))?;
    let mut conditionals = Vec::with_capacity(conds_json.len());
    for (i, cond) in conds_json.iter().enumerate() {
        let path = |field: &str| ModelError::Field(format!("{context}[{i}].{field}"));
        let child = cond.get("child").and_then(Json::as_usize).ok_or_else(|| path("child"))?;
        let parents = axes_from_json(
            cond.get("parents").ok_or_else(|| path("parents"))?,
            &format!("{context}[{i}].parents"),
        )?;
        let parent_dims: Vec<usize> = cond
            .get("parent_dims")
            .and_then(Json::as_array)
            .ok_or_else(|| path("parent_dims"))?
            .iter()
            .map(|v| v.as_usize().ok_or_else(|| path("parent_dims[*]")))
            .collect::<Result<_, _>>()?;
        let child_dim =
            cond.get("child_dim").and_then(Json::as_usize).ok_or_else(|| path("child_dim"))?;
        let probs: Vec<f64> = cond
            .get("probs")
            .and_then(Json::as_array)
            .ok_or_else(|| path("probs"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| path("probs[*]")))
            .collect::<Result<_, _>>()?;
        conditionals.push(Conditional { child, parents, parent_dims, child_dim, probs });
    }
    Ok(conditionals)
}

fn axes_to_json(axes: &[Axis]) -> Json {
    Json::Array(
        axes.iter()
            .map(|axis| {
                Json::object(vec![
                    ("attr", Json::from_usize(axis.attr)),
                    ("level", Json::from_usize(axis.level)),
                ])
            })
            .collect(),
    )
}

fn axes_from_json(json: &Json, context: &str) -> Result<Vec<Axis>, ModelError> {
    let items = json.as_array().ok_or_else(|| ModelError::Field(context.to_string()))?;
    items
        .iter()
        .map(|item| {
            let attr = item
                .get("attr")
                .and_then(Json::as_usize)
                .ok_or_else(|| ModelError::Field(format!("{context}[*].attr")))?;
            let level = item
                .get("level")
                .and_then(Json::as_usize)
                .ok_or_else(|| ModelError::Field(format!("{context}[*].level")))?;
            Ok(Axis { attr, level })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes::conditionals::noisy_conditionals_general;
    use privbayes_data::Attribute;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn fitted() -> ReleasedModel {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical_labelled("b", ["x", "y", "z"]).unwrap(),
            Attribute::continuous("c", 0.0, 10.0, 4).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<u32>> = (0..500)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                let b = (a + rng.random_range(0..2u32)) % 3;
                let c = rng.random_range(0..4u32);
                vec![a, b, c]
            })
            .collect();
        let data = Dataset::from_rows(schema.clone(), &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![0, 1])],
            &schema,
        )
        .unwrap();
        let model = noisy_conditionals_general(&data, &net, Some(1.0), &mut rng).unwrap();
        ReleasedModel::new(
            ModelMetadata {
                method: "privbayes".into(),
                epsilon: 1.0,
                beta: 0.3,
                theta: 4.0,
                score: "R".into(),
                encoding: "vanilla".into(),
                source_rows: 500,
                comment: "unit test".into(),
            },
            schema,
            model,
        )
        .unwrap()
    }

    #[test]
    fn round_trips_bit_exactly() {
        let artifact = fitted();
        let text = artifact.to_json_string().unwrap();
        let back = ReleasedModel::from_json_string(&text).unwrap();
        assert_eq!(back, artifact, "all f64 probabilities must survive the text round-trip");
    }

    #[test]
    fn save_and_load() {
        let artifact = fitted();
        let dir = std::env::temp_dir().join("privbayes-model-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        artifact.save(&path).unwrap();
        let back = ReleasedModel::load(&path).unwrap();
        assert_eq!(back, artifact);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let e = ReleasedModel::load("/nonexistent/model.json").unwrap_err();
        assert!(matches!(e, ModelError::Io(_)));
    }

    #[test]
    fn sampling_from_loaded_model_matches_original_model() {
        let artifact = fitted();
        let text = artifact.to_json_string().unwrap();
        let back = ReleasedModel::from_json_string(&text).unwrap();
        // Same seed, same model -> identical synthetic output.
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let sample_a = artifact.sample(200, &mut rng_a).unwrap();
        let sample_b = back.sample(200, &mut rng_b).unwrap();
        assert_eq!(sample_a.n(), 200);
        for attr in 0..sample_a.d() {
            assert_eq!(sample_a.column(attr), sample_b.column(attr));
        }
    }

    #[test]
    fn rejects_wrong_format_version() {
        let artifact = fitted();
        let text = artifact.to_json_string().unwrap().replace(FORMAT, "privbayes-model/999");
        let e = ReleasedModel::from_json_string(&text).unwrap_err();
        assert!(matches!(e, ModelError::UnsupportedFormat(_)), "{e}");
    }

    #[test]
    fn rejects_missing_top_level_fields() {
        for field in ["format", "metadata", "schema", "network", "conditionals"] {
            let artifact = fitted();
            let text = artifact.to_json_string().unwrap();
            // Drop the field by renaming it.
            let text = text.replacen(&format!("\"{field}\""), "\"dropped\"", 1);
            assert!(
                ReleasedModel::from_json_string(&text).is_err(),
                "must reject artifact without `{field}`"
            );
        }
    }

    #[test]
    fn validation_catches_dimension_mismatch() {
        let mut artifact = fitted();
        artifact.model.conditionals[1].child_dim = 7;
        let e = artifact.validate().unwrap_err();
        assert!(matches!(e, ModelError::Invalid(_)), "{e}");
    }

    #[test]
    fn validation_catches_denormalised_probabilities() {
        let mut artifact = fitted();
        artifact.model.conditionals[0].probs[0] += 0.5;
        assert!(artifact.validate().is_err());
    }

    #[test]
    fn validation_catches_negative_probabilities() {
        let mut artifact = fitted();
        let dim = artifact.model.conditionals[0].child_dim;
        artifact.model.conditionals[0].probs[0] = -0.25;
        artifact.model.conditionals[0].probs[1] = 1.25;
        let _ = dim;
        assert!(artifact.validate().is_err());
    }

    #[test]
    fn validation_catches_network_conditional_mismatch() {
        let mut artifact = fitted();
        artifact.model.conditionals.swap(1, 2);
        assert!(artifact.validate().is_err());
    }

    #[test]
    fn corrupt_probability_array_is_rejected_on_parse() {
        let artifact = fitted();
        let text = artifact.to_json_string().unwrap();
        // Inject a string where a probability belongs.
        let text = text.replacen("\"probs\": [\n", "\"probs\": [\n\"oops\",", 1);
        let e = ReleasedModel::from_json_string(&text).unwrap_err();
        assert!(matches!(e, ModelError::Field(ref p) if p.contains("probs")), "got {e}");
    }

    #[test]
    fn invalid_network_structure_is_rejected() {
        let artifact = fitted();
        let text = artifact.to_json_string().unwrap();
        // Parent 2 of attribute 1 is not an earlier child -> DAG violation.
        let text = text.replacen(
            "\"parents\": [\n        {\n          \"attr\": 0,",
            "\"parents\": [\n        {\n          \"attr\": 2,",
            1,
        );
        let e = ReleasedModel::from_json_string(&text).unwrap_err();
        assert!(matches!(e, ModelError::Invalid(_)), "got {e}");
    }
}
