//! Schema ⇄ JSON conversion for release artifacts.
//!
//! A schema serializes to an array of attribute objects. Each carries its
//! name, a kind tag (`binary` / `categorical` / `continuous`), enough
//! parameters to rebuild the domain (labels, bin range), and the taxonomy
//! tree's parent maps when one is attached — everything a consumer needs to
//! interpret synthetic data sampled from the released model.

use privbayes_data::{Attribute, AttributeKind, Schema, TaxonomyTree};

use crate::error::ModelError;
use crate::json::Json;

/// Serializes a schema to its JSON array form.
#[must_use]
pub fn schema_to_json(schema: &Schema) -> Json {
    Json::Array(schema.attributes().iter().map(attribute_to_json).collect())
}

/// Rebuilds a schema from its JSON array form.
///
/// # Errors
/// Returns [`ModelError::Field`] for missing/mistyped fields and
/// [`ModelError::Invalid`] when the fields parse but violate domain rules
/// (empty domains, bad taxonomy maps, duplicate names).
pub fn schema_from_json(json: &Json) -> Result<Schema, ModelError> {
    let items = json.as_array().ok_or_else(|| ModelError::Field("schema".into()))?;
    let mut attributes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        attributes.push(attribute_from_json(item, i)?);
    }
    Schema::new(attributes).map_err(|e| ModelError::Invalid(format!("schema: {e}")))
}

fn attribute_to_json(attr: &Attribute) -> Json {
    let mut fields: Vec<(String, Json)> =
        vec![("name".to_string(), Json::String(attr.name().to_string()))];
    match attr.kind() {
        AttributeKind::Binary => {
            fields.push(("kind".to_string(), Json::String("binary".to_string())));
        }
        AttributeKind::Categorical => {
            fields.push(("kind".to_string(), Json::String("categorical".to_string())));
            fields.push(("size".to_string(), Json::from_usize(attr.domain_size())));
            if let Some(labels) = attr.domain().labels() {
                fields.push((
                    "labels".to_string(),
                    Json::Array(labels.iter().map(|l| Json::String(l.clone())).collect()),
                ));
            }
        }
        AttributeKind::Continuous { min, max } => {
            fields.push(("kind".to_string(), Json::String("continuous".to_string())));
            fields.push(("min".to_string(), Json::Number(*min)));
            fields.push(("max".to_string(), Json::Number(*max)));
            fields.push(("bins".to_string(), Json::from_usize(attr.domain_size())));
        }
    }
    if let Some(tree) = attr.taxonomy() {
        fields.push(("taxonomy".to_string(), taxonomy_to_json(tree)));
    }
    Json::Object(fields)
}

fn attribute_from_json(json: &Json, index: usize) -> Result<Attribute, ModelError> {
    let path = |field: &str| ModelError::Field(format!("schema[{index}].{field}"));
    let name = json.get("name").and_then(Json::as_str).ok_or_else(|| path("name"))?;
    let kind = json.get("kind").and_then(Json::as_str).ok_or_else(|| path("kind"))?;
    let attr = match kind {
        "binary" => Attribute::binary(name),
        "categorical" => {
            let size = json.get("size").and_then(Json::as_usize).ok_or_else(|| path("size"))?;
            match json.get("labels") {
                None => Attribute::categorical(name, size)
                    .map_err(|e| ModelError::Invalid(format!("schema[{index}]: {e}")))?,
                Some(labels) => {
                    let items = labels.as_array().ok_or_else(|| path("labels"))?;
                    let labels: Vec<&str> = items
                        .iter()
                        .map(|l| l.as_str().ok_or_else(|| path("labels[*]")))
                        .collect::<Result<_, _>>()?;
                    if labels.len() != size {
                        return Err(ModelError::Invalid(format!(
                            "schema[{index}]: {} labels for domain size {size}",
                            labels.len()
                        )));
                    }
                    Attribute::categorical_labelled(name, labels)
                        .map_err(|e| ModelError::Invalid(format!("schema[{index}]: {e}")))?
                }
            }
        }
        "continuous" => {
            let min = json.get("min").and_then(Json::as_f64).ok_or_else(|| path("min"))?;
            let max = json.get("max").and_then(Json::as_f64).ok_or_else(|| path("max"))?;
            let bins = json.get("bins").and_then(Json::as_usize).ok_or_else(|| path("bins"))?;
            Attribute::continuous(name, min, max, bins)
                .map_err(|e| ModelError::Invalid(format!("schema[{index}]: {e}")))?
        }
        other => {
            return Err(ModelError::Invalid(format!(
                "schema[{index}]: unknown attribute kind `{other}`"
            )))
        }
    };
    match json.get("taxonomy") {
        None => Ok(attr),
        Some(tree) => {
            let tree = taxonomy_from_json(tree, index)?;
            attr.with_taxonomy(tree)
                .map_err(|e| ModelError::Invalid(format!("schema[{index}]: {e}")))
        }
    }
}

/// Serializes a taxonomy as its leaf count plus per-level parent maps.
fn taxonomy_to_json(tree: &TaxonomyTree) -> Json {
    // Reconstruct parent maps from the public leaf→level lookups: node `c`
    // at level `l` has the parent shared by all of its leaves at level `l+1`.
    let mut maps: Vec<Json> = Vec::with_capacity(tree.height().saturating_sub(1));
    for level in 0..tree.height() - 1 {
        let mut map = vec![0u32; tree.level_size(level)];
        let fine = tree.level_lookup(level);
        let coarse = tree.level_lookup(level + 1);
        for (leaf, &node) in fine.iter().enumerate() {
            map[node as usize] = coarse[leaf];
        }
        maps.push(Json::Array(map.into_iter().map(|p| Json::from_usize(p as usize)).collect()));
    }
    Json::object(vec![
        ("leaf_count", Json::from_usize(tree.leaf_count())),
        ("parent_maps", Json::Array(maps)),
    ])
}

fn taxonomy_from_json(json: &Json, index: usize) -> Result<TaxonomyTree, ModelError> {
    let path = |field: &str| ModelError::Field(format!("schema[{index}].taxonomy.{field}"));
    let leaf_count =
        json.get("leaf_count").and_then(Json::as_usize).ok_or_else(|| path("leaf_count"))?;
    let maps_json =
        json.get("parent_maps").and_then(Json::as_array).ok_or_else(|| path("parent_maps"))?;
    let mut maps = Vec::with_capacity(maps_json.len());
    for level in maps_json {
        let entries = level.as_array().ok_or_else(|| path("parent_maps[*]"))?;
        let map: Vec<u32> = entries
            .iter()
            .map(|e| e.as_usize().map(|v| v as u32).ok_or_else(|| path("parent_maps[*][*]")))
            .collect::<Result<_, _>>()?;
        maps.push(map);
    }
    TaxonomyTree::from_parent_maps(leaf_count, maps)
        .map_err(|e| ModelError::Invalid(format!("schema[{index}]: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_schema() -> Schema {
        let workclass = Attribute::categorical_labelled(
            "workclass",
            [
                "self-emp-inc",
                "self-emp-not-inc",
                "federal-gov",
                "state-gov",
                "local-gov",
                "private",
                "without-pay",
                "never-worked",
            ],
        )
        .unwrap()
        .with_taxonomy(
            TaxonomyTree::from_groups(8, &[vec![0, 1], vec![2, 3, 4], vec![5], vec![6, 7]])
                .unwrap(),
        )
        .unwrap();
        let age = Attribute::continuous("age", 0.0, 80.0, 16)
            .unwrap()
            .with_taxonomy(TaxonomyTree::balanced_binary(16).unwrap())
            .unwrap();
        Schema::new(vec![
            Attribute::binary("retired"),
            age,
            workclass,
            Attribute::categorical("zip", 100).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn round_trips_a_mixed_schema() {
        let schema = mixed_schema();
        let json = schema_to_json(&schema);
        let back = schema_from_json(&json).unwrap();
        assert_eq!(back, schema);
    }

    #[test]
    fn round_trips_through_text() {
        let schema = mixed_schema();
        let text = schema_to_json(&schema).to_string_pretty().unwrap();
        let back = schema_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, schema);
    }

    #[test]
    fn taxonomy_parent_maps_match_original_generalisation() {
        let tree = TaxonomyTree::balanced_binary(16).unwrap();
        let json = taxonomy_to_json(&tree);
        let back = taxonomy_from_json(&json, 0).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn missing_fields_name_their_path() {
        let json = Json::parse(r#"[{"kind": "binary"}]"#).unwrap();
        let e = schema_from_json(&json).unwrap_err();
        assert_eq!(e, ModelError::Field("schema[0].name".into()));

        let json = Json::parse(r#"[{"name": "a", "kind": "categorical"}]"#).unwrap();
        let e = schema_from_json(&json).unwrap_err();
        assert_eq!(e, ModelError::Field("schema[0].size".into()));

        let json = Json::parse(r#"[{"name": "a", "kind": "continuous", "min": 0}]"#).unwrap();
        let e = schema_from_json(&json).unwrap_err();
        assert_eq!(e, ModelError::Field("schema[0].max".into()));
    }

    #[test]
    fn rejects_unknown_kind_and_bad_values() {
        let json = Json::parse(r#"[{"name": "a", "kind": "quantum"}]"#).unwrap();
        assert!(matches!(schema_from_json(&json), Err(ModelError::Invalid(_))));

        // Label count disagrees with declared size.
        let json = Json::parse(
            r#"[{"name": "a", "kind": "categorical", "size": 3, "labels": ["x", "y"]}]"#,
        )
        .unwrap();
        assert!(matches!(schema_from_json(&json), Err(ModelError::Invalid(_))));

        // Continuous with inverted range.
        let json =
            Json::parse(r#"[{"name": "a", "kind": "continuous", "min": 5, "max": 1, "bins": 4}]"#)
                .unwrap();
        assert!(matches!(schema_from_json(&json), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn rejects_corrupt_taxonomy() {
        let json = Json::parse(
            r#"[{"name": "a", "kind": "categorical", "size": 4,
                 "taxonomy": {"leaf_count": 4, "parent_maps": [[0, 1, 2, 3]]}}]"#,
        )
        .unwrap();
        // Identity parent map is not coarser — the data crate rejects it.
        assert!(matches!(schema_from_json(&json), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn rejects_duplicate_attribute_names() {
        let json =
            Json::parse(r#"[{"name": "a", "kind": "binary"}, {"name": "a", "kind": "binary"}]"#)
                .unwrap();
        assert!(matches!(schema_from_json(&json), Err(ModelError::Invalid(_))));
    }

    #[test]
    fn unlabelled_domains_stay_unlabelled() {
        let schema = Schema::new(vec![Attribute::categorical("zip", 10).unwrap()]).unwrap();
        let back = schema_from_json(&schema_to_json(&schema)).unwrap();
        assert!(back.attribute(0).domain().labels().is_none());
    }
}
