//! A minimal, dependency-free JSON reader/writer for release artifacts.
//!
//! The release format needs exact round-trips of `f64` probabilities,
//! deterministic output (object keys keep insertion order), and good error
//! positions — nothing more. Rust's `Display` for `f64` prints the shortest
//! decimal string that parses back to the same bits, which gives lossless
//! number round-trips for free.
//!
//! The grammar is RFC 8259 JSON with two deliberate restrictions: duplicate
//! object keys are rejected (the artifact format never produces them, and
//! accepting them would hide corruption), and nesting deeper than
//! [`MAX_DEPTH`] is rejected (the artifact format is ~4 levels deep; a depth
//! cap turns adversarial inputs into clean errors instead of stack overflow).

use std::fmt;

/// Maximum container nesting accepted by the parser.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Object(Vec<(String, Json)>),
}

/// A JSON syntax or serialization error with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line (0 for serialization errors with no source text).
    pub line: usize,
    /// 1-based column (0 for serialization errors).
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}, column {}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    #[must_use]
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from an unsigned integer (exact for values below 2^53).
    #[must_use]
    pub fn from_usize(v: usize) -> Json {
        debug_assert!(v < (1usize << 53), "usize {v} not exactly representable");
        Json::Number(v as f64)
    }

    /// Looks up a key in an object; `None` for other variants or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x < (1u64 << 53) as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    ///
    /// # Errors
    /// Returns a [`JsonError`] if the document contains a non-finite number
    /// (JSON has no representation for NaN or infinities).
    pub fn to_string_pretty(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, 0, true)?;
        out.push('\n');
        Ok(out)
    }

    /// Serializes without any whitespace.
    ///
    /// # Errors
    /// Returns a [`JsonError`] if the document contains a non-finite number.
    pub fn to_string_compact(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out, 0, false)?;
        Ok(out)
    }

    fn write(&self, out: &mut String, depth: usize, pretty: bool) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(x) => {
                if !x.is_finite() {
                    return Err(JsonError {
                        line: 0,
                        col: 0,
                        message: format!("cannot serialize non-finite number {x}"),
                    });
                }
                // Shortest round-trip representation; normalise -0.0 so the
                // output is independent of how the value was computed.
                let x = if *x == 0.0 { 0.0 } else { *x };
                out.push_str(&x.to_string());
            }
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return Ok(());
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    item.write(out, depth + 1, pretty)?;
                }
                if pretty {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return Ok(());
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        indent(out, depth + 1);
                    }
                    write_escaped(key, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, depth + 1, pretty)?;
                }
                if pretty {
                    out.push('\n');
                    indent(out, depth);
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses a JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    /// Returns a [`JsonError`] with a 1-based line/column on malformed input,
    /// duplicate object keys, nesting beyond [`MAX_DEPTH`], or trailing
    /// non-whitespace.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError { line, col, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_start = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                self.pos = key_start;
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a low surrogate if needed).
    /// On entry `pos` is at the first hex digit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII by scan");
        let value: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !value.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Number(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Number(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": {"d": [true, false]}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a: 1}",
            "1 2",
            "[1],",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "+1",
            "--1",
            ".5",
            "{\"a\":1,}",
            "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_duplicate_keys() {
        let e = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn error_positions_are_one_based() {
        let e = Json::parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.col >= 8, "column was {}", e.col);
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        // One below the limit parses fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t nul \u{0000} emoji 🦀";
        let doc = Json::String(s.into()).to_string_compact().unwrap();
        assert_eq!(Json::parse(&doc).unwrap(), Json::String(s.into()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::String("A".into()));
        assert_eq!(Json::parse(r#""🦀""#).unwrap(), Json::String("🦀".into()));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "unpaired high surrogate");
        assert!(Json::parse(r#""\udd80""#).is_err(), "unpaired low surrogate");
        assert!(Json::parse(r#""\ud83eA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn rejects_unescaped_control_characters() {
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn non_finite_numbers_fail_to_serialize() {
        assert!(Json::Number(f64::NAN).to_string_compact().is_err());
        assert!(Json::Number(f64::INFINITY).to_string_pretty().is_err());
    }

    #[test]
    fn negative_zero_normalises() {
        assert_eq!(Json::Number(-0.0).to_string_compact().unwrap(), "0");
    }

    #[test]
    fn pretty_output_is_stable() {
        let v = Json::object(vec![
            ("b", Json::from_usize(1)),
            ("a", Json::Array(vec![Json::Null, Json::Bool(true)])),
        ]);
        let expected = "{\n  \"b\": 1,\n  \"a\": [\n    null,\n    true\n  ]\n}\n";
        assert_eq!(v.to_string_pretty().unwrap(), expected);
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse(r#"{"n": 1.5, "s": "x", "a": [], "b": true}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("n").unwrap().as_usize(), None, "1.5 is not an integer");
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("a").unwrap().as_array(), Some(&[][..]));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("anything"), None);
    }

    #[test]
    fn as_usize_bounds() {
        assert_eq!(Json::Number(0.0).as_usize(), Some(0));
        assert_eq!(Json::Number(-1.0).as_usize(), None);
        assert_eq!(Json::Number(9.007199254740992e15).as_usize(), None, "2^53 exceeds the cap");
    }

    fn arb_json() -> impl Strategy<Value = Json> {
        let leaf = prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            // Finite doubles only; JSON cannot carry NaN/inf.
            any::<f64>().prop_filter("finite", |x| x.is_finite()).prop_map(Json::Number),
            ".{0,12}".prop_map(Json::String),
        ];
        leaf.prop_recursive(4, 64, 6, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
                proptest::collection::vec(("k[0-9a-f]{1,6}", inner), 0..6).prop_map(|fields| {
                    // Deduplicate keys: the writer never emits duplicates and
                    // the parser rejects them.
                    let mut seen = Vec::new();
                    let mut out = Vec::new();
                    for (k, v) in fields {
                        if !seen.contains(&k) {
                            seen.push(k.clone());
                            out.push((k, v));
                        }
                    }
                    Json::Object(out)
                }),
            ]
        })
    }

    proptest! {
        /// print → parse is the identity, in both pretty and compact modes.
        #[test]
        fn prop_round_trip(v in arb_json()) {
            let pretty = v.to_string_pretty().unwrap();
            let back = Json::parse(&pretty).unwrap();
            prop_assert!(json_eq(&v, &back), "pretty: {pretty}");
            let compact = v.to_string_compact().unwrap();
            let back = Json::parse(&compact).unwrap();
            prop_assert!(json_eq(&v, &back), "compact: {compact}");
        }

        /// Numbers round-trip bit-exactly through the shortest representation.
        #[test]
        fn prop_number_round_trip(x in any::<f64>().prop_filter("finite", |x| x.is_finite())) {
            let doc = Json::Number(x).to_string_compact().unwrap();
            let back = Json::parse(&doc).unwrap().as_f64().unwrap();
            // -0.0 is deliberately normalised to 0.0.
            let expect = if x == 0.0 { 0.0 } else { x };
            prop_assert_eq!(back.to_bits(), expect.to_bits());
        }

        /// Arbitrary strings survive escaping.
        #[test]
        fn prop_string_round_trip(s in "\\PC*") {
            let doc = Json::String(s.clone()).to_string_compact().unwrap();
            prop_assert_eq!(Json::parse(&doc).unwrap(), Json::String(s));
        }
    }

    /// Structural equality with bitwise f64 comparison (PartialEq on f64
    /// would fail on -0.0 vs 0.0 asymmetry introduced by normalisation).
    fn json_eq(a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Number(x), Json::Number(y)) => {
                let x = if *x == 0.0 { 0.0f64 } else { *x };
                x.to_bits() == y.to_bits()
            }
            (Json::Array(xs), Json::Array(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| json_eq(x, y))
            }
            (Json::Object(xs), Json::Object(ys)) => {
                xs.len() == ys.len()
                    && xs.iter().zip(ys).all(|((k, x), (l, y))| k == l && json_eq(x, y))
            }
            _ => a == b,
        }
    }
}
