//! Error type for model release artifacts.

use std::fmt;

use crate::json::JsonError;

/// Errors raised while serializing, parsing, or validating a released model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Malformed JSON text.
    Json(JsonError),
    /// The artifact's `format` field is missing or names an unknown version.
    UnsupportedFormat(String),
    /// A required field is missing or has the wrong JSON type.
    ///
    /// The string is a dotted path into the document (e.g.
    /// `schema[2].kind.type`).
    Field(String),
    /// The artifact parsed, but its contents are internally inconsistent
    /// (dimension mismatches, non-normalised conditionals, invalid network).
    Invalid(String),
    /// Filesystem failure while saving or loading.
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Json(e) => write!(f, "json: {e}"),
            ModelError::UnsupportedFormat(found) => {
                write!(f, "unsupported artifact format `{found}`")
            }
            ModelError::Field(path) => write!(f, "missing or mistyped field `{path}`"),
            ModelError::Invalid(msg) => write!(f, "invalid model: {msg}"),
            ModelError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<JsonError> for ModelError {
    fn from(e: JsonError) -> Self {
        ModelError::Json(e)
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let e = ModelError::UnsupportedFormat("privbayes-model/99".into());
        assert!(e.to_string().contains("privbayes-model/99"));
        let e = ModelError::Field("schema[2].kind".into());
        assert!(e.to_string().contains("schema[2].kind"));
        let e = ModelError::Invalid("probs do not sum to 1".into());
        assert!(e.to_string().contains("sum to 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ModelError = io.into();
        assert!(matches!(e, ModelError::Io(_)));
    }
}
