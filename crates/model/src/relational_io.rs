//! Release artifacts for the multi-table extension: both phase models of a
//! [`privbayes_relational`] synthesis in one versioned JSON document.
//!
//! The relational pipeline is `(ε_entity + ε_fact)`-DP per individual
//! (sequential composition), so — exactly as in the single-table case — the
//! *models* themselves are publishable. A consumer can regenerate two-table
//! synthetic databases of any size from the artifact without touching the
//! sensitive data again.

use std::fs;
use std::path::Path;

use privbayes::conditionals::NoisyModel;
use privbayes_data::Schema;
use privbayes_relational::{
    ConditionalFactModel, RelationalDataset, RelationalSchema, RelationalSynthesis,
    EVENT_COUNT_ATTR,
};
use rand::Rng;

use crate::error::ModelError;
use crate::json::Json;
use crate::model_io::{
    conditionals_from_json, conditionals_to_json, network_from_json, network_to_json,
};
use crate::schema_io::{schema_from_json, schema_to_json};

/// The relational artifact format identifier.
pub const RELATIONAL_FORMAT: &str = "privbayes-relational-model/1";

/// Provenance recorded alongside a released relational model.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalMetadata {
    /// Budget spent on the entity (flattened-view) phase.
    pub epsilon_entity: f64,
    /// Budget spent on the fact phase (group level).
    pub epsilon_fact: f64,
    /// Number of individuals in the sensitive input.
    pub source_entities: usize,
    /// Number of fact rows in the sensitive input.
    pub source_facts: usize,
    /// Free-form comment.
    pub comment: String,
}

impl RelationalMetadata {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("epsilon_entity", Json::Number(self.epsilon_entity)),
            ("epsilon_fact", Json::Number(self.epsilon_fact)),
            ("source_entities", Json::from_usize(self.source_entities)),
            ("source_facts", Json::from_usize(self.source_facts)),
            ("comment", Json::String(self.comment.clone())),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, ModelError> {
        let path = |field: &str| ModelError::Field(format!("metadata.{field}"));
        Ok(Self {
            epsilon_entity: json
                .get("epsilon_entity")
                .and_then(Json::as_f64)
                .ok_or_else(|| path("epsilon_entity"))?,
            epsilon_fact: json
                .get("epsilon_fact")
                .and_then(Json::as_f64)
                .ok_or_else(|| path("epsilon_fact"))?,
            source_entities: json
                .get("source_entities")
                .and_then(Json::as_usize)
                .ok_or_else(|| path("source_entities"))?,
            source_facts: json
                .get("source_facts")
                .and_then(Json::as_usize)
                .ok_or_else(|| path("source_facts"))?,
            comment: json
                .get("comment")
                .and_then(Json::as_str)
                .ok_or_else(|| path("comment"))?
                .to_string(),
        })
    }
}

/// A released relational model: the two-table schema plus both phase models.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleasedRelationalModel {
    /// Fitting provenance.
    pub metadata: RelationalMetadata,
    /// The two-table schema (including the fan-out cap).
    pub schema: RelationalSchema,
    /// The entity-phase model, over [`RelationalSchema::flattened`].
    pub entity_model: NoisyModel,
    /// The fact-phase conditional model, over [`RelationalSchema::fact_view`].
    pub fact_model: ConditionalFactModel,
}

impl ReleasedRelationalModel {
    /// Bundles a synthesis result into a release artifact.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] if the models do not match the schema.
    pub fn from_synthesis(
        schema: RelationalSchema,
        synthesis: &RelationalSynthesis,
        comment: impl Into<String>,
        source_entities: usize,
        source_facts: usize,
    ) -> Result<Self, ModelError> {
        let artifact = Self {
            metadata: RelationalMetadata {
                epsilon_entity: synthesis.epsilon_entity,
                epsilon_fact: synthesis.epsilon_fact,
                source_entities,
                source_facts,
                comment: comment.into(),
            },
            schema,
            entity_model: synthesis.entity_result.model.clone(),
            fact_model: synthesis.fact_model.clone(),
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Checks that both models cover their respective view schemas.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] describing the first mismatch.
    pub fn validate(&self) -> Result<(), ModelError> {
        let flattened = self.schema.flattened();
        if self.entity_model.conditionals.len() != flattened.len() {
            return Err(ModelError::Invalid(format!(
                "entity model covers {} attributes, flattened view has {}",
                self.entity_model.conditionals.len(),
                flattened.len()
            )));
        }
        for (i, cond) in self.entity_model.conditionals.iter().enumerate() {
            let expected = flattened.attribute(cond.child).domain_size();
            if cond.child_dim != expected {
                return Err(ModelError::Invalid(format!(
                    "entity conditional {i}: child_dim {} vs domain {expected}",
                    cond.child_dim
                )));
            }
        }
        if self.fact_model.entity_arity() != self.schema.entity_arity() {
            return Err(ModelError::Invalid(format!(
                "fact model evidence arity {} vs schema entity arity {}",
                self.fact_model.entity_arity(),
                self.schema.entity_arity()
            )));
        }
        let view = self.schema.fact_view();
        for cond in self.fact_model.conditionals() {
            let expected = view.attribute(cond.child).domain_size();
            if cond.child_dim != expected {
                return Err(ModelError::Invalid(format!(
                    "fact conditional for attribute {}: child_dim {} vs domain {expected}",
                    cond.child, cond.child_dim
                )));
            }
        }
        Ok(())
    }

    /// Serializes the artifact to pretty-printed JSON.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] on validation failure and JSON errors
    /// otherwise.
    pub fn to_json_string(&self) -> Result<String, ModelError> {
        self.validate()?;
        let flattened = self.schema.flattened();
        let fact_view = self.schema.fact_view();
        let doc = Json::object(vec![
            ("format", Json::String(RELATIONAL_FORMAT.to_string())),
            ("metadata", self.metadata.to_json()),
            ("max_fanout", Json::from_usize(self.schema.max_fanout())),
            ("entity_arity", Json::from_usize(self.schema.entity_arity())),
            ("flattened_schema", schema_to_json(flattened)),
            ("fact_view_schema", schema_to_json(fact_view)),
            ("entity_network", network_to_json(&self.entity_model.network)),
            ("entity_conditionals", conditionals_to_json(&self.entity_model.conditionals)),
            ("fact_network", network_to_json(self.fact_model.network())),
            ("fact_conditionals", conditionals_to_json(self.fact_model.conditionals())),
        ]);
        Ok(doc.to_string_pretty()?)
    }

    /// Parses and validates an artifact from JSON text.
    ///
    /// # Errors
    /// Returns [`ModelError::Json`] / [`ModelError::UnsupportedFormat`] /
    /// [`ModelError::Field`] / [`ModelError::Invalid`] as in
    /// [`crate::ReleasedModel::from_json_string`].
    pub fn from_json_string(text: &str) -> Result<Self, ModelError> {
        let json = Json::parse(text)?;
        let format = json
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| ModelError::Field("format".into()))?;
        if format != RELATIONAL_FORMAT {
            return Err(ModelError::UnsupportedFormat(format.to_string()));
        }
        let metadata = RelationalMetadata::from_json(
            json.get("metadata").ok_or_else(|| ModelError::Field("metadata".into()))?,
        )?;
        let max_fanout = json
            .get("max_fanout")
            .and_then(Json::as_usize)
            .ok_or_else(|| ModelError::Field("max_fanout".into()))?;
        let entity_arity = json
            .get("entity_arity")
            .and_then(Json::as_usize)
            .ok_or_else(|| ModelError::Field("entity_arity".into()))?;
        let flattened = schema_from_json(
            json.get("flattened_schema")
                .ok_or_else(|| ModelError::Field("flattened_schema".into()))?,
        )?;
        let fact_view = schema_from_json(
            json.get("fact_view_schema")
                .ok_or_else(|| ModelError::Field("fact_view_schema".into()))?,
        )?;
        let schema =
            relational_schema_from_views(&flattened, &fact_view, entity_arity, max_fanout)?;

        let entity_network = network_from_json(
            json.get("entity_network").ok_or_else(|| ModelError::Field("entity_network".into()))?,
            &flattened,
            "entity_network",
        )?;
        let entity_conditionals = conditionals_from_json(
            json.get("entity_conditionals")
                .ok_or_else(|| ModelError::Field("entity_conditionals".into()))?,
            "entity_conditionals",
        )?;
        let fact_network = network_from_json(
            json.get("fact_network").ok_or_else(|| ModelError::Field("fact_network".into()))?,
            &fact_view,
            "fact_network",
        )?;
        let fact_conditionals = conditionals_from_json(
            json.get("fact_conditionals")
                .ok_or_else(|| ModelError::Field("fact_conditionals".into()))?,
            "fact_conditionals",
        )?;
        let fact_model =
            ConditionalFactModel::from_parts(entity_arity, fact_network, fact_conditionals)
                .map_err(|e| ModelError::Invalid(e.to_string()))?;

        let artifact = Self {
            metadata,
            schema,
            entity_model: NoisyModel { network: entity_network, conditionals: entity_conditionals },
            fact_model,
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Writes the artifact to a file.
    ///
    /// # Errors
    /// See [`ReleasedRelationalModel::to_json_string`] plus I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        fs::write(path, self.to_json_string()?)?;
        Ok(())
    }

    /// Reads and validates an artifact from a file.
    ///
    /// # Errors
    /// See [`ReleasedRelationalModel::from_json_string`] plus I/O failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        Self::from_json_string(&fs::read_to_string(path)?)
    }

    /// Regenerates a two-table synthetic database: sample `n_entities`
    /// individuals (with fact counts) from the entity model, then their
    /// facts from the conditional fact model. Pure post-processing.
    ///
    /// # Errors
    /// Returns [`ModelError::Invalid`] on artifact corruption that validation
    /// could not detect.
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        n_entities: usize,
        rng: &mut R,
    ) -> Result<RelationalDataset, ModelError> {
        let flattened = self.schema.flattened();
        let flat =
            privbayes::sampler::sample_synthetic(&self.entity_model, flattened, n_entities, rng)
                .map_err(|e| ModelError::Invalid(e.to_string()))?;
        let e_arity = self.schema.entity_arity();
        let m = self.schema.max_fanout();
        let mut entity_rows = Vec::with_capacity(n_entities);
        let mut fact_rows = Vec::new();
        let mut owners = Vec::new();
        for r in 0..flat.n() {
            let row = flat.row(r);
            let entity_values = &row[..e_arity];
            let count = (row[e_arity] as usize).min(m);
            for _ in 0..count {
                fact_rows.push(self.fact_model.sample_fact(entity_values, rng));
                owners.push(r);
            }
            entity_rows.push(entity_values.to_vec());
        }
        let entities =
            privbayes_data::Dataset::from_rows(self.schema.entity().clone(), &entity_rows)
                .map_err(|e| ModelError::Invalid(e.to_string()))?;
        let facts = privbayes_data::Dataset::from_rows(self.schema.fact().clone(), &fact_rows)
            .map_err(|e| ModelError::Invalid(e.to_string()))?;
        RelationalDataset::new(self.schema.clone(), entities, facts, owners)
            .map_err(|e| ModelError::Invalid(e.to_string()))
    }
}

/// Reconstructs the [`RelationalSchema`] from its serialized views.
///
/// The flattened view is `entity attrs + EVENT_COUNT_ATTR`; the fact view is
/// `entity attrs + fact attrs`. Rebuilding through [`RelationalSchema::new`]
/// re-validates every invariant and regenerates both views, which are then
/// cross-checked against the stored ones.
fn relational_schema_from_views(
    flattened: &Schema,
    fact_view: &Schema,
    entity_arity: usize,
    max_fanout: usize,
) -> Result<RelationalSchema, ModelError> {
    if entity_arity == 0 || entity_arity + 1 != flattened.len() {
        return Err(ModelError::Invalid(format!(
            "entity arity {entity_arity} inconsistent with a {}-attribute flattened view",
            flattened.len()
        )));
    }
    if flattened.attribute(entity_arity).name() != EVENT_COUNT_ATTR {
        return Err(ModelError::Invalid(format!(
            "flattened view must end with `{EVENT_COUNT_ATTR}`"
        )));
    }
    if entity_arity >= fact_view.len() {
        return Err(ModelError::Invalid(format!(
            "entity arity {entity_arity} inconsistent with a {}-attribute fact view",
            fact_view.len()
        )));
    }
    let entity = Schema::new(flattened.attributes()[..entity_arity].to_vec())
        .map_err(|e| ModelError::Invalid(format!("entity schema: {e}")))?;
    let fact = Schema::new(fact_view.attributes()[entity_arity..].to_vec())
        .map_err(|e| ModelError::Invalid(format!("fact schema: {e}")))?;
    let schema = RelationalSchema::new(entity, fact, max_fanout)
        .map_err(|e| ModelError::Invalid(e.to_string()))?;
    if schema.flattened() != flattened || schema.fact_view() != fact_view {
        return Err(ModelError::Invalid(
            "stored views disagree with the reconstructed relational schema".into(),
        ));
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_relational::{clinic_benchmark, RelationalOptions, RelationalPrivBayes};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted() -> (RelationalDataset, ReleasedRelationalModel) {
        let data = clinic_benchmark(800, 3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let synthesis = RelationalPrivBayes::new(RelationalOptions::new(2.0))
            .synthesize(&data, &mut rng)
            .unwrap();
        let artifact = ReleasedRelationalModel::from_synthesis(
            data.schema().clone(),
            &synthesis,
            "unit test",
            data.n_entities(),
            data.n_facts(),
        )
        .unwrap();
        (data, artifact)
    }

    #[test]
    fn round_trips_bit_exactly() {
        let (_, artifact) = fitted();
        let text = artifact.to_json_string().unwrap();
        let back = ReleasedRelationalModel::from_json_string(&text).unwrap();
        assert_eq!(back, artifact);
    }

    #[test]
    fn save_load_and_synthesize() {
        let (data, artifact) = fitted();
        let dir = std::env::temp_dir().join(format!("privbayes-rel-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clinic.json");
        artifact.save(&path).unwrap();
        let consumer = ReleasedRelationalModel::load(&path).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let synth = consumer.synthesize(500, &mut rng).unwrap();
        assert_eq!(synth.n_entities(), 500);
        assert!(synth.fanouts().iter().all(|&f| f <= data.schema().max_fanout()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn consumer_synthesis_matches_owner_given_seed() {
        let (_, artifact) = fitted();
        let back =
            ReleasedRelationalModel::from_json_string(&artifact.to_json_string().unwrap()).unwrap();
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        let a = artifact.synthesize(200, &mut rng_a).unwrap();
        let b = back.synthesize(200, &mut rng_b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_wrong_format_and_missing_fields() {
        let (_, artifact) = fitted();
        let text = artifact.to_json_string().unwrap();
        let e = ReleasedRelationalModel::from_json_string(&text.replacen(
            RELATIONAL_FORMAT,
            "privbayes-model/1",
            1,
        ))
        .unwrap_err();
        assert!(matches!(e, ModelError::UnsupportedFormat(_)));
        for field in ["entity_network", "fact_conditionals", "max_fanout"] {
            let broken = text.replacen(&format!("\"{field}\""), "\"dropped\"", 1);
            assert!(
                ReleasedRelationalModel::from_json_string(&broken).is_err(),
                "must reject artifact without `{field}`"
            );
        }
    }

    #[test]
    fn validation_catches_model_schema_mismatch() {
        let (_, mut artifact) = fitted();
        artifact.entity_model.conditionals.pop();
        assert!(artifact.validate().is_err());
    }

    #[test]
    fn tampered_fanout_is_rejected() {
        let (_, artifact) = fitted();
        let text = artifact.to_json_string().unwrap();
        // Shrinking the cap makes the stored event_count domain inconsistent.
        let tampered = text.replacen("\"max_fanout\": 3", "\"max_fanout\": 2", 1);
        assert!(ReleasedRelationalModel::from_json_string(&tampered).is_err());
    }
}
