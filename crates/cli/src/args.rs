//! Flag parsing: `command --key value … [--switch …]`, no external deps.

use std::collections::BTreeMap;
use std::str::FromStr;

use crate::error::CliError;

/// Parsed command line: one subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    command: String,
    flags: BTreeMap<String, String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["help", "verbose"];

impl ParsedArgs {
    /// Parses `args` (without the binary name).
    ///
    /// # Errors
    /// Returns [`CliError::Usage`] for a missing command, a flag without a
    /// value, a repeated flag, or a stray positional argument.
    pub fn parse<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut it = args.into_iter();
        let command =
            it.next().ok_or_else(|| CliError::Usage("missing command (try `help`)".into()))?;
        if let Some(stripped) = command.strip_prefix("--") {
            // `--help` with no command is accepted for discoverability.
            if stripped == "help" || stripped == "h" {
                return Ok(Self { command: "help".into(), flags: BTreeMap::new() });
            }
            return Err(CliError::Usage(format!("expected a command, got flag `{command}`")));
        }
        let mut flags = BTreeMap::new();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected a flag, got `{arg}`")))?
                .to_string();
            let value = if SWITCHES.contains(&key.as_str()) {
                String::new()
            } else {
                it.next().ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?
            };
            if flags.insert(key.clone(), value).is_some() {
                return Err(CliError::Usage(format!("--{key} given twice")));
            }
        }
        Ok(Self { command, flags })
    }

    /// The subcommand.
    #[must_use]
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Whether `--help` was given.
    #[must_use]
    pub fn wants_help(&self) -> bool {
        self.flags.contains_key("help")
    }

    /// Whether `--verbose` was given.
    #[must_use]
    pub fn verbose(&self) -> bool {
        self.flags.contains_key("verbose")
    }

    /// A required flag's raw value.
    ///
    /// # Errors
    /// Returns [`CliError::Usage`] if the flag is missing.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// An optional flag's raw value.
    #[must_use]
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parses an optional flag, falling back to `default`.
    ///
    /// # Errors
    /// Returns [`CliError::Usage`] if the flag is present but unparsable.
    pub fn parse_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| CliError::Usage(format!("--{key}: cannot parse `{raw}`")))
            }
        }
    }

    /// Parses an optional flag into `Option<T>`.
    ///
    /// # Errors
    /// Returns [`CliError::Usage`] if the flag is present but unparsable.
    pub fn parse_opt<T: FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{key}: cannot parse `{raw}`"))),
        }
    }

    /// Rejects flags outside `known` so typos fail fast.
    ///
    /// # Errors
    /// Returns [`CliError::Usage`] naming the first unknown flag.
    pub fn expect_only(&self, known: &[&str]) -> Result<(), CliError> {
        for key in self.flags.keys() {
            if key != "help" && !known.contains(&key.as_str()) {
                return Err(CliError::Usage(format!(
                    "unknown flag --{key} for `{}`",
                    self.command
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, CliError> {
        ParsedArgs::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["fit", "--epsilon", "1.0", "--data", "d.csv"]).unwrap();
        assert_eq!(a.command(), "fit");
        assert_eq!(a.required("epsilon").unwrap(), "1.0");
        assert_eq!(a.optional("data"), Some("d.csv"));
        assert_eq!(a.optional("missing"), None);
    }

    #[test]
    fn typed_parsing() {
        let a = parse(&["fit", "--epsilon", "0.5", "--seed", "7"]).unwrap();
        assert_eq!(a.parse_or("epsilon", 1.0).unwrap(), 0.5);
        assert_eq!(a.parse_or("beta", 0.3).unwrap(), 0.3);
        assert_eq!(a.parse_opt::<u64>("seed").unwrap(), Some(7));
        assert_eq!(a.parse_opt::<u64>("rows").unwrap(), None);
        assert!(a.parse_or("epsilon", 0u32).is_err(), "0.5 is not a u32");
    }

    #[test]
    fn usage_errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["fit", "--epsilon"]).is_err(), "flag without value");
        assert!(parse(&["fit", "stray"]).is_err(), "positional after command");
        assert!(parse(&["fit", "--a", "1", "--a", "2"]).is_err(), "duplicate flag");
        assert!(parse(&["--frobnicate"]).is_err(), "flag as command");
    }

    #[test]
    fn help_forms() {
        assert_eq!(parse(&["--help"]).unwrap().command(), "help");
        assert!(parse(&["fit", "--help"]).unwrap().wants_help());
    }

    #[test]
    fn expect_only_rejects_typos() {
        let a = parse(&["fit", "--epsilom", "1.0"]).unwrap();
        let e = a.expect_only(&["epsilon"]).unwrap_err();
        assert!(e.to_string().contains("epsilom"));
        let a = parse(&["fit", "--epsilon", "1.0", "--help"]).unwrap();
        assert!(a.expect_only(&["epsilon"]).is_ok(), "--help is always allowed");
    }
}
