//! The four subcommands: `fit`, `synth`, `eval`, `inspect`.

use std::fs;
use std::io::BufReader;
use std::path::Path;

use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_data::csv::{read_csv, write_csv};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::{Dataset, Schema};
use privbayes_marginals::average_workload_tvd;
use privbayes_model::{
    schema_from_json, Json, ModelMetadata, ReleasedModel, ReleasedRelationalModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::ParsedArgs;
use crate::error::CliError;

/// Top-level usage text (the `help` command and `--help`).
pub const USAGE: &str = "\
privbayes-cli — differentially private synthetic data via Bayesian networks

commands:
  fit      --data D.csv --schema S.json --epsilon F --out MODEL.json
           [--beta F=0.3] [--theta F=4] [--encoding vanilla|hierarchical]
           [--consistency N=0] [--seed N] [--comment TEXT]
           Fit a private model on a CSV table and write the release artifact.

  synth    --model MODEL.json --out D.csv [--rows N] [--seed N]
           Sample a synthetic CSV from a released model (no privacy cost).

  synth-relational
           --model MODEL.json --entities N --out-entities E.csv
           --out-facts F.csv [--seed N]
           Regenerate a two-table database from a relational release artifact
           (privbayes-relational-model/1). The facts CSV gets a leading
           `owner` column holding the 0-based entity row index.

  eval     --schema S.json --truth A.csv --synthetic B.csv [--alpha N=2]
           Report average total-variation distance of all 1..=alpha-way
           marginals between two tables.

  inspect  --model MODEL.json
           Print a released model's provenance and network structure
           (handles both single-table and relational artifacts).

The schema file is a JSON array of attributes, e.g.
  [{\"name\": \"age\", \"kind\": \"continuous\", \"min\": 0, \"max\": 90, \"bins\": 16},
   {\"name\": \"smoker\", \"kind\": \"binary\"},
   {\"name\": \"work\", \"kind\": \"categorical\", \"size\": 4,
    \"labels\": [\"gov\", \"private\", \"self\", \"none\"]}]
";

/// Runs a full command line (without the binary name) and returns the text
/// to print on success.
///
/// # Errors
/// Returns [`CliError`] on usage errors, I/O failures, and invalid inputs.
pub fn run<I>(args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = String>,
{
    let parsed = ParsedArgs::parse(args)?;
    if parsed.wants_help() || parsed.command() == "help" {
        return Ok(USAGE.to_string());
    }
    match parsed.command() {
        "fit" => fit(&parsed),
        "synth" => synth(&parsed),
        "synth-relational" => synth_relational(&parsed),
        "eval" => eval(&parsed),
        "inspect" => inspect(&parsed),
        other => Err(CliError::Usage(format!("unknown command `{other}` (try `help`)"))),
    }
}

fn fit(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "data",
        "schema",
        "out",
        "epsilon",
        "beta",
        "theta",
        "encoding",
        "consistency",
        "seed",
        "comment",
    ])?;
    // Validate flags before touching the filesystem, so usage mistakes are
    // reported even when paths are also wrong.
    let out = args.required("out")?;
    let epsilon: f64 = args
        .required("epsilon")?
        .parse()
        .map_err(|_| CliError::Usage("--epsilon: expected a number".into()))?;
    let encoding = match args.optional("encoding").unwrap_or("vanilla") {
        "vanilla" => EncodingKind::Vanilla,
        "hierarchical" => EncodingKind::Hierarchical,
        other => {
            return Err(CliError::Usage(format!(
                "--encoding `{other}` is not supported here; the release artifact needs the \
                 model over the original schema, so choose `vanilla` or `hierarchical`"
            )))
        }
    };
    let schema = load_schema(args.required("schema")?)?;
    let data = load_csv(&schema, args.required("data")?)?;
    let options = PrivBayesOptions::new(epsilon)
        .with_beta(args.parse_or("beta", 0.3)?)
        .with_theta(args.parse_or("theta", 4.0)?)
        .with_encoding(encoding)
        .with_consistency_rounds(args.parse_or("consistency", 0usize)?);

    let mut rng = make_rng(args.parse_opt("seed")?);
    let result = PrivBayes::new(options.clone()).synthesize(&data, &mut rng)?;
    let artifact = ReleasedModel::new(
        ModelMetadata {
            epsilon,
            beta: options.beta,
            theta: options.theta,
            score: options.effective_score().name().to_string(),
            encoding: options.encoding.name().to_string(),
            source_rows: data.n(),
            comment: args.optional("comment").unwrap_or_default().to_string(),
        },
        data.schema().clone(),
        result.model,
    )?;
    artifact.save(out).map_err(|e| CliError::Io { path: out.into(), message: e.to_string() })?;

    Ok(format!(
        "fitted {}-attribute model on {} rows (ε = {epsilon}, degree {})\n{}\nwrote {out}",
        data.d(),
        data.n(),
        result.degree,
        result.network.describe(data.schema()),
    ))
}

fn synth(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model", "out", "rows", "seed"])?;
    let model_path = args.required("model")?;
    let out = args.required("out")?;
    let artifact = ReleasedModel::load(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    let rows = args.parse_or("rows", artifact.metadata.source_rows)?;
    if rows == 0 {
        return Err(CliError::Usage("--rows must be at least 1".into()));
    }
    let mut rng = make_rng(args.parse_opt("seed")?);
    let synthetic = artifact.sample(rows, &mut rng)?;
    save_csv(&synthetic, out)?;
    Ok(format!("sampled {rows} rows from {model_path}\nwrote {out}"))
}

fn synth_relational(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model", "entities", "out-entities", "out-facts", "seed"])?;
    let model_path = args.required("model")?;
    let out_entities = args.required("out-entities")?;
    let out_facts = args.required("out-facts")?;
    let artifact = ReleasedRelationalModel::load(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    let n_entities = args.parse_or("entities", artifact.metadata.source_entities)?;
    if n_entities == 0 {
        return Err(CliError::Usage("--entities must be at least 1".into()));
    }
    let mut rng = make_rng(args.parse_opt("seed")?);
    let synthetic = artifact.synthesize(n_entities, &mut rng)?;
    save_csv(synthetic.entities(), out_entities)?;

    // The fact table gets a leading `owner` column (the 0-based entity row).
    let mut fact_csv = Vec::new();
    write_csv(synthetic.facts(), &mut fact_csv)
        .map_err(|e| CliError::Invalid(format!("{out_facts}: {e}")))?;
    let fact_text = String::from_utf8(fact_csv).expect("CSV writer emits UTF-8");
    let mut lines = fact_text.lines();
    let header = lines.next().unwrap_or_default();
    let mut out = format!("owner,{header}\n");
    for (line, &owner) in lines.zip(synthetic.fact_owner()) {
        out.push_str(&format!("{owner},{line}\n"));
    }
    fs::write(out_facts, out)
        .map_err(|e| CliError::Io { path: out_facts.into(), message: e.to_string() })?;

    Ok(format!(
        "synthesised {} entities and {} facts from {model_path}\nwrote {out_entities} and {out_facts}",
        synthetic.n_entities(),
        synthetic.n_facts(),
    ))
}

fn eval(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["schema", "truth", "synthetic", "alpha"])?;
    let schema = load_schema(args.required("schema")?)?;
    let truth = load_csv(&schema, args.required("truth")?)?;
    let synthetic = load_csv(&schema, args.required("synthetic")?)?;
    let alpha: usize = args.parse_or("alpha", 2)?;
    if alpha == 0 || alpha > schema.len() {
        return Err(CliError::Usage(format!(
            "--alpha must lie in 1..={} for this schema",
            schema.len()
        )));
    }
    let mut out = String::from("alpha,avg_total_variation\n");
    for a in 1..=alpha {
        let tvd = average_workload_tvd(&truth, &synthetic, a);
        out.push_str(&format!("{a},{tvd:.6}\n"));
    }
    Ok(out)
}

fn inspect(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model"])?;
    let model_path = args.required("model")?;
    let text = fs::read_to_string(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    // Dispatch on the declared format.
    let format = Json::parse(&text)
        .map_err(|e| CliError::Invalid(format!("{model_path}: {e}")))?
        .get("format")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| CliError::Invalid(format!("{model_path}: missing `format` field")))?;
    if format == privbayes_model::RELATIONAL_FORMAT {
        return inspect_relational(&text);
    }
    let artifact = ReleasedModel::from_json_string(&text)
        .map_err(|e| CliError::Invalid(format!("{model_path}: {e}")))?;
    let meta = &artifact.metadata;
    let degree = artifact.model.network.pairs().iter().map(|p| p.parents.len()).max().unwrap_or(0);
    Ok(format!(
        "format:    {}\nepsilon:   {}\nbeta:      {}\ntheta:     {}\nscore:     {}\n\
         encoding:  {}\nsource:    {} rows\ncomment:   {}\nattributes: {}\ndegree:    {degree}\n\
         network:\n{}",
        privbayes_model::FORMAT,
        meta.epsilon,
        meta.beta,
        meta.theta,
        meta.score,
        meta.encoding,
        meta.source_rows,
        if meta.comment.is_empty() { "(none)" } else { &meta.comment },
        artifact.schema.len(),
        artifact.model.network.describe(&artifact.schema),
    ))
}

fn inspect_relational(text: &str) -> Result<String, CliError> {
    let artifact = ReleasedRelationalModel::from_json_string(text)?;
    let meta = &artifact.metadata;
    Ok(format!(
        "format:         {}\nepsilon:        {} (entity {} + fact {})\nfan-out cap:    {}\n\
         source:         {} entities, {} facts\ncomment:        {}\n\
         entity network (over the flattened per-individual view):\n{}\n\
         fact network (entity attributes are evidence roots):\n{}",
        privbayes_model::RELATIONAL_FORMAT,
        meta.epsilon_entity + meta.epsilon_fact,
        meta.epsilon_entity,
        meta.epsilon_fact,
        artifact.schema.max_fanout(),
        meta.source_entities,
        meta.source_facts,
        if meta.comment.is_empty() { "(none)" } else { &meta.comment },
        artifact.entity_model.network.describe(artifact.schema.flattened()),
        artifact.fact_model.network().describe(artifact.schema.fact_view()),
    ))
}

fn make_rng(seed: Option<u64>) -> StdRng {
    match seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::try_from_rng(&mut rand::rngs::SysRng)
            .expect("operating-system entropy source unavailable"),
    }
}

fn load_schema(path: &str) -> Result<Schema, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Io { path: path.into(), message: e.to_string() })?;
    let json = Json::parse(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    schema_from_json(&json).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

fn load_csv(schema: &Schema, path: &str) -> Result<Dataset, CliError> {
    let file = fs::File::open(path)
        .map_err(|e| CliError::Io { path: path.into(), message: e.to_string() })?;
    read_csv(schema, BufReader::new(file)).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), CliError> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    write_csv(dataset, &mut buf)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
    fs::write(path, buf)
        .map_err(|e| CliError::Io { path: path.display().to_string(), message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::path::PathBuf;

    /// A unique temp dir per test.
    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("privbayes-cli-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        run(args.iter().map(ToString::to_string))
    }

    const SCHEMA_JSON: &str = r#"[
        {"name": "smoker", "kind": "binary"},
        {"name": "region", "kind": "categorical", "size": 3,
         "labels": ["north", "south", "west"]},
        {"name": "age", "kind": "continuous", "min": 0, "max": 80, "bins": 8}
    ]"#;

    fn write_fixture_data(dir: &Path) -> (String, String) {
        let schema_path = dir.join("schema.json");
        fs::write(&schema_path, SCHEMA_JSON).unwrap();
        let schema = load_schema(schema_path.to_str().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<u32>> = (0..400)
            .map(|_| {
                let s = rng.random_range(0..2u32);
                let r = (s + rng.random_range(0..2u32)) % 3;
                let a = s * 4 + rng.random_range(0..4u32);
                vec![s, r, a]
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let data_path = dir.join("data.csv");
        save_csv(&data, &data_path).unwrap();
        (schema_path.to_str().unwrap().to_string(), data_path.to_str().unwrap().to_string())
    }

    #[test]
    fn full_fit_synth_eval_inspect_workflow() {
        let dir = temp_dir("workflow");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        let synth_path = dir.join("synth.csv").to_str().unwrap().to_string();

        let out = run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "2.0",
            "--seed",
            "1",
            "--out",
            &model_path,
            "--comment",
            "workflow test",
        ])
        .unwrap();
        assert!(out.contains("fitted 3-attribute model on 400 rows"), "{out}");

        let out = run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--rows",
            "200",
            "--seed",
            "2",
            "--out",
            &synth_path,
        ])
        .unwrap();
        assert!(out.contains("sampled 200 rows"), "{out}");

        let out = run_cli(&[
            "eval",
            "--schema",
            &schema_path,
            "--truth",
            &data_path,
            "--synthetic",
            &synth_path,
            "--alpha",
            "2",
        ])
        .unwrap();
        assert!(out.starts_with("alpha,avg_total_variation"), "{out}");
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines.len(), 3, "header + alpha 1 and 2: {out}");
        let tvd: f64 = lines[2].split(',').nth(1).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&tvd));

        let out = run_cli(&["inspect", "--model", &model_path]).unwrap();
        assert!(out.contains("epsilon:   2"), "{out}");
        assert!(out.contains("workflow test"), "{out}");
        assert!(out.contains("smoker"), "network must mention attributes: {out}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synth_defaults_to_source_row_count() {
        let dir = temp_dir("rows-default");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        let synth_path = dir.join("synth.csv").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--seed",
            "3",
            "--out",
            &model_path,
        ])
        .unwrap();
        let out = run_cli(&["synth", "--model", &model_path, "--seed", "4", "--out", &synth_path])
            .unwrap();
        assert!(out.contains("sampled 400 rows"), "{out}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn help_is_always_available() {
        assert!(run_cli(&["help"]).unwrap().contains("commands:"));
        assert!(run_cli(&["--help"]).unwrap().contains("commands:"));
        assert!(run_cli(&["fit", "--help"]).unwrap().contains("commands:"));
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run_cli(&["transmogrify"]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&["fit", "--epsilon", "1.0"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_cli(&[
                "fit",
                "--data",
                "d",
                "--schema",
                "s",
                "--out",
                "o",
                "--epsilon",
                "1.0",
                "--encoding",
                "gray"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_files_are_io_errors() {
        let dir = temp_dir("missing");
        let (schema_path, _) = write_fixture_data(&dir);
        let e = run_cli(&[
            "fit",
            "--data",
            "/nonexistent.csv",
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--out",
            "/tmp/x.json",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Io { .. }), "{e}");
        let e = run_cli(&["inspect", "--model", "/nonexistent.json"]).unwrap_err();
        assert!(matches!(e, CliError::Io { .. }), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_rejects_bad_alpha() {
        let dir = temp_dir("alpha");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let e = run_cli(&[
            "eval",
            "--schema",
            &schema_path,
            "--truth",
            &data_path,
            "--synthetic",
            &data_path,
            "--alpha",
            "9",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_of_identical_tables_is_zero() {
        let dir = temp_dir("self-eval");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let out = run_cli(&[
            "eval",
            "--schema",
            &schema_path,
            "--truth",
            &data_path,
            "--synthetic",
            &data_path,
            "--alpha",
            "1",
        ])
        .unwrap();
        let tvd: f64 =
            out.trim().lines().nth(1).unwrap().split(',').nth(1).unwrap().parse().unwrap();
        assert!(tvd < 1e-9, "identical tables must have zero distance, got {tvd}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relational_artifact_synth_and_inspect() {
        use privbayes_relational::{clinic_benchmark, RelationalOptions, RelationalPrivBayes};

        let dir = temp_dir("relational");
        let data = clinic_benchmark(300, 3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let synthesis = RelationalPrivBayes::new(RelationalOptions::new(2.0))
            .synthesize(&data, &mut rng)
            .unwrap();
        let artifact = ReleasedRelationalModel::from_synthesis(
            data.schema().clone(),
            &synthesis,
            "cli test",
            data.n_entities(),
            data.n_facts(),
        )
        .unwrap();
        let model_path = dir.join("clinic.json").to_str().unwrap().to_string();
        artifact.save(&model_path).unwrap();

        let out_e = dir.join("entities.csv").to_str().unwrap().to_string();
        let out_f = dir.join("facts.csv").to_str().unwrap().to_string();
        let out = run_cli(&[
            "synth-relational",
            "--model",
            &model_path,
            "--entities",
            "150",
            "--seed",
            "3",
            "--out-entities",
            &out_e,
            "--out-facts",
            &out_f,
        ])
        .unwrap();
        assert!(out.contains("synthesised 150 entities"), "{out}");
        let facts = fs::read_to_string(&out_f).unwrap();
        assert!(facts.starts_with("owner,diagnosis,inpatient\n"), "{facts}");
        // Every owner index refers to a synthesised entity.
        let entities = fs::read_to_string(&out_e).unwrap();
        let n_entities = entities.trim().lines().count() - 1;
        assert_eq!(n_entities, 150);
        for line in facts.trim().lines().skip(1) {
            let owner: usize = line.split(',').next().unwrap().parse().unwrap();
            assert!(owner < 150, "dangling owner {owner}");
        }

        let out = run_cli(&["inspect", "--model", &model_path]).unwrap();
        assert!(out.contains("fan-out cap:    3"), "{out}");
        assert!(out.contains("fact network"), "{out}");
        assert!(out.contains("cli test"), "{out}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_schema_is_invalid() {
        let dir = temp_dir("corrupt");
        let schema_path = dir.join("schema.json");
        fs::write(&schema_path, "{not json").unwrap();
        let e = run_cli(&[
            "fit",
            "--data",
            "d.csv",
            "--schema",
            schema_path.to_str().unwrap(),
            "--epsilon",
            "1.0",
            "--out",
            "m.json",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Invalid(_)), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
