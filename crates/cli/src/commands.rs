//! The subcommands: `fit`, `synth`, `synth-relational`, `query`, `eval`,
//! `audit`, `inspect`, `methods`, and `serve`.

use std::fs;
use std::io::{BufReader, Write as _};
use std::path::Path;
use std::sync::Arc;

use privbayes::inference::{theta_projection, DEFAULT_CELL_CAP};
use privbayes_bench::audit::{audit_method, AuditConfig};
use privbayes_data::csv::{read_csv, write_csv};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::{Dataset, Schema};
use privbayes_marginals::average_workload_tvd;
use privbayes_model::{
    schema_from_json, schema_to_json, Json, ReleasedModel, ReleasedRelationalModel,
};
use privbayes_obs::Span;
use privbayes_server::{BudgetLedger, ModelRegistry, RefitPolicy, Server, ServerConfig};
use privbayes_synth::{
    fit_method, Cursor, FitSettings, MarginalQuery, Method, RowFormat, SynthSpec,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::args::ParsedArgs;
use crate::error::CliError;

/// Top-level usage text (the `help` command and `--help`).
pub const USAGE: &str = "\
privbayes-cli — differentially private synthetic data via Bayesian networks

commands:
  fit      --data D.csv --schema S.json --epsilon F --out MODEL.json
           [--method NAME=privbayes] [--beta F=0.3] [--theta F=4]
           [--encoding vanilla|hierarchical] [--consistency N=0]
           [--max-degree N=4] [--k N=2] [--alpha N=2] [--iterations N=10]
           [--seed N] [--threads N] [--comment TEXT] [--verbose]
           Fit a private model on a CSV table and write the release artifact.
           Every method produces the same artifact format, so `synth`,
           `inspect`, and `serve` work on any of them. --verbose prints the
           count-engine cache statistics of the fit.
           methods: privbayes, privbayes-k, mwem, laplace, geometric, uniform
           (`methods` prints one line per method; uniform ignores --epsilon).

  synth    --model MODEL.json --out D.csv [--rows N] [--seed N] [--threads N]
           [--where a=v[,b=w...]] [--select c1[,c2...]] [--resume CURSOR]
           [--format csv|jsonl] [--verbose]
           Sample synthetic rows from a released model (no privacy cost).
           --where clamps attribute values (labels or codes) and samples the
           rest of each row conditioned on them; --select writes only the
           named columns, in order; --resume continues an interrupted
           stream from a cursor token (pbc1-..., skipping the header) so
           prefix + resumed output is byte-identical to an uninterrupted
           run with the same seed. Spec mistakes (unknown attribute or
           value, bad cursor) exit with code 4. Spec-driven requests stream
           single-threaded; --threads applies to the plain batch path only.

  query    --model MODEL.json --attrs a[,b...]
           [--server ADDR --id MODEL-ID] [--verbose]
           Answer a marginal query exactly from the released model's noisy
           conditionals — no sampling, no privacy cost (post-processing).
           Local mode prints `a,b,probability` lines with domain labels
           (probabilities in shortest round-trip decimal). With --server,
           asks a running privbayes-server's POST /v1/models/{id}/query
           endpoint instead and prints the JSON answer.

  synth-relational
           --model MODEL.json --entities N --out-entities E.csv
           --out-facts F.csv [--seed N]
           Regenerate a two-table database from a relational release artifact
           (privbayes-relational-model/1). The facts CSV gets a leading
           `owner` column holding the 0-based entity row index.

  eval     --schema S.json --truth A.csv --synthetic B.csv [--alpha N=2]
           Report average total-variation distance of all 1..=alpha-way
           marginals between two tables.

  audit    --model MODEL.json --data D.csv --schema S.json
           [--reps N=24] [--seed N] [--epsilon F]
           Empirical membership-inference audit of a fitted artifact's
           configuration: re-fits the artifact's method at its recorded ε
           (or --epsilon) on include/exclude neighbour worlds built from
           the given source table, runs a calibrated likelihood-ratio
           attack over --reps seeded repetitions (even, ≥ 4; half
           calibrate, half evaluate), and reports measured attacker
           advantage (TPR − FPR) against the analytic ε-DP ceiling
           (e^ε − 1)/(e^ε + 1). Exits with code 4 if the measured
           advantage breaches bound + confidence slack — an empirical
           privacy violation, not a usage mistake.

  inspect  --model MODEL.json
           Print a released model's provenance and network structure
           (handles both single-table and relational artifacts).

  methods  List every synthesis method `fit --method` accepts, one line per
           method with a short description.

  serve    [--addr A=127.0.0.1:0] [--workers N=4] [--threads N]
           [--max-rows N=10000000] [--ledger LEDGER.json]
           [--ledger-stripes N=8]
           [--model MODEL.json [--model-id ID=default]]
           [--tenant NAME --budget F]
           [--read-deadline-ms N=30000] [--write-deadline-ms N=30000]
           [--handler-deadline-ms N=120000] [--queue-depth N=64]
           [--keepalive-requests N=1000] [--idle-deadline-ms N=5000]
           [--cache-bytes N=67108864]
           [--access-log PATH] [--metrics on|off=on]
           [--data-dir DIR] [--refit-rows N] [--refit-staleness-ms N]
           Run the synthesis service: model registry, per-tenant privacy
           ledger (persisted at --ledger, crash-durable), and streaming
           synthesis endpoints. Prints the bound address, then blocks until
           a client sends POST /shutdown. --threads bounds the worker
           threads used inside fit requests. Peers slower than the
           read/write deadlines are reaped with 408; --queue-depth bounds
           pending connections, with overflow answered 503 + Retry-After.
           Connections are kept alive for up to --keepalive-requests
           requests each, idle ones closed after --idle-deadline-ms.
           --cache-bytes budgets the preformatted row-block cache (0
           disables it); --ledger-stripes sets the tenant-ledger lock
           stripe count. --access-log appends one JSON line per request;
           --metrics off disables the GET /metrics Prometheus exposition
           (counters still run and back GET /healthz). --data-dir journals
           ingested per-tenant datasets there (crash-durable, recovered on
           restart); --refit-rows / --refit-staleness-ms enable background
           refits once a tenant has that many pending rows, or any pending
           rows that old — each refit debits the tenant's ε like POST /fit
           and hot-swaps a new model generation. The fit, synth, and
           query commands accept --verbose for per-stage wall-time
           reporting.

  ingest   --server ADDR --tenant NAME --data D.csv [--schema S.json]
           [--model-id ID --epsilon F [--method NAME=privbayes] [--seed N]]
           [--format csv|jsonl]
           Append a batch of rows to a tenant's server-side dataset via
           POST /v1/tenants/{t}/ingest. The first batch for a tenant must
           carry --schema and the refit target (--model-id + --epsilon);
           later batches may omit both. Appending spends no privacy
           budget — ε is debited by the background refits the rows trigger
           (see serve --refit-rows). Prints the server's receipt (batch,
           total, and pending row counts).

The --threads flag on fit/synth pins the scoring/sampling worker count
(default: all cores); outputs are identical for every value.

The schema file is a JSON array of attributes, e.g.
  [{\"name\": \"age\", \"kind\": \"continuous\", \"min\": 0, \"max\": 90, \"bins\": 16},
   {\"name\": \"smoker\", \"kind\": \"binary\"},
   {\"name\": \"work\", \"kind\": \"categorical\", \"size\": 4,
    \"labels\": [\"gov\", \"private\", \"self\", \"none\"]}]
";

/// Runs a full command line (without the binary name) and returns the text
/// to print on success.
///
/// # Errors
/// Returns [`CliError`] on usage errors, I/O failures, and invalid inputs.
pub fn run<I>(args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = String>,
{
    let parsed = ParsedArgs::parse(args)?;
    if parsed.wants_help() || parsed.command() == "help" {
        return Ok(USAGE.to_string());
    }
    match parsed.command() {
        "fit" => fit(&parsed),
        "synth" => synth(&parsed),
        "synth-relational" => synth_relational(&parsed),
        "query" => query(&parsed),
        "eval" => eval(&parsed),
        "audit" => audit(&parsed),
        "inspect" => inspect(&parsed),
        "methods" => methods(&parsed),
        "serve" => serve(&parsed),
        "ingest" => ingest(&parsed),
        other => Err(CliError::Usage(format!("unknown command `{other}` (try `help`)"))),
    }
}

/// `methods`: one line per synthesis method.
fn methods(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[])?;
    let mut out = String::from("synthesis methods (fit --method NAME):\n");
    for method in Method::ALL {
        out.push_str(&format!("  {:<12} {}\n", method.name(), method.describe()));
    }
    Ok(out)
}

fn fit(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "data",
        "schema",
        "out",
        "epsilon",
        "method",
        "beta",
        "theta",
        "encoding",
        "consistency",
        "max-degree",
        "k",
        "alpha",
        "iterations",
        "seed",
        "threads",
        "comment",
        "verbose",
    ])?;
    // Validate flags before touching the filesystem, so usage mistakes are
    // reported even when paths are also wrong.
    let out = args.required("out")?;
    let epsilon: f64 = args
        .required("epsilon")?
        .parse()
        .map_err(|_| CliError::Usage("--epsilon: expected a number".into()))?;
    let method_name = args.optional("method").unwrap_or("privbayes");
    let Some(method) = Method::parse(method_name) else {
        return Err(CliError::Usage(format!(
            "unknown method `{method_name}`; valid methods: {}",
            Method::names()
        )));
    };
    let encoding = match args.optional("encoding").unwrap_or("vanilla") {
        "vanilla" => EncodingKind::Vanilla,
        "hierarchical" => EncodingKind::Hierarchical,
        other => {
            return Err(CliError::Usage(format!(
                "--encoding `{other}` is not supported here; the release artifact needs the \
                 model over the original schema, so choose `vanilla` or `hierarchical`"
            )))
        }
    };
    let defaults = FitSettings::default();
    let settings = FitSettings {
        beta: args.parse_or("beta", defaults.beta)?,
        theta: args.parse_or("theta", defaults.theta)?,
        max_degree: args.parse_or("max-degree", defaults.max_degree)?,
        fixed_k: args.parse_or("k", defaults.fixed_k)?,
        alpha: args.parse_or("alpha", defaults.alpha)?,
        mwem: privbayes_synth::MwemOptions {
            iterations: args.parse_or("iterations", defaults.mwem.iterations)?,
            ..defaults.mwem
        },
        consistency_rounds: args.parse_or("consistency", defaults.consistency_rounds)?,
        encoding,
        threads: args.parse_opt::<usize>("threads")?,
        comment: args.optional("comment").unwrap_or_default().to_string(),
    };
    let mut span = Span::start();
    let schema = load_schema(args.required("schema")?)?;
    let data = load_csv(&schema, args.required("data")?)?;
    span.mark("load");

    let seed = match args.parse_opt::<u64>("seed")? {
        Some(seed) => seed,
        None => make_rng(None).random::<u64>(),
    };
    let fitted = fit_method(method, &data, epsilon, seed, &settings)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    span.mark("fit");
    fitted
        .artifact
        .save(out)
        .map_err(|e| CliError::Io { path: out.into(), message: e.to_string() })?;
    span.mark("write");

    let degree = fitted.artifact.model.network.degree();
    let mut report = format!(
        "fitted {}-attribute model on {} rows (ε = {epsilon}, method {}, degree {degree})\n{}",
        data.d(),
        data.n(),
        method.name(),
        fitted.artifact.model.network.describe(data.schema()),
    );
    if args.verbose() {
        let s = fitted.stats;
        report.push_str(&format!(
            "\nengine: {} scans, {} projections, {} cache hits, {} tables cached, \
             {} bytes materialized\nengine time: scan {}µs, score {}µs\n{}",
            s.scans,
            s.projections,
            s.hits,
            s.cached_tables,
            s.bytes_materialized,
            s.scan_micros,
            s.score_micros,
            stage_report(&span),
        ));
    }
    report.push_str(&format!("\nwrote {out}"));
    Ok(report)
}

/// Renders a [`Span`]'s stages as one `stages: name 1.2ms … | total …` line
/// for `--verbose` output.
fn stage_report(span: &Span) -> String {
    let mut out = String::from("stages:");
    for &(name, d) in span.stages() {
        out.push_str(&format!(" {name} {:.1}ms", d.as_secs_f64() * 1e3));
    }
    out.push_str(&format!(" | total {:.1}ms", span.total().as_secs_f64() * 1e3));
    out
}

fn synth(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "model", "out", "rows", "seed", "threads", "where", "select", "resume", "format", "verbose",
    ])?;
    let mut span = Span::start();
    let model_path = args.required("model")?;
    let out = args.required("out")?;
    let artifact = ReleasedModel::load(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    span.mark("load");

    // Assemble the request spec from the flags, then validate it against
    // the artifact's schema in one place — every spec mistake surfaces as a
    // typed `CliError::Spec` (exit code 4).
    let mut spec = SynthSpec::new().with_format(RowFormat::parse(args.optional("format"))?);
    if let Some(rows) = args.parse_opt::<usize>("rows")? {
        spec = spec.with_rows(rows);
    }
    if let Some(seed) = args.parse_opt::<u64>("seed")? {
        spec = spec.with_seed(seed);
    }
    if let Some(select) = args.optional("select") {
        for name in select.split(',').filter(|s| !s.is_empty()) {
            spec = spec.select(name);
        }
    }
    if let Some(clauses) = args.optional("where") {
        for pair in clauses.split(',').filter(|s| !s.is_empty()) {
            let Some((attr, value)) = pair.split_once('=') else {
                return Err(CliError::Usage(format!("--where: expected attr=value, got `{pair}`")));
            };
            spec = spec.where_eq(attr, value);
        }
    }
    if let Some(token) = args.optional("resume") {
        spec = spec.with_cursor(Cursor::decode(token)?);
    }
    let resolved = spec.resolve(&artifact.schema)?;
    let rows = resolved.rows.unwrap_or(artifact.metadata.source_rows);
    if rows == 0 {
        return Err(CliError::Usage("--rows must be at least 1".into()));
    }

    // The plain batch request keeps the original parallel path (identical
    // bytes, --threads applies); any evidence/projection/cursor/format goes
    // through the spec-driven stream renderer.
    let plain = resolved.evidence.is_empty()
        && resolved.projection.is_none()
        && resolved.start_row == 0
        && resolved.format == RowFormat::Csv;
    if !plain && args.optional("threads").is_some() {
        return Err(CliError::Usage(
            "--threads applies only to plain batch synthesis; requests with \
             --where/--select/--resume/--format jsonl stream single-threaded"
                .into(),
        ));
    }
    if plain {
        let mut rng = match resolved.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => make_rng(None),
        };
        let synthetic =
            artifact.sample_with_threads(rows, args.parse_opt::<usize>("threads")?, &mut rng)?;
        span.mark("sample");
        save_csv(&synthetic, out)?;
        span.mark("write");
        let mut report = format!("sampled {rows} rows from {model_path}\nwrote {out}");
        if args.verbose() {
            report.push_str(&format!("\n{}", stage_report(&span)));
        }
        return Ok(report);
    }

    let seed = match resolved.seed {
        Some(seed) => seed,
        None => make_rng(None).random::<u64>(),
    };
    let sampler = artifact.compiled()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let stream = sampler.stream_spec(&resolved.sample_spec(rows), &mut rng)?;
    let schema = sampler.schema();
    let projection = resolved.projection.as_deref();
    let mut text = String::new();
    if resolved.start_row == 0 {
        text.push_str(&resolved.format.header(schema, projection));
    }
    let mut yielded = 0usize;
    for chunk in stream {
        yielded += chunk.len();
        text.push_str(&resolved.format.render(schema, projection, &chunk));
    }
    span.mark("sample");
    fs::write(out, text).map_err(|e| CliError::Io { path: out.into(), message: e.to_string() })?;
    span.mark("write");
    let mut report = if resolved.start_row > 0 {
        format!(
            "resumed at row {} and sampled {yielded} of {rows} rows from {model_path} (seed {seed})",
            resolved.start_row
        )
    } else {
        format!("sampled {rows} rows from {model_path} (seed {seed})")
    };
    if args.verbose() {
        report.push_str(&format!("\n{}", stage_report(&span)));
    }
    Ok(format!("{report}\nwrote {out}"))
}

/// `query`: answer a marginal query exactly from the released θ — locally
/// from a model file, or remotely via a server's `/v1` query endpoint.
fn query(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model", "attrs", "server", "id", "verbose"])?;
    let mut q = MarginalQuery::new();
    for name in args.required("attrs")?.split(',').filter(|s| !s.is_empty()) {
        q = q.over(name);
    }
    match (args.optional("server"), args.optional("id")) {
        (Some(addr), Some(id)) => {
            let mut span = Span::start();
            let client = privbayes_server::Client::new(addr);
            let answer = client.query(id, &q)?;
            span.mark("request");
            let mut out =
                answer.to_string_pretty().map_err(|e| CliError::Invalid(e.to_string()))?;
            if args.verbose() {
                out.push_str(&format!("\n{}", stage_report(&span)));
            }
            Ok(out)
        }
        (Some(_), None) => Err(CliError::Usage("--server needs --id".into())),
        (None, Some(_)) => Err(CliError::Usage("--id needs --server".into())),
        (None, None) => {
            let mut span = Span::start();
            let model_path = args.required("model")?;
            let artifact = ReleasedModel::load(model_path)
                .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
            span.mark("load");
            let attrs = q.resolve(&artifact.schema)?;
            let table =
                theta_projection(&artifact.model, &artifact.schema, &attrs, DEFAULT_CELL_CAP)?;
            span.mark("project");
            let names: Vec<&str> =
                attrs.iter().map(|&a| artifact.schema.attribute(a).name()).collect();
            let mut out = format!("{},probability\n", names.join(","));
            for (idx, &value) in table.values().iter().enumerate() {
                let coords = table.coords_of(idx);
                for (&attr, &coord) in attrs.iter().zip(&coords) {
                    out.push_str(&artifact.schema.attribute(attr).domain().label(coord as u32));
                    out.push(',');
                }
                // Shortest round-trip decimal: parsing it back yields the
                // exact released value.
                out.push_str(&format!("{value:?}\n"));
            }
            if args.verbose() {
                out.push_str(&format!("{}\n", stage_report(&span)));
            }
            Ok(out)
        }
    }
}

fn synth_relational(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model", "entities", "out-entities", "out-facts", "seed"])?;
    let model_path = args.required("model")?;
    let out_entities = args.required("out-entities")?;
    let out_facts = args.required("out-facts")?;
    let artifact = ReleasedRelationalModel::load(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    let n_entities = args.parse_or("entities", artifact.metadata.source_entities)?;
    if n_entities == 0 {
        return Err(CliError::Usage("--entities must be at least 1".into()));
    }
    let mut rng = make_rng(args.parse_opt("seed")?);
    let synthetic = artifact.synthesize(n_entities, &mut rng)?;
    save_csv(synthetic.entities(), out_entities)?;

    // The fact table gets a leading `owner` column (the 0-based entity row).
    let mut fact_csv = Vec::new();
    write_csv(synthetic.facts(), &mut fact_csv)
        .map_err(|e| CliError::Invalid(format!("{out_facts}: {e}")))?;
    let fact_text = String::from_utf8(fact_csv).expect("CSV writer emits UTF-8");
    let mut lines = fact_text.lines();
    let header = lines.next().unwrap_or_default();
    let mut out = format!("owner,{header}\n");
    for (line, &owner) in lines.zip(synthetic.fact_owner()) {
        out.push_str(&format!("{owner},{line}\n"));
    }
    fs::write(out_facts, out)
        .map_err(|e| CliError::Io { path: out_facts.into(), message: e.to_string() })?;

    Ok(format!(
        "synthesised {} entities and {} facts from {model_path}\nwrote {out_entities} and {out_facts}",
        synthetic.n_entities(),
        synthetic.n_facts(),
    ))
}

fn eval(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["schema", "truth", "synthetic", "alpha"])?;
    let schema = load_schema(args.required("schema")?)?;
    let truth = load_csv(&schema, args.required("truth")?)?;
    let synthetic = load_csv(&schema, args.required("synthetic")?)?;
    let alpha: usize = args.parse_or("alpha", 2)?;
    if alpha == 0 || alpha > schema.len() {
        return Err(CliError::Usage(format!(
            "--alpha must lie in 1..={} for this schema",
            schema.len()
        )));
    }
    let mut out = String::from("alpha,avg_total_variation\n");
    for a in 1..=alpha {
        let tvd = average_workload_tvd(&truth, &synthetic, a);
        out.push_str(&format!("{a},{tvd:.6}\n"));
    }
    Ok(out)
}

/// `audit`: membership-inference audit of a fitted artifact's
/// configuration against the analytic ε-DP advantage bound.
fn audit(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model", "data", "schema", "reps", "seed", "epsilon"])?;
    let model_path = args.required("model")?;
    let artifact = ReleasedModel::load(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    let method_name = artifact.metadata.method.clone();
    let Some(method) = Method::parse(&method_name) else {
        return Err(CliError::Invalid(format!(
            "artifact records method `{method_name}`, which is not auditable \
             (valid methods: {})",
            Method::names()
        )));
    };
    let epsilon = match args.parse_opt::<f64>("epsilon")? {
        Some(e) => e,
        None => artifact.metadata.epsilon,
    };
    if method.spends_budget() && epsilon <= 0.0 {
        return Err(CliError::Usage("--epsilon must be positive for this method".into()));
    }
    let reps: usize = args.parse_or("reps", 24)?;
    if reps < 4 || !reps.is_multiple_of(2) {
        return Err(CliError::Usage("--reps must be even and at least 4".into()));
    }
    let schema = load_schema(args.required("schema")?)?;
    let data = load_csv(&schema, args.required("data")?)?;

    // Audit the artifact's own configuration: its method at the requested
    // budget with its recorded structure-learning hyper-parameters.
    let settings = FitSettings {
        beta: artifact.metadata.beta,
        theta: artifact.metadata.theta,
        ..FitSettings::default()
    };
    let cfg = AuditConfig {
        reps,
        base_seed: args.parse_or("seed", AuditConfig::default().base_seed)?,
        ..AuditConfig::default()
    };
    let point = audit_method(method, &data, epsilon, &settings, &cfg)
        .map_err(|e| CliError::Invalid(e.to_string()))?;

    let mut out = format!(
        "membership-inference audit of {method_name} at ε = {epsilon} \
         ({} reps: {} calibrate, {} evaluate; n = {}, d = {})\n",
        cfg.reps,
        cfg.reps - cfg.eval_reps(),
        cfg.eval_reps(),
        data.n(),
        data.d(),
    );
    out.push_str(&format!(
        "  advantage  {:.4}  (tpr {:.4}, fpr {:.4})\n  bound      {:.4}  \
         ((e^ε − 1)/(e^ε + 1) at spent ε = {})\n  slack      {:.4}  (Hoeffding, δ = {})\n",
        point.advantage,
        point.tpr,
        point.fpr,
        point.bound,
        point.epsilon_spent,
        point.slack,
        cfg.delta,
    ));
    if !point.passes_gate() {
        return Err(CliError::Invalid(format!(
            "PRIVACY GATE FAILED: measured advantage {:.4} exceeds bound {:.4} + slack {:.4} — \
             the fit leaks more than its claimed ε allows",
            point.advantage, point.bound, point.slack
        )));
    }
    out.push_str("verdict: measured advantage is under the analytic ε-DP bound\n");
    Ok(out)
}

fn inspect(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&["model"])?;
    let model_path = args.required("model")?;
    let text = fs::read_to_string(model_path)
        .map_err(|e| CliError::Io { path: model_path.into(), message: e.to_string() })?;
    // Dispatch on the declared format.
    let format = Json::parse(&text)
        .map_err(|e| CliError::Invalid(format!("{model_path}: {e}")))?
        .get("format")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| CliError::Invalid(format!("{model_path}: missing `format` field")))?;
    if format == privbayes_model::RELATIONAL_FORMAT {
        return inspect_relational(&text);
    }
    let artifact = ReleasedModel::from_json_string(&text)
        .map_err(|e| CliError::Invalid(format!("{model_path}: {e}")))?;
    let meta = &artifact.metadata;
    let degree = artifact.model.network.pairs().iter().map(|p| p.parents.len()).max().unwrap_or(0);
    Ok(format!(
        "format:    {}\nmethod:    {}\nepsilon:   {}\nbeta:      {}\ntheta:     {}\nscore:     {}\n\
         encoding:  {}\nsource:    {} rows\ncomment:   {}\nattributes: {}\ndegree:    {degree}\n\
         network:\n{}",
        privbayes_model::FORMAT,
        meta.method,
        meta.epsilon,
        meta.beta,
        meta.theta,
        meta.score,
        meta.encoding,
        meta.source_rows,
        if meta.comment.is_empty() { "(none)" } else { &meta.comment },
        artifact.schema.len(),
        artifact.model.network.describe(&artifact.schema),
    ))
}

fn inspect_relational(text: &str) -> Result<String, CliError> {
    let artifact = ReleasedRelationalModel::from_json_string(text)?;
    let meta = &artifact.metadata;
    Ok(format!(
        "format:         {}\nepsilon:        {} (entity {} + fact {})\nfan-out cap:    {}\n\
         source:         {} entities, {} facts\ncomment:        {}\n\
         entity network (over the flattened per-individual view):\n{}\n\
         fact network (entity attributes are evidence roots):\n{}",
        privbayes_model::RELATIONAL_FORMAT,
        meta.epsilon_entity + meta.epsilon_fact,
        meta.epsilon_entity,
        meta.epsilon_fact,
        artifact.schema.max_fanout(),
        meta.source_entities,
        meta.source_facts,
        if meta.comment.is_empty() { "(none)" } else { &meta.comment },
        artifact.entity_model.network.describe(artifact.schema.flattened()),
        artifact.fact_model.network().describe(artifact.schema.fact_view()),
    ))
}

/// `serve`: run the synthesis service until a client posts `/shutdown`.
///
/// The bound address is printed (and flushed) to stdout *before* the accept
/// loop starts, so wrapper scripts can connect as soon as the line appears;
/// the returned summary prints after a clean shutdown.
fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "addr",
        "workers",
        "threads",
        "max-rows",
        "ledger",
        "ledger-stripes",
        "model",
        "model-id",
        "tenant",
        "budget",
        "read-deadline-ms",
        "write-deadline-ms",
        "handler-deadline-ms",
        "queue-depth",
        "keepalive-requests",
        "idle-deadline-ms",
        "cache-bytes",
        "access-log",
        "metrics",
        "data-dir",
        "refit-rows",
        "refit-staleness-ms",
    ])?;
    let registry = Arc::new(ModelRegistry::new());
    match (args.optional("model"), args.optional("model-id")) {
        (Some(path), id) => {
            let artifact = ReleasedModel::load(path)
                .map_err(|e| CliError::Io { path: path.into(), message: e.to_string() })?;
            registry.load(id.unwrap_or("default"), artifact)?;
        }
        (None, Some(_)) => {
            return Err(CliError::Usage("--model-id needs --model".into()));
        }
        (None, None) => {}
    }
    let stripes = args.parse_or("ledger-stripes", privbayes_server::DEFAULT_LEDGER_STRIPES)?;
    if stripes == 0 {
        return Err(CliError::Usage("--ledger-stripes must be positive".into()));
    }
    let ledger = match args.optional("ledger") {
        Some(path) => BudgetLedger::with_persistence_striped(path, stripes)?,
        None => BudgetLedger::in_memory_striped(stripes),
    };
    match (args.optional("tenant"), args.parse_opt::<f64>("budget")?) {
        (Some(tenant), Some(budget)) => {
            // A persisted ledger may already know the tenant; keep its
            // recorded spending rather than re-registering — but refuse a
            // conflicting total instead of silently ignoring the flag.
            match ledger.budget(tenant) {
                None => ledger.register(tenant, budget)?,
                Some(existing) if existing.total == budget => {}
                Some(existing) => {
                    return Err(CliError::Usage(format!(
                        "tenant `{tenant}` already has total ε = {} in the ledger (spent {}); \
                         budgets cannot be changed via --budget — edit the ledger file instead",
                        existing.total, existing.spent
                    )));
                }
            }
        }
        (Some(_), None) => return Err(CliError::Usage("--tenant needs --budget".into())),
        (None, Some(_)) => return Err(CliError::Usage("--budget needs --tenant".into())),
        (None, None) => {}
    }
    let defaults = ServerConfig::default();
    let deadline = |flag: &str, default: std::time::Duration| -> Result<_, CliError> {
        let ms = args.parse_or(flag, default.as_millis() as u64)?;
        if ms == 0 {
            return Err(CliError::Usage(format!("--{flag} must be positive")));
        }
        Ok(std::time::Duration::from_millis(ms))
    };
    let metrics_enabled = match args.optional("metrics").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Usage(format!(
                "--metrics: expected `on` or `off`, got `{other}`"
            )))
        }
    };
    let config = ServerConfig {
        workers: args.parse_or("workers", defaults.workers)?,
        fit_threads: args.parse_opt::<usize>("threads")?,
        max_rows: args.parse_or("max-rows", defaults.max_rows)?,
        read_deadline: deadline("read-deadline-ms", defaults.read_deadline)?,
        write_deadline: deadline("write-deadline-ms", defaults.write_deadline)?,
        handler_deadline: deadline("handler-deadline-ms", defaults.handler_deadline)?,
        queue_depth: args.parse_or("queue-depth", defaults.queue_depth)?,
        max_conn_requests: {
            let n = args.parse_or("keepalive-requests", defaults.max_conn_requests)?;
            if n == 0 {
                return Err(CliError::Usage("--keepalive-requests must be positive".into()));
            }
            n
        },
        idle_deadline: deadline("idle-deadline-ms", defaults.idle_deadline)?,
        cache_bytes: args.parse_or("cache-bytes", defaults.cache_bytes)?,
        metrics_enabled,
        access_log: args.optional("access-log").map(std::path::PathBuf::from),
        data_dir: args.optional("data-dir").map(std::path::PathBuf::from),
        refit: {
            let min_rows = args.parse_opt::<u64>("refit-rows")?;
            if min_rows == Some(0) {
                return Err(CliError::Usage("--refit-rows must be positive".into()));
            }
            let staleness_ms = args.parse_opt::<u64>("refit-staleness-ms")?;
            if staleness_ms == Some(0) {
                return Err(CliError::Usage("--refit-staleness-ms must be positive".into()));
            }
            RefitPolicy {
                min_rows: min_rows.unwrap_or(u64::MAX),
                max_staleness: staleness_ms.map(std::time::Duration::from_millis),
            }
        },
    };
    let server = Server::bind(
        args.optional("addr").unwrap_or("127.0.0.1:0"),
        config,
        registry,
        Arc::new(ledger),
    )?;
    println!("privbayes-server listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    let stats = server.run()?;
    Ok(format!("server shut down cleanly after {} requests", stats.requests))
}

/// `ingest`: append a batch of rows to a tenant's dataset on a running
/// server. The batch file is shipped verbatim (the server validates every
/// row against the schema before accepting anything).
fn ingest(args: &ParsedArgs) -> Result<String, CliError> {
    args.expect_only(&[
        "server", "tenant", "data", "schema", "model-id", "method", "epsilon", "seed", "format",
    ])?;
    let addr = args.required("server")?;
    let tenant = args.required("tenant")?;
    let data_path = args.required("data")?;
    let rows = fs::read_to_string(data_path)
        .map_err(|e| CliError::Io { path: data_path.into(), message: e.to_string() })?;
    let rows_field = match args.optional("format").unwrap_or("csv") {
        "csv" => "csv",
        "jsonl" => "jsonl",
        other => {
            return Err(CliError::Usage(format!(
                "--format: expected `csv` or `jsonl`, got `{other}`"
            )))
        }
    };
    let mut fields: Vec<(&str, Json)> = Vec::new();
    if let Some(schema_path) = args.optional("schema") {
        fields.push(("schema", schema_to_json(&load_schema(schema_path)?)));
    }
    match (args.optional("model-id"), args.parse_opt::<f64>("epsilon")?) {
        (Some(id), Some(epsilon)) => {
            fields.push(("model_id", Json::String(id.to_string())));
            fields.push(("epsilon", Json::Number(epsilon)));
            if let Some(method) = args.optional("method") {
                fields.push(("method", Json::String(method.to_string())));
            }
            if let Some(seed) = args.parse_opt::<u64>("seed")? {
                fields.push(("seed", Json::from_usize(seed as usize)));
            }
        }
        (Some(_), None) => return Err(CliError::Usage("--model-id needs --epsilon".into())),
        (None, Some(_)) => return Err(CliError::Usage("--epsilon needs --model-id".into())),
        (None, None) => {}
    }
    fields.push((rows_field, Json::String(rows)));
    let client = privbayes_server::Client::new(addr);
    let response = client.ingest(tenant, &Json::object(fields))?;
    if !(200..300).contains(&response.code) {
        return Err(CliError::Server(format!(
            "server returned {}: {}",
            response.code,
            response.text()
        )));
    }
    let receipt = Json::parse(&response.text())
        .map_err(|e| CliError::Server(format!("unparsable receipt: {e}")))?;
    let count = |name: &str| receipt.get(name).and_then(Json::as_usize).unwrap_or(0);
    Ok(format!(
        "tenant {tenant}: accepted {} rows ({} total, {} pending refit)",
        count("batch_rows"),
        count("total_rows"),
        count("pending_rows"),
    ))
}

fn make_rng(seed: Option<u64>) -> StdRng {
    match seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::try_from_rng(&mut rand::rngs::SysRng)
            .expect("operating-system entropy source unavailable"),
    }
}

fn load_schema(path: &str) -> Result<Schema, CliError> {
    let text = fs::read_to_string(path)
        .map_err(|e| CliError::Io { path: path.into(), message: e.to_string() })?;
    let json = Json::parse(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
    schema_from_json(&json).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

fn load_csv(schema: &Schema, path: &str) -> Result<Dataset, CliError> {
    let file = fs::File::open(path)
        .map_err(|e| CliError::Io { path: path.into(), message: e.to_string() })?;
    read_csv(schema, BufReader::new(file)).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

fn save_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), CliError> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    write_csv(dataset, &mut buf)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", path.display())))?;
    fs::write(path, buf)
        .map_err(|e| CliError::Io { path: path.display().to_string(), message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::path::PathBuf;

    /// A unique temp dir per test.
    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("privbayes-cli-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_cli(args: &[&str]) -> Result<String, CliError> {
        run(args.iter().map(ToString::to_string))
    }

    const SCHEMA_JSON: &str = r#"[
        {"name": "smoker", "kind": "binary"},
        {"name": "region", "kind": "categorical", "size": 3,
         "labels": ["north", "south", "west"]},
        {"name": "age", "kind": "continuous", "min": 0, "max": 80, "bins": 8}
    ]"#;

    fn write_fixture_data(dir: &Path) -> (String, String) {
        let schema_path = dir.join("schema.json");
        fs::write(&schema_path, SCHEMA_JSON).unwrap();
        let schema = load_schema(schema_path.to_str().unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<u32>> = (0..400)
            .map(|_| {
                let s = rng.random_range(0..2u32);
                let r = (s + rng.random_range(0..2u32)) % 3;
                let a = s * 4 + rng.random_range(0..4u32);
                vec![s, r, a]
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let data_path = dir.join("data.csv");
        save_csv(&data, &data_path).unwrap();
        (schema_path.to_str().unwrap().to_string(), data_path.to_str().unwrap().to_string())
    }

    #[test]
    fn full_fit_synth_eval_inspect_workflow() {
        let dir = temp_dir("workflow");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        let synth_path = dir.join("synth.csv").to_str().unwrap().to_string();

        let out = run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "2.0",
            "--seed",
            "1",
            "--out",
            &model_path,
            "--comment",
            "workflow test",
        ])
        .unwrap();
        assert!(out.contains("fitted 3-attribute model on 400 rows"), "{out}");

        let out = run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--rows",
            "200",
            "--seed",
            "2",
            "--out",
            &synth_path,
        ])
        .unwrap();
        assert!(out.contains("sampled 200 rows"), "{out}");

        let out = run_cli(&[
            "eval",
            "--schema",
            &schema_path,
            "--truth",
            &data_path,
            "--synthetic",
            &synth_path,
            "--alpha",
            "2",
        ])
        .unwrap();
        assert!(out.starts_with("alpha,avg_total_variation"), "{out}");
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines.len(), 3, "header + alpha 1 and 2: {out}");
        let tvd: f64 = lines[2].split(',').nth(1).unwrap().parse().unwrap();
        assert!((0.0..=1.0).contains(&tvd));

        let out = run_cli(&["inspect", "--model", &model_path]).unwrap();
        assert!(out.contains("epsilon:   2"), "{out}");
        assert!(out.contains("workflow test"), "{out}");
        assert!(out.contains("smoker"), "network must mention attributes: {out}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synth_defaults_to_source_row_count() {
        let dir = temp_dir("rows-default");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        let synth_path = dir.join("synth.csv").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--seed",
            "3",
            "--out",
            &model_path,
        ])
        .unwrap();
        let out = run_cli(&["synth", "--model", &model_path, "--seed", "4", "--out", &synth_path])
            .unwrap();
        assert!(out.contains("sampled 400 rows"), "{out}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn threads_flag_does_not_change_output() {
        let dir = temp_dir("threads");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let run_pair = |threads: &str, tag: &str| {
            let model = dir.join(format!("model-{tag}.json")).to_str().unwrap().to_string();
            let synth = dir.join(format!("synth-{tag}.csv")).to_str().unwrap().to_string();
            let mut fit_args = vec![
                "fit",
                "--data",
                &data_path,
                "--schema",
                &schema_path,
                "--epsilon",
                "1.0",
                "--seed",
                "11",
                "--out",
                &model,
            ];
            let mut synth_args =
                vec!["synth", "--model", &model, "--rows", "150", "--seed", "12", "--out", &synth];
            if !threads.is_empty() {
                fit_args.extend(["--threads", threads]);
                synth_args.extend(["--threads", threads]);
            }
            run_cli(&fit_args).unwrap();
            run_cli(&synth_args).unwrap();
            (fs::read_to_string(&model).unwrap(), fs::read_to_string(&synth).unwrap())
        };
        let sequential = run_pair("1", "t1");
        assert_eq!(run_pair("3", "t3"), sequential, "worker count must not change bytes");
        assert_eq!(run_pair("", "auto"), sequential, "default threads must match too");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_round_trip_with_shutdown() {
        use privbayes_server::Client;

        let dir = temp_dir("serve");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.5",
            "--seed",
            "7",
            "--out",
            &model_path,
        ])
        .unwrap();

        // Reserve an ephemeral port, then hand it to `serve`.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let ledger_path = dir.join("ledger.json").to_str().unwrap().to_string();
        let serve_args: Vec<String> = [
            "serve",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--model",
            &model_path,
            "--model-id",
            "fixture",
            "--ledger",
            &ledger_path,
            "--tenant",
            "acme",
            "--budget",
            "2.0",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let server = std::thread::spawn(move || run(serve_args));

        let client = Client::new(addr);
        // The server may still be binding; retry briefly.
        let mut health = None;
        for _ in 0..100 {
            match client.health() {
                Ok(h) => {
                    health = Some(h);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
            }
        }
        let health = health.expect("server must come up");
        assert_eq!(health.get("models").and_then(Json::as_usize), Some(1));
        let body = client.synth("fixture", 64, 9, "csv").unwrap();
        assert_eq!(body.lines().count(), 65, "header + 64 rows");
        let tenant = client.tenant("acme").unwrap();
        assert_eq!(tenant.get("total").and_then(Json::as_f64), Some(2.0));
        client.shutdown().unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("shut down cleanly"), "{out}");
        assert!(fs::read_to_string(&ledger_path).unwrap().contains("acme"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_flag_pairs_are_validated() {
        assert!(matches!(run_cli(&["serve", "--model-id", "x"]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&["serve", "--tenant", "t"]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&["serve", "--budget", "1.0"]), Err(CliError::Usage(_))));
        // Deadlines must be positive; zero would disable socket timeouts.
        for flag in ["--read-deadline-ms", "--write-deadline-ms", "--handler-deadline-ms"] {
            assert!(
                matches!(run_cli(&["serve", flag, "0"]), Err(CliError::Usage(_))),
                "{flag}=0 must be rejected"
            );
        }
        // A bad address is a server error (exit code 5), not a usage error.
        assert!(matches!(
            run_cli(&["serve", "--addr", "999.999.999.999:1"]),
            Err(CliError::Server(_))
        ));
    }

    #[test]
    fn fit_method_mwem_round_trips_through_synth_and_inspect() {
        let dir = temp_dir("method-mwem");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("mwem.json").to_str().unwrap().to_string();
        let synth_path = dir.join("mwem-synth.csv").to_str().unwrap().to_string();
        let out = run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--method",
            "mwem",
            "--iterations",
            "4",
            "--seed",
            "5",
            "--out",
            &model_path,
            "--verbose",
        ])
        .unwrap();
        assert!(out.contains("method mwem"), "{out}");
        assert!(out.contains("engine:"), "--verbose must print engine stats: {out}");
        assert!(out.contains("projections"), "{out}");

        let out = run_cli(&["inspect", "--model", &model_path]).unwrap();
        assert!(out.contains("method:    mwem"), "{out}");

        let out = run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--rows",
            "120",
            "--seed",
            "6",
            "--out",
            &synth_path,
        ])
        .unwrap();
        assert!(out.contains("sampled 120 rows"), "{out}");
        assert_eq!(fs::read_to_string(&synth_path).unwrap().lines().count(), 121);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_method_is_fittable_from_the_cli() {
        let dir = temp_dir("method-all");
        let (schema_path, data_path) = write_fixture_data(&dir);
        for method in privbayes_synth::Method::ALL {
            let model_path =
                dir.join(format!("{}.json", method.name())).to_str().unwrap().to_string();
            let out = run_cli(&[
                "fit",
                "--data",
                &data_path,
                "--schema",
                &schema_path,
                "--epsilon",
                "1.0",
                "--method",
                method.name(),
                "--seed",
                "3",
                "--out",
                &model_path,
            ])
            .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
            assert!(out.contains(&format!("method {}", method.name())), "{out}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_method_is_a_usage_error_listing_valid_names() {
        let e = run_cli(&[
            "fit",
            "--data",
            "d.csv",
            "--schema",
            "s.json",
            "--epsilon",
            "1.0",
            "--out",
            "m.json",
            "--method",
            "frequentist",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        assert_eq!(e.exit_code(), 2, "unknown method must exit with code 2");
        let msg = e.to_string();
        for name in ["privbayes", "privbayes-k", "mwem", "laplace", "geometric", "uniform"] {
            assert!(msg.contains(name), "error must list `{name}`: {msg}");
        }
    }

    #[test]
    fn methods_command_lists_every_method() {
        let out = run_cli(&["methods"]).unwrap();
        for method in privbayes_synth::Method::ALL {
            assert!(out.contains(method.name()), "{out}");
        }
        assert!(run_cli(&["help"]).unwrap().contains("methods"), "help must mention `methods`");
    }

    #[test]
    fn fit_method_mwem_then_serve_streams_end_to_end() {
        use privbayes_server::Client;

        let dir = temp_dir("serve-mwem");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("mwem.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--method",
            "mwem",
            "--seed",
            "7",
            "--out",
            &model_path,
        ])
        .unwrap();

        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let serve_args: Vec<String> = [
            "serve",
            "--addr",
            &addr,
            "--workers",
            "2",
            "--model",
            &model_path,
            "--model-id",
            "mwem",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let server = std::thread::spawn(move || run(serve_args));

        let client = Client::new(addr);
        let mut ready = false;
        for _ in 0..100 {
            if client.health().is_ok() {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(ready, "server must come up");
        let body = client.synth("mwem", 80, 4, "csv").unwrap();
        assert_eq!(body.lines().count(), 81, "header + 80 rows from the MWEM artifact");
        let again = client.synth("mwem", 80, 4, "csv").unwrap();
        assert_eq!(body, again, "fixed seed streams identical bytes");
        client.shutdown().unwrap();
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("shut down cleanly"), "{out}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synth_where_select_and_local_query() {
        let dir = temp_dir("query-api");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "2.0",
            "--seed",
            "1",
            "--out",
            &model_path,
        ])
        .unwrap();

        let synth_path = dir.join("cohort.csv").to_str().unwrap().to_string();
        let out = run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--rows",
            "120",
            "--seed",
            "3",
            "--where",
            "smoker=v1",
            "--select",
            "region,smoker",
            "--out",
            &synth_path,
        ])
        .unwrap();
        assert!(out.contains("sampled 120 rows"), "{out}");
        let text = fs::read_to_string(&synth_path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("region,smoker"), "projected header in --select order");
        let mut rows = 0;
        for line in lines {
            assert!(line.ends_with(",v1"), "evidence must clamp smoker: {line}");
            rows += 1;
        }
        assert_eq!(rows, 120);

        let out = run_cli(&["query", "--model", &model_path, "--attrs", "smoker,region"]).unwrap();
        let lines: Vec<&str> = out.trim().lines().collect();
        assert_eq!(lines[0], "smoker,region,probability");
        assert_eq!(lines.len(), 1 + 2 * 3, "header + 2x3 cells");
        let total: f64 =
            lines[1..].iter().map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9, "marginal must sum to 1, got {total}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn synth_resume_concatenates_byte_identically() {
        use privbayes_synth::Cursor;

        let dir = temp_dir("resume");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--seed",
            "2",
            "--out",
            &model_path,
        ])
        .unwrap();

        let full_path = dir.join("full.csv").to_str().unwrap().to_string();
        run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--rows",
            "90",
            "--seed",
            "5",
            "--out",
            &full_path,
        ])
        .unwrap();
        let full = fs::read_to_string(&full_path).unwrap();

        let tail_path = dir.join("tail.csv").to_str().unwrap().to_string();
        let cursor = Cursor { seed: 5, row: 40, generation: None }.encode();
        let out = run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--rows",
            "90",
            "--resume",
            &cursor,
            "--out",
            &tail_path,
        ])
        .unwrap();
        assert!(out.contains("resumed at row 40"), "{out}");
        let tail = fs::read_to_string(&tail_path).unwrap();
        // header + 40 rows of the full run, then the resumed tail.
        let prefix: String = full.lines().take(41).map(|l| format!("{l}\n")).collect();
        assert_eq!(format!("{prefix}{tail}"), full, "prefix + resumed must equal uninterrupted");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_mistakes_are_typed_and_exit_4() {
        let dir = temp_dir("spec-errors");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--seed",
            "4",
            "--out",
            &model_path,
        ])
        .unwrap();
        let out = dir.join("x.csv").to_str().unwrap().to_string();
        for args in [
            vec!["synth", "--model", &model_path, "--out", &out, "--select", "bogus"],
            vec!["synth", "--model", &model_path, "--out", &out, "--where", "smoker=v9"],
            vec!["synth", "--model", &model_path, "--out", &out, "--resume", "garbage"],
            vec!["query", "--model", &model_path, "--attrs", "nope"],
        ] {
            let e = run_cli(&args).unwrap_err();
            assert!(matches!(e, CliError::Spec(_)), "{args:?}: {e}");
            assert_eq!(e.exit_code(), 4, "{args:?}");
        }
        // A malformed --where pair is a usage error (exit 2), not a spec one.
        let e = run_cli(&["synth", "--model", &model_path, "--out", &out, "--where", "smoker"])
            .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        // --threads with a spec-driven request is rejected, not ignored.
        let e = run_cli(&[
            "synth",
            "--model",
            &model_path,
            "--out",
            &out,
            "--select",
            "smoker",
            "--threads",
            "4",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        assert!(e.to_string().contains("--threads"), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn help_is_always_available() {
        assert!(run_cli(&["help"]).unwrap().contains("commands:"));
        assert!(run_cli(&["--help"]).unwrap().contains("commands:"));
        assert!(run_cli(&["fit", "--help"]).unwrap().contains("commands:"));
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run_cli(&["transmogrify"]), Err(CliError::Usage(_))));
        assert!(matches!(run_cli(&["fit", "--epsilon", "1.0"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_cli(&[
                "fit",
                "--data",
                "d",
                "--schema",
                "s",
                "--out",
                "o",
                "--epsilon",
                "1.0",
                "--encoding",
                "gray"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_files_are_io_errors() {
        let dir = temp_dir("missing");
        let (schema_path, _) = write_fixture_data(&dir);
        let e = run_cli(&[
            "fit",
            "--data",
            "/nonexistent.csv",
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--out",
            "/tmp/x.json",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Io { .. }), "{e}");
        let e = run_cli(&["inspect", "--model", "/nonexistent.json"]).unwrap_err();
        assert!(matches!(e, CliError::Io { .. }), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_rejects_bad_alpha() {
        let dir = temp_dir("alpha");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let e = run_cli(&[
            "eval",
            "--schema",
            &schema_path,
            "--truth",
            &data_path,
            "--synthetic",
            &data_path,
            "--alpha",
            "9",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_of_identical_tables_is_zero() {
        let dir = temp_dir("self-eval");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let out = run_cli(&[
            "eval",
            "--schema",
            &schema_path,
            "--truth",
            &data_path,
            "--synthetic",
            &data_path,
            "--alpha",
            "1",
        ])
        .unwrap();
        let tvd: f64 =
            out.trim().lines().nth(1).unwrap().split(',').nth(1).unwrap().parse().unwrap();
        assert!(tvd < 1e-9, "identical tables must have zero distance, got {tvd}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn relational_artifact_synth_and_inspect() {
        use privbayes_relational::{clinic_benchmark, RelationalOptions, RelationalPrivBayes};

        let dir = temp_dir("relational");
        let data = clinic_benchmark(300, 3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let synthesis = RelationalPrivBayes::new(RelationalOptions::new(2.0))
            .synthesize(&data, &mut rng)
            .unwrap();
        let artifact = ReleasedRelationalModel::from_synthesis(
            data.schema().clone(),
            &synthesis,
            "cli test",
            data.n_entities(),
            data.n_facts(),
        )
        .unwrap();
        let model_path = dir.join("clinic.json").to_str().unwrap().to_string();
        artifact.save(&model_path).unwrap();

        let out_e = dir.join("entities.csv").to_str().unwrap().to_string();
        let out_f = dir.join("facts.csv").to_str().unwrap().to_string();
        let out = run_cli(&[
            "synth-relational",
            "--model",
            &model_path,
            "--entities",
            "150",
            "--seed",
            "3",
            "--out-entities",
            &out_e,
            "--out-facts",
            &out_f,
        ])
        .unwrap();
        assert!(out.contains("synthesised 150 entities"), "{out}");
        let facts = fs::read_to_string(&out_f).unwrap();
        assert!(facts.starts_with("owner,diagnosis,inpatient\n"), "{facts}");
        // Every owner index refers to a synthesised entity.
        let entities = fs::read_to_string(&out_e).unwrap();
        let n_entities = entities.trim().lines().count() - 1;
        assert_eq!(n_entities, 150);
        for line in facts.trim().lines().skip(1) {
            let owner: usize = line.split(',').next().unwrap().parse().unwrap();
            assert!(owner < 150, "dangling owner {owner}");
        }

        let out = run_cli(&["inspect", "--model", &model_path]).unwrap();
        assert!(out.contains("fan-out cap:    3"), "{out}");
        assert!(out.contains("fact network"), "{out}");
        assert!(out.contains("cli test"), "{out}");

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audit_reports_advantage_under_bound_for_a_real_fit() {
        let dir = temp_dir("audit");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--seed",
            "3",
            "--out",
            &model_path,
        ])
        .unwrap();

        let out = run_cli(&[
            "audit",
            "--model",
            &model_path,
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--reps",
            "8",
            "--seed",
            "11",
        ])
        .unwrap();
        assert!(out.contains("membership-inference audit of privbayes at ε = 1"), "{out}");
        assert!(out.contains("advantage"), "{out}");
        assert!(out.contains("bound"), "{out}");
        assert!(out.contains("verdict: measured advantage is under the analytic ε-DP bound"));

        // The recorded ε can be overridden per run.
        let out = run_cli(&[
            "audit",
            "--model",
            &model_path,
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--reps",
            "4",
            "--epsilon",
            "0.2",
        ])
        .unwrap();
        assert!(out.contains("at ε = 0.2"), "{out}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn audit_flag_validation_uses_exit_code_two() {
        let dir = temp_dir("audit-flags");
        let (schema_path, data_path) = write_fixture_data(&dir);
        let model_path = dir.join("model.json").to_str().unwrap().to_string();
        run_cli(&[
            "fit",
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "1.0",
            "--seed",
            "3",
            "--out",
            &model_path,
        ])
        .unwrap();

        // Odd / tiny repetition counts are usage errors, not panics.
        for reps in ["7", "2"] {
            let e = run_cli(&[
                "audit",
                "--model",
                &model_path,
                "--data",
                &data_path,
                "--schema",
                &schema_path,
                "--reps",
                reps,
            ])
            .unwrap_err();
            assert!(matches!(e, CliError::Usage(_)), "{e}");
            assert_eq!(e.exit_code(), 2);
        }
        let e = run_cli(&[
            "audit",
            "--model",
            &model_path,
            "--data",
            &data_path,
            "--schema",
            &schema_path,
            "--epsilon",
            "-1",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_schema_is_invalid() {
        let dir = temp_dir("corrupt");
        let schema_path = dir.join("schema.json");
        fs::write(&schema_path, "{not json").unwrap();
        let e = run_cli(&[
            "fit",
            "--data",
            "d.csv",
            "--schema",
            schema_path.to_str().unwrap(),
            "--epsilon",
            "1.0",
            "--out",
            "m.json",
        ])
        .unwrap_err();
        assert!(matches!(e, CliError::Invalid(_)), "{e}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
