//! Command-line front end for the PrivBayes suite.
//!
//! Wraps the library pipeline in four file-oriented commands so a data owner
//! can release synthetic data without writing Rust:
//!
//! ```text
//! privbayes-cli fit     --data sensitive.csv --schema schema.json \
//!                       --epsilon 1.0 --out model.json
//! privbayes-cli synth   --model model.json --rows 50000 --out synthetic.csv
//! privbayes-cli eval    --schema schema.json --truth sensitive.csv \
//!                       --synthetic synthetic.csv --alpha 3
//! privbayes-cli inspect --model model.json
//! ```
//!
//! The `fit` command consumes the privacy budget; `synth`, `eval` on the
//! released artifact, and `inspect` are post-processing. All parsing is
//! dependency-free; see [`commands::USAGE`] for the flag reference.

pub mod args;
pub mod commands;
pub mod error;

pub use commands::{run, USAGE};
pub use error::CliError;
