//! Binary entry point: parse, run, print (or fail with exit code 1).

fn main() {
    match privbayes_cli::run(std::env::args().skip(1)) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
