//! Binary entry point: parse, run, print. Success output goes to stdout;
//! errors go to stderr with a variant-specific exit code (2 usage, 3 I/O,
//! 4 invalid input, 5 server — see `CliError::exit_code`).

fn main() {
    match privbayes_cli::run(std::env::args().skip(1)) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
