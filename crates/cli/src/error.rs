//! Error type for the command-line front end.

use std::fmt;

/// Errors surfaced to the CLI user (printed to stderr, exit code 1).
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown command, missing flag, unparsable value.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying message.
        message: String,
    },
    /// Input files parsed but were semantically invalid.
    Invalid(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<privbayes_model::ModelError> for CliError {
    fn from(e: privbayes_model::ModelError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

impl From<privbayes_data::DataError> for CliError {
    fn from(e: privbayes_data::DataError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

impl From<privbayes::PrivBayesError> for CliError {
    fn from(e: privbayes::PrivBayesError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("missing --data".into()).to_string().contains("--data"));
        let e = CliError::Io { path: "/x/y".into(), message: "not found".into() };
        assert!(e.to_string().contains("/x/y"));
        assert!(CliError::Invalid("bad model".into()).to_string().contains("bad model"));
    }
}
