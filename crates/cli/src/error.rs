//! Error type for the command-line front end.

use std::fmt;

/// Errors surfaced to the CLI user. Messages go to stderr; each error
/// *class* maps to a distinct process exit code ([`CliError::exit_code`]) so
/// scripts can tell a typo from a missing file from bad data without
/// parsing messages. [`CliError::Spec`] is the typed query-API variant of
/// the invalid-input class: every spec-validation failure (unknown
/// attribute, out-of-domain value, bad cursor, …) routes through it rather
/// than ad-hoc prints, and exits — like [`CliError::Invalid`] — with
/// code 4.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown command, missing flag, unparsable value.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying message.
        message: String,
    },
    /// Input files parsed but were semantically invalid.
    Invalid(String),
    /// A query/synthesis spec failed validation against the model's schema
    /// (the CLI face of the server's `400 invalid-spec` responses).
    Spec(privbayes_synth::SpecError),
    /// The `serve` subcommand failed (bind failure, ledger corruption, …).
    Server(String),
}

impl CliError {
    /// The process exit code for this error: `2` usage, `3` I/O, `4`
    /// invalid input (including invalid specs), `5` server. (`0` is
    /// success; `1` is reserved for panics.)
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Invalid(_) | CliError::Spec(_) => 4,
            CliError::Server(_) => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
            CliError::Spec(e) => write!(f, "invalid spec: {e}"),
            CliError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<privbayes_synth::SpecError> for CliError {
    fn from(e: privbayes_synth::SpecError) -> Self {
        CliError::Spec(e)
    }
}

impl From<privbayes_server::ServerError> for CliError {
    fn from(e: privbayes_server::ServerError) -> Self {
        CliError::Server(e.to_string())
    }
}

impl From<privbayes_model::ModelError> for CliError {
    fn from(e: privbayes_model::ModelError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

impl From<privbayes_data::DataError> for CliError {
    fn from(e: privbayes_data::DataError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

impl From<privbayes::PrivBayesError> for CliError {
    fn from(e: privbayes::PrivBayesError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("missing --data".into()).to_string().contains("--data"));
        let e = CliError::Io { path: "/x/y".into(), message: "not found".into() };
        assert!(e.to_string().contains("/x/y"));
        assert!(CliError::Invalid("bad model".into()).to_string().contains("bad model"));
        let e = CliError::Spec(privbayes_synth::SpecError::UnknownAttribute("zork".into()));
        assert!(e.to_string().contains("invalid spec"), "{e}");
        assert!(e.to_string().contains("zork"), "{e}");
        assert!(CliError::Server("bind failed".into()).to_string().contains("bind failed"));
    }

    #[test]
    fn exit_codes_are_distinct_per_class_and_nonzero() {
        let classes = [
            CliError::Usage(String::new()),
            CliError::Io { path: String::new(), message: String::new() },
            CliError::Invalid(String::new()),
            CliError::Server(String::new()),
        ];
        let codes: Vec<i32> = classes.iter().map(CliError::exit_code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "class codes must be distinct: {codes:?}");
        assert!(codes.iter().all(|&c| c > 1), "0 is success, 1 is reserved for panics");
        // Spec errors are the typed face of the invalid-input class: exit 4.
        let spec = CliError::Spec(privbayes_synth::SpecError::EmptyAttrs);
        assert_eq!(spec.exit_code(), CliError::Invalid(String::new()).exit_code());
        assert_eq!(spec.exit_code(), 4);
    }
}
