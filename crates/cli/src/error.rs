//! Error type for the command-line front end.

use std::fmt;

/// Errors surfaced to the CLI user. Messages go to stderr; each variant
/// maps to a distinct process exit code ([`CliError::exit_code`]) so
/// scripts can tell a typo from a missing file from bad data without
/// parsing messages.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown command, missing flag, unparsable value.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying message.
        message: String,
    },
    /// Input files parsed but were semantically invalid.
    Invalid(String),
    /// The `serve` subcommand failed (bind failure, ledger corruption, …).
    Server(String),
}

impl CliError {
    /// The process exit code for this error: `2` usage, `3` I/O, `4`
    /// invalid input, `5` server. (`0` is success; `1` is reserved for
    /// panics.)
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Invalid(_) => 4,
            CliError::Server(_) => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
            CliError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<privbayes_server::ServerError> for CliError {
    fn from(e: privbayes_server::ServerError) -> Self {
        CliError::Server(e.to_string())
    }
}

impl From<privbayes_model::ModelError> for CliError {
    fn from(e: privbayes_model::ModelError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

impl From<privbayes_data::DataError> for CliError {
    fn from(e: privbayes_data::DataError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

impl From<privbayes::PrivBayesError> for CliError {
    fn from(e: privbayes::PrivBayesError) -> Self {
        CliError::Invalid(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("missing --data".into()).to_string().contains("--data"));
        let e = CliError::Io { path: "/x/y".into(), message: "not found".into() };
        assert!(e.to_string().contains("/x/y"));
        assert!(CliError::Invalid("bad model".into()).to_string().contains("bad model"));
        assert!(CliError::Server("bind failed".into()).to_string().contains("bind failed"));
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            CliError::Usage(String::new()),
            CliError::Io { path: String::new(), message: String::new() },
            CliError::Invalid(String::new()),
            CliError::Server(String::new()),
        ];
        let codes: Vec<i32> = errors.iter().map(CliError::exit_code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes must be distinct: {codes:?}");
        assert!(codes.iter().all(|&c| c > 1), "0 is success, 1 is reserved for panics");
    }
}
