//! The unified `Synthesizer` layer: one trait, one count engine, every
//! method fittable and servable.
//!
//! The paper's evaluation (§6) is a head-to-head of PrivBayes against the
//! marginal-based baselines, and the statistical theory of this algorithm
//! family treats them as one class: *measure noisy marginals, post-process,
//! sample*. This crate gives that class one programmatic shape. A
//! [`Synthesizer`] fits a private generative model on a dataset; the result
//! is always a [`FittedArtifact`] wrapping a
//! [`privbayes_model::ReleasedModel`] — a Bayesian network with noisy
//! conditionals — so **every** method's output samples through the same
//! compiled alias-table pipeline, serialises through the same
//! `privbayes-model/1` envelope, and serves through the same registry and
//! streaming endpoints as a PrivBayes fit.
//!
//! # Methods
//!
//! | [`Method`] | fit | artifact |
//! |---|---|---|
//! | `privbayes` | Algorithm 4 (θ-usefulness GreedyBayes) + Algorithm 3 | the learned network itself |
//! | `privbayes-k` | Algorithm 2 (fixed degree `k`) + Algorithm 3 | the learned network itself |
//! | `mwem` | MWEM over the full domain | order-`k` Markov factorisation of the final weights |
//! | `laplace` | noisy pairwise marginals (Laplace) | chain model over consecutive pairs |
//! | `geometric` | noisy pairwise marginals (geometric, count scale) | chain model over consecutive pairs |
//! | `uniform` | nothing (spends no budget) | independent uniform attributes |
//!
//! For the marginal-based methods the artifact is **pure post-processing**
//! of the differentially private release (the noisy marginals / the MWEM
//! weights), so publishing it costs no additional privacy budget — exactly
//! the argument Theorem 3.2 makes for PrivBayes itself.
//!
//! # The Synthesizer contract
//!
//! * **Determinism.** `fit(data, epsilon, seed, settings)` is a pure
//!   function of its arguments: the same five inputs produce a bit-identical
//!   artifact, regardless of worker-thread count or engine cache state. All
//!   randomness flows from one `StdRng::seed_from_u64(seed)`.
//! * **Budget semantics.** `epsilon` is the *total* budget of the fit.
//!   PrivBayes methods split it β/(1−β) between structure and distribution
//!   learning; MWEM splits ε/T per round, half selection half measurement;
//!   the Laplace/geometric releases perturb every pairwise marginal under
//!   the composed sensitivity. `uniform` touches no data and spends nothing
//!   — [`FittedArtifact::epsilon_spent`] records the actual spend, which
//!   serving layers use for ledger debits.
//! * **One count engine.** Every method draws its exact marginals through a
//!   shared [`privbayes_marginals::CountEngine`] (via the
//!   [`privbayes_marginals::MarginalSource`] trait); no method re-scans the
//!   dataset's rows itself. [`FittedArtifact::stats`] exposes the engine's
//!   cache counters for observability.

use privbayes_data::encoding::EncodingKind;
use privbayes_data::Dataset;
use privbayes_model::ReleasedModel;

mod error;
mod methods;
pub mod spec;

pub use error::SynthError;
pub use methods::MwemOptions;
// Re-exported so serving layers can read fit-phase instrumentation off
// [`FittedArtifact::stats`] without a direct `privbayes-marginals` edge.
pub use privbayes_marginals::EngineStats;
pub use spec::{
    AttrRef, Cursor, MarginalQuery, ResolvedSynth, RowFormat, SpecError, SynthSpec, ValueRef,
};

/// The synthesis methods the suite can fit and serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// PrivBayes with θ-usefulness-driven adaptive degree (Algorithm 4).
    PrivBayes,
    /// PrivBayes with a fixed parent-set size `k` (Algorithm 2 over the
    /// vanilla domain).
    PrivBayesK,
    /// MWEM (Hardt, Ligett & McSherry): multiplicative weights over the full
    /// domain, released as an order-`k` Markov factorisation.
    Mwem,
    /// Per-cell Laplace noise on every pairwise marginal, released as a
    /// chain model.
    Laplace,
    /// Count-scale two-sided geometric noise on every pairwise marginal,
    /// released as a chain model.
    Geometric,
    /// The trivial uniform baseline; consumes no privacy budget.
    Uniform,
}

impl Method {
    /// Every method, in the order used by help output and benches.
    pub const ALL: [Method; 6] = [
        Method::PrivBayes,
        Method::PrivBayesK,
        Method::Mwem,
        Method::Laplace,
        Method::Geometric,
        Method::Uniform,
    ];

    /// The canonical CLI / metadata name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Method::PrivBayes => "privbayes",
            Method::PrivBayesK => "privbayes-k",
            Method::Mwem => "mwem",
            Method::Laplace => "laplace",
            Method::Geometric => "geometric",
            Method::Uniform => "uniform",
        }
    }

    /// One-line description for help output.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Method::PrivBayes => "PrivBayes, adaptive degree (Algorithm 4 + Algorithm 3)",
            Method::PrivBayesK => "PrivBayes, fixed degree k (Algorithm 2 + Algorithm 3)",
            Method::Mwem => "MWEM full-domain weights, released as an order-k Markov model",
            Method::Laplace => "Laplace noise on all pairwise marginals, chain model",
            Method::Geometric => "geometric (count-scale) noise on all pairwise marginals",
            Method::Uniform => "uniform baseline; spends no privacy budget",
        }
    }

    /// Parses a method name (the exact strings [`Method::name`] returns).
    #[must_use]
    pub fn parse(name: &str) -> Option<Method> {
        Method::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The comma-separated list of valid method names (for error messages).
    #[must_use]
    pub fn names() -> String {
        Method::ALL.map(Method::name).join(", ")
    }

    /// Whether fitting this method consumes privacy budget (`uniform` does
    /// not — it never touches the data).
    #[must_use]
    pub fn spends_budget(self) -> bool {
        self != Method::Uniform
    }

    /// The [`Synthesizer`] implementation for this method.
    #[must_use]
    pub fn synthesizer(self) -> Box<dyn Synthesizer> {
        methods::synthesizer(self)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared fit configuration. Every field has a paper-default; methods read
/// only the fields that concern them (documented per field).
#[derive(Debug, Clone, PartialEq)]
pub struct FitSettings {
    /// Budget split β between structure and distribution learning
    /// (PrivBayes methods). Default 0.3.
    pub beta: f64,
    /// θ-usefulness threshold (PrivBayes adaptive). Default 4.0.
    pub theta: f64,
    /// Cap on parent-set cardinality: the GreedyBayes degree cap for the
    /// PrivBayes methods **and** the Markov order of the MWEM artifact.
    /// Default 4.
    pub max_degree: usize,
    /// Fixed degree `k` for `privbayes-k`. Default 2.
    pub fixed_k: usize,
    /// Workload arity α for MWEM's query class. Default 2 (all pairwise
    /// marginals). The Laplace/geometric releases always use α = 2 — their
    /// chain artifact is built from consecutive pairs.
    pub alpha: usize,
    /// MWEM loop hyper-parameters.
    pub mwem: MwemOptions,
    /// Cross-marginal consistency rounds for the PrivBayes methods.
    /// Default 0.
    pub consistency_rounds: usize,
    /// Attribute encoding: `privbayes` accepts `Vanilla` or `Hierarchical`;
    /// `privbayes-k` requires `Vanilla` (Algorithm 2 enumerates raw
    /// attributes). Other encodings are rejected — the artifact stores the
    /// model over the original schema. Ignored by the marginal methods.
    /// Default vanilla.
    pub encoding: EncodingKind,
    /// Scoring worker threads (PrivBayes methods); `None` uses all cores.
    /// Never affects the output bits.
    pub threads: Option<usize>,
    /// Free-form provenance comment stored in the artifact metadata.
    pub comment: String,
}

impl Default for FitSettings {
    fn default() -> Self {
        Self {
            beta: 0.3,
            theta: 4.0,
            max_degree: 4,
            fixed_k: 2,
            alpha: 2,
            mwem: MwemOptions::default(),
            consistency_rounds: 0,
            encoding: EncodingKind::Vanilla,
            threads: None,
            comment: String::new(),
        }
    }
}

/// The output of a [`Synthesizer::fit`]: a servable release artifact plus
/// fit observability.
#[derive(Debug)]
pub struct FittedArtifact {
    /// Which method produced the artifact (also recorded in
    /// `artifact.metadata.method`).
    pub method: Method,
    /// The release artifact: samples rows, serialises to
    /// `privbayes-model/1`, loads into the server registry.
    pub artifact: ReleasedModel,
    /// Count-engine cache counters observed during the fit (all zero for
    /// `uniform`, which never builds an engine).
    pub stats: EngineStats,
    /// Privacy budget actually consumed (0 for `uniform`).
    pub epsilon_spent: f64,
}

/// A fittable synthesis method. See the crate docs for the determinism and
/// budget contract every implementation honours.
pub trait Synthesizer {
    /// The method this synthesizer implements.
    fn method(&self) -> Method;

    /// Fits a private model on `data` under total budget `epsilon`,
    /// deterministically in `seed`. The default builds a fresh
    /// [`CountEngine`](privbayes_marginals::CountEngine) over `data` and
    /// delegates to [`Synthesizer::fit_with_engine`].
    ///
    /// # Errors
    /// Returns [`SynthError::InvalidConfig`] for bad parameters (non-positive
    /// ε on a budget-spending method, empty data, fewer than two attributes,
    /// an MWEM domain beyond the materialisation cap) and propagates core /
    /// artifact-validation failures.
    fn fit(
        &self,
        data: &Dataset,
        epsilon: f64,
        seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        self.fit_with_engine(&privbayes_marginals::CountEngine::new(data), epsilon, seed, settings)
    }

    /// Fits through an existing engine — the path the ingestion subsystem
    /// takes with a long-lived, incrementally-appended per-tenant engine.
    /// The engine's determinism contract (every answer bit-identical to a
    /// cold scan, regardless of cache state or append history) makes a
    /// refit over an appended engine produce the **same artifact bits** as
    /// a cold fit over the concatenated data.
    ///
    /// # Errors
    /// As [`Synthesizer::fit`].
    fn fit_with_engine(
        &self,
        engine: &privbayes_marginals::CountEngine,
        epsilon: f64,
        seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError>;
}

/// Convenience: fit `method` in one call.
///
/// # Errors
/// As [`Synthesizer::fit`].
pub fn fit_method(
    method: Method,
    data: &Dataset,
    epsilon: f64,
    seed: u64,
    settings: &FitSettings,
) -> Result<FittedArtifact, SynthError> {
    method.synthesizer().fit(data, epsilon, seed, settings)
}

/// Convenience: fit `method` through an existing engine (see
/// [`Synthesizer::fit_with_engine`]).
///
/// # Errors
/// As [`Synthesizer::fit`].
pub fn fit_method_with_engine(
    method: Method,
    engine: &privbayes_marginals::CountEngine,
    epsilon: f64,
    seed: u64,
    settings: &FitSettings,
) -> Result<FittedArtifact, SynthError> {
    method.synthesizer().fit_with_engine(engine, epsilon, seed, settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("frequentist"), None);
        assert!(Method::names().contains("mwem"));
        assert!(Method::names().contains("privbayes-k"));
    }

    #[test]
    fn only_uniform_is_free() {
        for m in Method::ALL {
            assert_eq!(m.spends_budget(), m != Method::Uniform, "{m}");
        }
    }
}
