//! Typed request specs for the query API v2: [`SynthSpec`] (conditional,
//! projected, resumable synthesis) and [`MarginalQuery`] (direct marginal
//! answers from the released θ).
//!
//! The paper's whole evaluation (§6) is phrased as workloads *over the
//! released model* — α-way marginals and label-conditioned tasks — so those
//! workloads get first-class request objects here instead of forcing every
//! client to materialise full rows and re-aggregate. A spec is built either
//! programmatically (builder methods) or from a JSON body
//! ([`SynthSpec::from_json`]), then **resolved** against a concrete
//! [`Schema`] ([`SynthSpec::resolve`]), which is where all validation
//! happens and where names/labels become indices/codes. Every failure is a
//! typed [`SpecError`]; the serving layer maps the whole family to one
//! structured `400 invalid-spec` response and the CLI to exit code 4.
//!
//! # Determinism contract
//!
//! A resolved spec pins the response bytes completely: for a fixed
//! `(model, seed, spec)` the rendered rows are identical across servers,
//! workers, and interruptions. An empty spec (no evidence, no projection,
//! no cursor) reproduces the legacy unconditional stream byte for byte; a
//! [`Cursor`] resumes a stream so that `prefix + resumed == uninterrupted`
//! exactly; [`MarginalQuery`] answers are bit-reproducible (they go through
//! `privbayes::inference::theta_projection`, whose operation order is
//! specified).

use std::fmt;

use privbayes::sampler::SampleSpec;
use privbayes_data::Schema;
use privbayes_model::Json;

/// A spec-validation failure. Each variant names exactly what the client
/// got wrong; the server surfaces the family as `400` with a JSON body
/// `{"error": "invalid-spec", "message": …}` and the CLI exits with code 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// An attribute reference matched nothing in the schema.
    UnknownAttribute(String),
    /// An attribute appeared twice in a projection/evidence/query list.
    DuplicateAttribute(String),
    /// An evidence value is outside its attribute's domain.
    UnknownValue {
        /// The attribute the value was given for.
        attr: String,
        /// The offending label/code as written.
        value: String,
    },
    /// A query's attribute list is empty.
    EmptyAttrs,
    /// A cursor token failed to decode, or contradicts the spec's seed.
    BadCursor(String),
    /// An unknown output format name.
    BadFormat(String),
    /// A JSON body field is missing, mistyped, or unknown.
    BadField(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            SpecError::DuplicateAttribute(name) => write!(f, "attribute `{name}` repeated"),
            SpecError::UnknownValue { attr, value } => {
                write!(f, "value `{value}` is outside the domain of attribute `{attr}`")
            }
            SpecError::EmptyAttrs => write!(f, "attribute list must not be empty"),
            SpecError::BadCursor(msg) => write!(f, "bad cursor: {msg}"),
            SpecError::BadFormat(name) => write!(f, "unknown format `{name}` (csv|jsonl)"),
            SpecError::BadField(msg) => write!(f, "bad field: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// A reference to a schema attribute: by name (the usual JSON/CLI form) or
/// by index (programmatic use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrRef {
    /// The attribute's schema name.
    Name(String),
    /// The attribute's 0-based schema index.
    Index(usize),
}

impl AttrRef {
    /// Resolves to a schema index. Names are matched first; a name that
    /// matches no attribute but is a decimal index in range resolves as an
    /// index — evidence objects (JSON keys are always strings) carry
    /// [`AttrRef::Index`] references as digit strings.
    ///
    /// # Errors
    /// [`SpecError::UnknownAttribute`] when the name/index matches nothing.
    pub fn resolve(&self, schema: &Schema) -> Result<usize, SpecError> {
        match self {
            AttrRef::Name(name) => match schema.index_of(name) {
                Some(index) => Ok(index),
                None => match name.parse::<usize>() {
                    Ok(index) if index < schema.len() => Ok(index),
                    _ => Err(SpecError::UnknownAttribute(name.clone())),
                },
            },
            AttrRef::Index(index) => {
                if *index < schema.len() {
                    Ok(*index)
                } else {
                    Err(SpecError::UnknownAttribute(index.to_string()))
                }
            }
        }
    }

    fn from_json(json: &Json) -> Result<Self, SpecError> {
        if let Some(name) = json.as_str() {
            return Ok(AttrRef::Name(name.to_string()));
        }
        if let Some(index) = json.as_usize() {
            return Ok(AttrRef::Index(index));
        }
        Err(SpecError::BadField("attribute references must be names or indices".into()))
    }

    fn to_json(&self) -> Json {
        match self {
            AttrRef::Name(name) => Json::String(name.clone()),
            AttrRef::Index(index) => Json::from_usize(*index),
        }
    }

    /// The reference as a JSON object key (evidence maps): the name, or the
    /// index as a digit string (round-tripped by [`AttrRef::resolve`]'s
    /// numeric fallback).
    fn key(&self) -> String {
        match self {
            AttrRef::Name(name) => name.clone(),
            AttrRef::Index(index) => index.to_string(),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrRef::Name(name) => write!(f, "{name}"),
            AttrRef::Index(index) => write!(f, "#{index}"),
        }
    }
}

impl From<&str> for AttrRef {
    fn from(name: &str) -> Self {
        AttrRef::Name(name.to_string())
    }
}

impl From<String> for AttrRef {
    fn from(name: String) -> Self {
        AttrRef::Name(name)
    }
}

impl From<usize> for AttrRef {
    fn from(index: usize) -> Self {
        AttrRef::Index(index)
    }
}

/// An evidence value: a domain label (`"south"`, or the synthesised
/// `"v3"` form for unlabelled domains) or a raw domain code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueRef {
    /// A display label, matched against the attribute's domain labels (and
    /// the `v{code}` fallback labels of unlabelled domains). A label that is
    /// all digits is also accepted as a raw code.
    Label(String),
    /// A raw domain code.
    Code(u32),
}

impl ValueRef {
    /// Resolves to a domain code of attribute `attr`.
    ///
    /// # Errors
    /// [`SpecError::UnknownValue`] when the label/code is outside the
    /// attribute's domain.
    pub fn resolve(&self, schema: &Schema, attr: usize) -> Result<u32, SpecError> {
        let attribute = schema.attribute(attr);
        let domain = attribute.domain();
        let fail =
            |value: String| SpecError::UnknownValue { attr: attribute.name().to_string(), value };
        match self {
            ValueRef::Code(code) => {
                if domain.contains(*code) {
                    Ok(*code)
                } else {
                    Err(fail(code.to_string()))
                }
            }
            ValueRef::Label(label) => {
                if let Some(code) = domain.code_of(label) {
                    return Ok(code);
                }
                // The `v{code}` display labels of unlabelled domains, then a
                // bare numeric code.
                let numeric = label.strip_prefix('v').unwrap_or(label);
                match numeric.parse::<u32>() {
                    Ok(code) if domain.contains(code) => Ok(code),
                    _ => Err(fail(label.clone())),
                }
            }
        }
    }

    fn from_json(json: &Json) -> Result<Self, SpecError> {
        if let Some(label) = json.as_str() {
            return Ok(ValueRef::Label(label.to_string()));
        }
        if let Some(code) = json.as_usize() {
            return Ok(ValueRef::Code(code as u32));
        }
        Err(SpecError::BadField("evidence values must be labels or codes".into()))
    }

    fn to_json(&self) -> Json {
        match self {
            ValueRef::Label(label) => Json::String(label.clone()),
            ValueRef::Code(code) => Json::from_usize(*code as usize),
        }
    }
}

impl From<&str> for ValueRef {
    fn from(label: &str) -> Self {
        ValueRef::Label(label.to_string())
    }
}

impl From<u32> for ValueRef {
    fn from(code: u32) -> Self {
        ValueRef::Code(code)
    }
}

/// Wire format of a streamed synthesis response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RowFormat {
    /// `text/csv`: header line, then one comma-joined label row per tuple.
    #[default]
    Csv,
    /// `application/x-ndjson`: one `{"attr": "label", …}` object per line.
    Jsonl,
}

impl RowFormat {
    /// Parses a format name (`None` defaults to CSV; both `jsonl` and
    /// `ndjson` name the newline-delimited JSON format).
    ///
    /// # Errors
    /// Returns [`SpecError::BadFormat`] naming the unknown format.
    pub fn parse(raw: Option<&str>) -> Result<Self, SpecError> {
        match raw {
            None | Some("csv") => Ok(RowFormat::Csv),
            Some("jsonl" | "ndjson") => Ok(RowFormat::Jsonl),
            Some(other) => Err(SpecError::BadFormat(other.to_string())),
        }
    }

    /// The canonical name ([`RowFormat::parse`] accepts it back).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RowFormat::Csv => "csv",
            RowFormat::Jsonl => "jsonl",
        }
    }

    /// The response `Content-Type`.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            RowFormat::Csv => "text/csv",
            RowFormat::Jsonl => "application/x-ndjson",
        }
    }

    /// The bytes that precede the first row (the CSV header over the
    /// projected attributes; nothing for JSONL). `projection = None` means
    /// every attribute in schema order.
    #[must_use]
    pub fn header(self, schema: &Schema, projection: Option<&[usize]>) -> String {
        match self {
            RowFormat::Csv => {
                let names: Vec<&str> = projected_attrs(schema, projection)
                    .map(|attr| schema.attribute(attr).name())
                    .collect();
                format!("{}\n", names.join(","))
            }
            RowFormat::Jsonl => String::new(),
        }
    }

    /// Renders one chunk of row-major tuples whose columns are the
    /// projected attributes (full schema width when `projection` is
    /// `None`). CSV output is byte-compatible with
    /// `privbayes_data::csv::write_csv` restricted to those columns.
    #[must_use]
    pub fn render(
        self,
        schema: &Schema,
        projection: Option<&[usize]>,
        rows: &[Vec<u32>],
    ) -> String {
        let attrs: Vec<usize> = projected_attrs(schema, projection).collect();
        let mut out = String::new();
        for tuple in rows {
            match self {
                RowFormat::Csv => {
                    for (slot, &attr) in attrs.iter().enumerate() {
                        if slot > 0 {
                            out.push(',');
                        }
                        out.push_str(&schema.attribute(attr).domain().label(tuple[slot]));
                    }
                }
                RowFormat::Jsonl => {
                    let fields: Vec<(String, Json)> = attrs
                        .iter()
                        .enumerate()
                        .map(|(slot, &attr)| {
                            let a = schema.attribute(attr);
                            (a.name().to_string(), Json::String(a.domain().label(tuple[slot])))
                        })
                        .collect();
                    out.push_str(
                        &Json::Object(fields).to_string_compact().expect("labels are finite"),
                    );
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The attribute indices a projection keeps, in yield order.
fn projected_attrs<'a>(
    schema: &Schema,
    projection: Option<&'a [usize]>,
) -> Box<dyn Iterator<Item = usize> + 'a> {
    match projection {
        Some(keep) => Box::new(keep.iter().copied()),
        None => Box::new(0..schema.len()),
    }
}

/// Prefix of generation-less cursor tokens (the original stable format).
const CURSOR_PREFIX: &str = "pbc1";

/// Prefix of generation-pinning cursor tokens.
const CURSOR_PREFIX_V2: &str = "pbc2";

/// A resume point in a synthesis stream: the stream's seed, the next row to
/// deliver, and (optionally) the model **generation** the stream started
/// on.
///
/// The token formats are **documented and stable**:
/// `pbc1-<seed as 16 hex digits>-<row in hex>` and
/// `pbc2-<seed as 16 hex digits>-<row in hex>-<generation in hex>`. A `/v1`
/// synth response reports its own start token in `X-PrivBayes-Cursor` (and
/// the effective seed in `X-PrivBayes-Seed`); a client that consumed `r`
/// complete data rows resumes by sending the same spec with the token's row
/// field advanced by `r` — typed clients simply build
/// `Cursor { seed, row: r, generation }`. `pbc1` tokens remain accepted and
/// resolve with no generation pin (the registry serves its current
/// generation).
///
/// Because every chunk's RNG stream is derived from `(seed, chunk index)`
/// alone, a stream resumed at row `r` yields exactly rows `r..` of the
/// uninterrupted stream — byte-identical once rendered (continuations skip
/// the CSV header). The generation pin extends that guarantee across model
/// hot-swaps: a `pbc2` resume keeps sampling the *same released model* the
/// stream started on, even after a refit has installed a newer generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// The seed the stream was started with.
    pub seed: u64,
    /// The next row (0-based) the resumed stream should deliver.
    pub row: u64,
    /// The model generation the stream started on (`None` for `pbc1`
    /// tokens: resume against whatever generation currently serves).
    pub generation: Option<u64>,
}

impl Cursor {
    /// Encodes the cursor as an opaque token (`pbc2` when a generation is
    /// pinned, `pbc1` otherwise).
    #[must_use]
    pub fn encode(&self) -> String {
        match self.generation {
            Some(generation) => {
                format!("{CURSOR_PREFIX_V2}-{:016x}-{:x}-{generation:x}", self.seed, self.row)
            }
            None => format!("{CURSOR_PREFIX}-{:016x}-{:x}", self.seed, self.row),
        }
    }

    /// Decodes a token produced by [`Cursor::encode`] (either version).
    ///
    /// # Errors
    /// Returns [`SpecError::BadCursor`] for any malformed token.
    pub fn decode(token: &str) -> Result<Self, SpecError> {
        let bad = || SpecError::BadCursor(format!("unparsable token `{token}`"));
        let mut parts = token.split('-');
        let versioned = match parts.next() {
            Some(CURSOR_PREFIX) => false,
            Some(CURSOR_PREFIX_V2) => true,
            _ => return Err(bad()),
        };
        let seed = parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()).ok_or_else(bad)?;
        let row = parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()).ok_or_else(bad)?;
        let generation = if versioned {
            Some(parts.next().and_then(|p| u64::from_str_radix(p, 16).ok()).ok_or_else(bad)?)
        } else {
            None
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(Self { seed, row, generation })
    }
}

impl fmt::Display for Cursor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

/// A synthesis request: how many rows, from which seed, in which format,
/// conditioned on what, projecting which columns, resuming where.
///
/// Build with the `with_*`/[`SynthSpec::select`]/[`SynthSpec::where_eq`]
/// builders or parse from a JSON body, then [`SynthSpec::resolve`] against
/// the model's schema. The **default spec** (all fields unset) reproduces
/// the legacy unconditional full-width stream byte for byte.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthSpec {
    /// Rows of the (unresumed) stream; `None` uses the model's
    /// `source_rows`.
    pub rows: Option<usize>,
    /// RNG seed; `None` lets the server draw one (reported back via the
    /// `X-PrivBayes-Seed` header so the stream stays resumable).
    pub seed: Option<u64>,
    /// Output format.
    pub format: RowFormat,
    /// Columns to return, in order (empty = all attributes).
    pub project: Vec<AttrRef>,
    /// Evidence clamps: each sampled row carries these attribute values and
    /// the rest of the row follows the model conditioned on them.
    pub evidence: Vec<(AttrRef, ValueRef)>,
    /// Resume point from an earlier interrupted stream of the same spec.
    pub cursor: Option<Cursor>,
}

impl SynthSpec {
    /// An empty spec (server defaults everywhere).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the row count.
    #[must_use]
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = Some(rows);
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the output format.
    #[must_use]
    pub fn with_format(mut self, format: RowFormat) -> Self {
        self.format = format;
        self
    }

    /// Appends a projected column.
    #[must_use]
    pub fn select(mut self, attr: impl Into<AttrRef>) -> Self {
        self.project.push(attr.into());
        self
    }

    /// Appends an evidence clamp.
    #[must_use]
    pub fn where_eq(mut self, attr: impl Into<AttrRef>, value: impl Into<ValueRef>) -> Self {
        self.evidence.push((attr.into(), value.into()));
        self
    }

    /// Sets the resume cursor.
    #[must_use]
    pub fn with_cursor(mut self, cursor: Cursor) -> Self {
        self.cursor = Some(cursor);
        self
    }

    /// Serialises the spec as the `/v1` synth request body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        if let Some(rows) = self.rows {
            fields.push(("rows".into(), Json::from_usize(rows)));
        }
        if let Some(seed) = self.seed {
            // f64-backed JSON numbers are exact only below 2^53; larger
            // seeds (e.g. ones the server drew and reported back) travel as
            // decimal strings.
            let json = if seed < (1 << 53) {
                Json::from_usize(seed as usize)
            } else {
                Json::String(seed.to_string())
            };
            fields.push(("seed".into(), json));
        }
        if self.format != RowFormat::default() {
            fields.push(("format".into(), Json::String(self.format.name().to_string())));
        }
        if !self.project.is_empty() {
            fields.push((
                "project".into(),
                Json::Array(self.project.iter().map(AttrRef::to_json).collect()),
            ));
        }
        if !self.evidence.is_empty() {
            fields.push((
                "evidence".into(),
                Json::Object(
                    self.evidence
                        .iter()
                        .map(|(attr, value)| (attr.key(), value.to_json()))
                        .collect(),
                ),
            ));
        }
        if let Some(cursor) = &self.cursor {
            fields.push(("cursor".into(), Json::String(cursor.encode())));
        }
        Json::Object(fields)
    }

    /// Parses a `/v1` synth request body. Unknown top-level fields are
    /// rejected so typos fail loudly instead of silently applying defaults.
    ///
    /// # Errors
    /// Returns [`SpecError::BadField`] for mistyped/unknown fields,
    /// [`SpecError::BadFormat`] / [`SpecError::BadCursor`] for those fields.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let fields = json
            .as_object()
            .ok_or_else(|| SpecError::BadField("request body must be a JSON object".into()))?;
        let mut spec = Self::new();
        for (key, value) in fields {
            match key.as_str() {
                "rows" => {
                    spec.rows =
                        Some(value.as_usize().ok_or_else(|| SpecError::BadField("rows".into()))?);
                }
                "seed" => {
                    // Numbers for the common case, decimal strings for
                    // seeds at or above 2^53 (exactness past f64).
                    spec.seed = Some(match (value.as_usize(), value.as_str()) {
                        (Some(seed), _) => seed as u64,
                        (None, Some(text)) => {
                            text.parse::<u64>().map_err(|_| SpecError::BadField("seed".into()))?
                        }
                        (None, None) => return Err(SpecError::BadField("seed".into())),
                    });
                }
                "format" => {
                    let name =
                        value.as_str().ok_or_else(|| SpecError::BadField("format".into()))?;
                    spec.format = RowFormat::parse(Some(name))?;
                }
                "project" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| SpecError::BadField("project must be an array".into()))?;
                    spec.project =
                        items.iter().map(AttrRef::from_json).collect::<Result<_, _>>()?;
                }
                "evidence" => {
                    let pairs = value.as_object().ok_or_else(|| {
                        SpecError::BadField("evidence must be an object of attr: value".into())
                    })?;
                    spec.evidence = pairs
                        .iter()
                        .map(|(attr, v)| Ok((AttrRef::Name(attr.clone()), ValueRef::from_json(v)?)))
                        .collect::<Result<_, SpecError>>()?;
                }
                "cursor" => {
                    let token =
                        value.as_str().ok_or_else(|| SpecError::BadField("cursor".into()))?;
                    spec.cursor = Some(Cursor::decode(token)?);
                }
                other => return Err(SpecError::BadField(format!("unknown field `{other}`"))),
            }
        }
        Ok(spec)
    }

    /// Resolves names/labels against `schema` into indices/codes, checks
    /// duplicates and cursor/seed consistency, and returns the fully-typed
    /// request. This is the **only** validation gate: a `ResolvedSynth` is
    /// servable as-is.
    ///
    /// # Errors
    /// Any [`SpecError`] named by the failing field.
    pub fn resolve(&self, schema: &Schema) -> Result<ResolvedSynth, SpecError> {
        let mut projection: Vec<usize> = Vec::with_capacity(self.project.len());
        for attr in &self.project {
            let index = attr.resolve(schema)?;
            if projection.contains(&index) {
                return Err(SpecError::DuplicateAttribute(
                    schema.attribute(index).name().to_string(),
                ));
            }
            projection.push(index);
        }
        let mut evidence: Vec<(usize, u32)> = Vec::with_capacity(self.evidence.len());
        for (attr, value) in &self.evidence {
            let index = attr.resolve(schema)?;
            if evidence.iter().any(|&(a, _)| a == index) {
                return Err(SpecError::DuplicateAttribute(
                    schema.attribute(index).name().to_string(),
                ));
            }
            evidence.push((index, value.resolve(schema, index)?));
        }
        let (seed, start_row) = match (self.seed, self.cursor) {
            (Some(seed), Some(cursor)) if cursor.seed != seed => {
                return Err(SpecError::BadCursor(format!(
                    "cursor seed {} disagrees with spec seed {seed}",
                    cursor.seed
                )));
            }
            (seed, Some(cursor)) => (seed.or(Some(cursor.seed)), cursor.row as usize),
            (seed, None) => (seed, 0),
        };
        Ok(ResolvedSynth {
            rows: self.rows,
            seed,
            format: self.format,
            projection: if projection.is_empty() { None } else { Some(projection) },
            evidence,
            start_row,
            generation: self.cursor.and_then(|c| c.generation),
        })
    }
}

/// A [`SynthSpec`] resolved against a schema: indices and codes only, ready
/// to drive `CompiledSampler::stream_spec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedSynth {
    /// Requested rows (`None` = the model's `source_rows`).
    pub rows: Option<usize>,
    /// Requested (or cursor-carried) seed; `None` = the server draws one.
    pub seed: Option<u64>,
    /// Output format.
    pub format: RowFormat,
    /// Projected columns in yield order (`None` = all).
    pub projection: Option<Vec<usize>>,
    /// Evidence clamps as `(attribute index, domain code)`.
    pub evidence: Vec<(usize, u32)>,
    /// Resume offset (0 for fresh streams).
    pub start_row: usize,
    /// Model generation the resume cursor pinned (`None` when the request
    /// carried no cursor or a `pbc1` token — serve the current generation).
    pub generation: Option<u64>,
}

impl ResolvedSynth {
    /// The core sampler spec for a stream of `rows` total rows.
    #[must_use]
    pub fn sample_spec(&self, rows: usize) -> SampleSpec {
        SampleSpec {
            rows,
            evidence: self.evidence.clone(),
            projection: self.projection.clone(),
            start_row: self.start_row,
        }
    }
}

/// A marginal query against the released θ: the joint distribution of
/// `attrs` under the model, answered **exactly** (no sampling, no privacy
/// cost — pure post-processing of the released conditionals) via
/// `privbayes::inference::theta_projection`, whose fixed operation order
/// makes answers bit-reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarginalQuery {
    /// The queried attributes; the answer's axes follow this order.
    pub attrs: Vec<AttrRef>,
}

impl MarginalQuery {
    /// An empty query (add attributes with [`MarginalQuery::over`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a queried attribute.
    #[must_use]
    pub fn over(mut self, attr: impl Into<AttrRef>) -> Self {
        self.attrs.push(attr.into());
        self
    }

    /// Serialises the query as the `/v1` query request body.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(vec![(
            "attrs".to_string(),
            Json::Array(self.attrs.iter().map(AttrRef::to_json).collect()),
        )])
    }

    /// Parses a `/v1` query request body (`{"attrs": [...]}`).
    ///
    /// # Errors
    /// Returns [`SpecError::BadField`] for mistyped/unknown fields.
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let fields = json
            .as_object()
            .ok_or_else(|| SpecError::BadField("request body must be a JSON object".into()))?;
        let mut query = Self::new();
        let mut seen_attrs = false;
        for (key, value) in fields {
            match key.as_str() {
                "attrs" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| SpecError::BadField("attrs must be an array".into()))?;
                    query.attrs = items.iter().map(AttrRef::from_json).collect::<Result<_, _>>()?;
                    seen_attrs = true;
                }
                other => return Err(SpecError::BadField(format!("unknown field `{other}`"))),
            }
        }
        if !seen_attrs {
            return Err(SpecError::BadField("missing `attrs`".into()));
        }
        Ok(query)
    }

    /// Resolves to unique schema indices, preserving order.
    ///
    /// # Errors
    /// [`SpecError::EmptyAttrs`], [`SpecError::UnknownAttribute`], or
    /// [`SpecError::DuplicateAttribute`].
    pub fn resolve(&self, schema: &Schema) -> Result<Vec<usize>, SpecError> {
        if self.attrs.is_empty() {
            return Err(SpecError::EmptyAttrs);
        }
        let mut attrs: Vec<usize> = Vec::with_capacity(self.attrs.len());
        for attr in &self.attrs {
            let index = attr.resolve(schema)?;
            if attrs.contains(&index) {
                return Err(SpecError::DuplicateAttribute(
                    schema.attribute(index).name().to_string(),
                ));
            }
            attrs.push(index);
        }
        Ok(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::binary("smoker"),
            Attribute::categorical_labelled("region", ["north", "south", "west"]).unwrap(),
            Attribute::categorical("age", 8).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn attr_and_value_resolution() {
        let schema = schema();
        assert_eq!(AttrRef::from("region").resolve(&schema).unwrap(), 1);
        assert_eq!(AttrRef::from(2usize).resolve(&schema).unwrap(), 2);
        assert!(AttrRef::from("bogus").resolve(&schema).is_err());
        assert!(AttrRef::from(9usize).resolve(&schema).is_err());
        assert_eq!(ValueRef::from("south").resolve(&schema, 1).unwrap(), 1);
        assert_eq!(ValueRef::from(2u32).resolve(&schema, 1).unwrap(), 2);
        // Unlabelled domains accept the synthesised v{code} labels and bare
        // numeric codes.
        assert_eq!(ValueRef::from("v5").resolve(&schema, 2).unwrap(), 5);
        assert_eq!(ValueRef::from("5").resolve(&schema, 2).unwrap(), 5);
        assert!(ValueRef::from("v9").resolve(&schema, 2).is_err());
        assert!(ValueRef::from(3u32).resolve(&schema, 0).is_err());
    }

    #[test]
    fn synth_spec_round_trips_through_json() {
        let spec = SynthSpec::new()
            .with_rows(500)
            .with_seed(7)
            .with_format(RowFormat::Jsonl)
            .select("region")
            .select("smoker")
            .where_eq("smoker", "v1")
            .with_cursor(Cursor { seed: 7, row: 2048, generation: Some(3) });
        let restored = SynthSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(restored, spec);
        // The default spec serialises to an empty object and back.
        assert_eq!(SynthSpec::from_json(&SynthSpec::new().to_json()).unwrap(), SynthSpec::new());
    }

    #[test]
    fn synth_spec_resolution_and_errors() {
        let schema = schema();
        let resolved = SynthSpec::new()
            .with_rows(100)
            .select("age")
            .select(0usize)
            .where_eq("region", "west")
            .resolve(&schema)
            .unwrap();
        assert_eq!(resolved.projection, Some(vec![2, 0]));
        assert_eq!(resolved.evidence, vec![(1, 2)]);
        assert_eq!(resolved.start_row, 0);

        let e = SynthSpec::new().select("nope").resolve(&schema).unwrap_err();
        assert!(matches!(e, SpecError::UnknownAttribute(_)), "{e}");
        let e = SynthSpec::new().select("age").select("age").resolve(&schema).unwrap_err();
        assert!(matches!(e, SpecError::DuplicateAttribute(_)), "{e}");
        let e = SynthSpec::new().where_eq("region", "east").resolve(&schema).unwrap_err();
        assert!(matches!(e, SpecError::UnknownValue { .. }), "{e}");
        let e = SynthSpec::new()
            .where_eq("smoker", 0u32)
            .where_eq("smoker", 1u32)
            .resolve(&schema)
            .unwrap_err();
        assert!(matches!(e, SpecError::DuplicateAttribute(_)), "{e}");
    }

    #[test]
    fn large_seeds_round_trip_through_json() {
        // Seeds at or above 2^53 cannot ride a f64-backed JSON number; they
        // travel as decimal strings and parse back exactly — the path a
        // client takes when pinning a server-drawn seed.
        for seed in [u64::MAX, 1 << 53, (1 << 53) - 1, 7] {
            let spec = SynthSpec::new().with_seed(seed);
            let restored = SynthSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(restored.seed, Some(seed), "seed {seed}");
        }
        // Explicit string form is accepted directly too.
        let body = Json::parse(&format!("{{\"seed\": \"{}\"}}", u64::MAX)).unwrap();
        assert_eq!(SynthSpec::from_json(&body).unwrap().seed, Some(u64::MAX));
        assert!(SynthSpec::from_json(&Json::parse("{\"seed\": \"nope\"}").unwrap()).is_err());
    }

    #[test]
    fn index_keyed_evidence_round_trips_through_json() {
        // Evidence objects carry index refs as digit-string keys; they must
        // come back resolvable against the schema.
        let schema = schema();
        let spec = SynthSpec::new().where_eq(1usize, "south");
        let restored = SynthSpec::from_json(&spec.to_json()).unwrap();
        let resolved = restored.resolve(&schema).unwrap();
        assert_eq!(resolved.evidence, vec![(1, 1)]);
        // Out-of-range digit keys still fail loudly.
        let spec = SynthSpec::new().where_eq(9usize, 0u32);
        let restored = SynthSpec::from_json(&spec.to_json()).unwrap();
        assert!(matches!(restored.resolve(&schema), Err(SpecError::UnknownAttribute(_))));
    }

    #[test]
    fn cursor_round_trip_and_seed_consistency() {
        let cursor = Cursor { seed: 0xDEAD_BEEF, row: 4096, generation: None };
        assert_eq!(Cursor::decode(&cursor.encode()).unwrap(), cursor);
        assert!(Cursor::decode("garbage").is_err());
        assert!(Cursor::decode("pbc1-zz-0").is_err());
        assert!(Cursor::decode("pbc1-0-0-0").is_err());

        let schema = schema();
        let resolved = SynthSpec::new().with_cursor(cursor).resolve(&schema).unwrap();
        assert_eq!(resolved.seed, Some(0xDEAD_BEEF));
        assert_eq!(resolved.start_row, 4096);
        assert_eq!(resolved.generation, None);
        let e = SynthSpec::new().with_seed(1).with_cursor(cursor).resolve(&schema).unwrap_err();
        assert!(matches!(e, SpecError::BadCursor(_)), "{e}");
    }

    #[test]
    fn generation_cursors_round_trip_and_pin_the_resolved_spec() {
        let cursor = Cursor { seed: 5, row: 100, generation: Some(0xA7) };
        let token = cursor.encode();
        assert!(token.starts_with("pbc2-"), "{token}");
        assert_eq!(Cursor::decode(&token).unwrap(), cursor);
        // pbc2 demands the generation field; pbc1 forbids it.
        assert!(Cursor::decode("pbc2-0-0").is_err());
        assert!(Cursor::decode("pbc2-0-0-zz").is_err());
        assert!(Cursor::decode("pbc2-0-0-0-0").is_err());

        let schema = schema();
        let resolved = SynthSpec::new().with_cursor(cursor).resolve(&schema).unwrap();
        assert_eq!(resolved.seed, Some(5));
        assert_eq!(resolved.start_row, 100);
        assert_eq!(resolved.generation, Some(0xA7));
    }

    proptest::proptest! {
        /// encode → decode is the identity for every (seed, row) pair, and
        /// the token always carries the documented version prefix.
        #[test]
        fn prop_cursor_encode_decode_round_trips(
            seed in proptest::any::<u64>(),
            row in proptest::any::<u64>(),
            pinned in proptest::any::<bool>(),
            gen_value in proptest::any::<u64>(),
        ) {
            let generation = pinned.then_some(gen_value);
            let cursor = Cursor { seed, row, generation };
            let token = cursor.encode();
            let prefix = if generation.is_some() { "pbc2-" } else { "pbc1-" };
            proptest::prop_assert!(token.starts_with(prefix), "token `{token}`");
            proptest::prop_assert_eq!(Cursor::decode(&token).unwrap(), cursor);
        }

        /// Decoding is total: an arbitrary printable string either decodes
        /// or returns the typed error — it never panics.
        #[test]
        fn prop_cursor_decode_never_panics(token in "\\PC{0,48}") {
            match Cursor::decode(&token) {
                // Anything that decodes must re-encode to an equivalent
                // cursor (the token itself may be non-canonical, e.g.
                // unpadded hex).
                Ok(c) => proptest::prop_assert_eq!(Cursor::decode(&c.encode()).unwrap(), c),
                Err(e) => proptest::prop_assert!(matches!(e, SpecError::BadCursor(_)), "{e}"),
            }
        }

        /// Near-miss `pbc1-` tokens (wrong field count, non-hex digits,
        /// empty fields) are rejected with [`SpecError::BadCursor`]
        /// specifically — never another variant, never a panic.
        #[test]
        fn prop_malformed_pbc1_tokens_get_the_typed_error(body in "[0-9a-fxg-]{0,32}") {
            let token = format!("pbc1-{body}");
            let fields: Vec<&str> = body.split('-').collect();
            let well_formed = fields.len() == 2
                && !fields[0].is_empty()
                && !fields[1].is_empty()
                && fields.iter().all(|f| {
                    f.chars().all(|c| c.is_ascii_hexdigit()) && u64::from_str_radix(f, 16).is_ok()
                });
            match Cursor::decode(&token) {
                Ok(c) => {
                    proptest::prop_assert!(well_formed, "decoded malformed `{token}` to {c:?}");
                }
                Err(e) => {
                    proptest::prop_assert!(!well_formed, "rejected well-formed `{token}`: {e}");
                    proptest::prop_assert!(matches!(e, SpecError::BadCursor(_)), "{e}");
                }
            }
        }
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let body = Json::parse(r#"{"rows": 10, "frobnicate": 1}"#).unwrap();
        let e = SynthSpec::from_json(&body).unwrap_err();
        assert!(e.to_string().contains("frobnicate"), "{e}");
        let body = Json::parse(r#"{"attrs": ["a"], "x": 1}"#).unwrap();
        assert!(MarginalQuery::from_json(&body).is_err());
    }

    #[test]
    fn marginal_query_round_trip_and_resolution() {
        let schema = schema();
        let query = MarginalQuery::new().over("region").over("smoker");
        let restored = MarginalQuery::from_json(&query.to_json()).unwrap();
        assert_eq!(restored, query);
        assert_eq!(query.resolve(&schema).unwrap(), vec![1, 0]);
        assert!(matches!(MarginalQuery::new().resolve(&schema), Err(SpecError::EmptyAttrs)));
        assert!(MarginalQuery::new().over("region").over(1usize).resolve(&schema).is_err());
    }

    #[test]
    fn format_parsing_and_content_types() {
        assert_eq!(RowFormat::parse(None).unwrap(), RowFormat::Csv);
        assert_eq!(RowFormat::parse(Some("csv")).unwrap(), RowFormat::Csv);
        assert_eq!(RowFormat::parse(Some("jsonl")).unwrap(), RowFormat::Jsonl);
        assert_eq!(RowFormat::parse(Some("ndjson")).unwrap(), RowFormat::Jsonl);
        assert!(RowFormat::parse(Some("xml")).is_err());
        assert_eq!(RowFormat::Csv.content_type(), "text/csv");
        assert_eq!(RowFormat::Jsonl.content_type(), "application/x-ndjson");
    }

    #[test]
    fn projected_rendering() {
        let schema = schema();
        assert_eq!(RowFormat::Csv.header(&schema, None), "smoker,region,age\n");
        assert_eq!(RowFormat::Csv.header(&schema, Some(&[1, 0])), "region,smoker\n");
        // Projected tuples carry projection-width columns in yield order.
        let out = RowFormat::Csv.render(&schema, Some(&[1, 0]), &[vec![2, 1]]);
        assert_eq!(out, "west,v1\n");
        let out = RowFormat::Jsonl.render(&schema, Some(&[1]), &[vec![0]]);
        assert_eq!(out, "{\"region\":\"north\"}\n");
    }
}
