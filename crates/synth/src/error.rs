//! Error type of the synthesizer layer.

use std::fmt;

/// Errors surfaced by [`crate::Synthesizer::fit`].
#[derive(Debug)]
pub enum SynthError {
    /// Bad parameters or data shape for the chosen method.
    InvalidConfig(String),
    /// A core PrivBayes phase failed.
    Core(privbayes::PrivBayesError),
    /// The fitted model failed artifact validation (indicates a bug in the
    /// artifact construction, not user error).
    Model(privbayes_model::ModelError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SynthError::Core(e) => write!(f, "{e}"),
            SynthError::Model(e) => write!(f, "artifact: {e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::InvalidConfig(_) => None,
            SynthError::Core(e) => Some(e),
            SynthError::Model(e) => Some(e),
        }
    }
}

impl From<privbayes::PrivBayesError> for SynthError {
    fn from(e: privbayes::PrivBayesError) -> Self {
        SynthError::Core(e)
    }
}

impl From<privbayes_model::ModelError> for SynthError {
    fn from(e: privbayes_model::ModelError) -> Self {
        SynthError::Model(e)
    }
}
