//! The [`Synthesizer`] implementations, one per [`Method`].
//!
//! Every fit follows the same shape: build one
//! [`CountEngine`](privbayes_marginals::CountEngine) over the data, run the
//! method's private mechanism with all exact marginals drawn through the
//! engine, post-process the release into a Bayesian-network model, and wrap
//! it in a validated [`ReleasedModel`]. The post-processing constructions
//! (the MWEM Markov factorisation, the pairwise chain models) touch only the
//! already-released noisy quantities, so they cost no extra privacy budget.

use privbayes::conditionals::{
    conditional_from_joint, noisy_conditionals_consistent_engine,
    noisy_conditionals_general_engine, Conditional, NoisyModel,
};
use privbayes::greedy::{
    greedy_bayes_adaptive_engine, greedy_bayes_fixed_k_engine, GreedySettings,
};
use privbayes::network::{ApPair, BayesianNetwork};
use privbayes::ScoreKind;
use privbayes_baselines::{geometric_marginals, laplace_marginals, mwem_fit};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::{Dataset, Schema};
use privbayes_dp::budget::BudgetSplit;
use privbayes_marginals::{
    AlphaWayWorkload, ContingencyTable, CountEngine, EngineStats, MarginalSource,
};
use privbayes_model::{ModelMetadata, ReleasedModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

pub use privbayes_baselines::MwemOptions;

use crate::{FitSettings, FittedArtifact, Method, SynthError, Synthesizer};

/// The implementation behind [`Method::synthesizer`].
pub(crate) fn synthesizer(method: Method) -> Box<dyn Synthesizer> {
    match method {
        Method::PrivBayes => Box::new(PrivBayesAdaptive),
        Method::PrivBayesK => Box::new(PrivBayesFixedK),
        Method::Mwem => Box::new(MwemMethod),
        Method::Laplace => Box::new(PairwiseMethod { geometric: false }),
        Method::Geometric => Box::new(PairwiseMethod { geometric: true }),
        Method::Uniform => Box::new(UniformMethod),
    }
}

/// Shared validation: data shape and (for budget-spending methods) ε.
fn validate(n: usize, d: usize, epsilon: f64, spends: bool) -> Result<(), SynthError> {
    if n == 0 {
        return Err(SynthError::InvalidConfig("empty dataset".into()));
    }
    if d < 2 {
        return Err(SynthError::InvalidConfig("need at least two attributes".into()));
    }
    if spends && !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err(SynthError::InvalidConfig(format!("epsilon must be positive, got {epsilon}")));
    }
    Ok(())
}

/// Provenance of one fit, consumed by [`release`].
struct Provenance<'a> {
    method: Method,
    epsilon_spent: f64,
    stats: EngineStats,
    score: &'a str,
    encoding: &'a str,
}

/// Wraps a fitted [`NoisyModel`] in a validated release artifact.
fn release(
    schema: &Schema,
    n: usize,
    model: NoisyModel,
    settings: &FitSettings,
    provenance: Provenance,
) -> Result<FittedArtifact, SynthError> {
    let artifact = ReleasedModel::new(
        ModelMetadata {
            method: provenance.method.name().to_string(),
            epsilon: provenance.epsilon_spent,
            beta: settings.beta,
            theta: settings.theta,
            score: provenance.score.to_string(),
            encoding: provenance.encoding.to_string(),
            source_rows: n,
            comment: settings.comment.clone(),
        },
        schema.clone(),
        model,
    )?;
    Ok(FittedArtifact {
        method: provenance.method,
        artifact,
        stats: provenance.stats,
        epsilon_spent: provenance.epsilon_spent,
    })
}

/// `privbayes`: Algorithm 4 structure learning + Algorithm 3 distribution
/// learning over one shared engine — the same fit the core pipeline runs,
/// minus the sampling phase (the artifact samples on demand).
struct PrivBayesAdaptive;

impl Synthesizer for PrivBayesAdaptive {
    fn method(&self) -> Method {
        Method::PrivBayes
    }

    fn fit_with_engine(
        &self,
        engine: &CountEngine,
        epsilon: f64,
        seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        validate(engine.n(), engine.schema().len(), epsilon, true)?;
        let use_taxonomy = match settings.encoding {
            EncodingKind::Vanilla => false,
            EncodingKind::Hierarchical => true,
            other => {
                return Err(SynthError::InvalidConfig(format!(
                    "the release artifact needs the model over the original schema; \
                     encoding `{}` is not supported (use vanilla or hierarchical)",
                    other.name()
                )))
            }
        };
        if !(settings.theta > 0.0 && settings.theta.is_finite()) {
            return Err(SynthError::InvalidConfig(format!(
                "theta must be positive, got {}",
                settings.theta
            )));
        }
        let split = BudgetSplit::new(settings.beta)
            .map_err(|e| SynthError::InvalidConfig(e.to_string()))?;
        let (eps1, eps2) = split.split(epsilon);
        let greedy = GreedySettings {
            score: ScoreKind::R,
            epsilon1: Some(eps1),
            max_degree: settings.max_degree,
            threads: settings.threads,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let score_started = Instant::now();
        let network = greedy_bayes_adaptive_engine(
            engine,
            settings.theta,
            eps2,
            use_taxonomy,
            &greedy,
            &mut rng,
        )?;
        let score_micros = u64::try_from(score_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let model = if settings.consistency_rounds > 0 {
            noisy_conditionals_consistent_engine(
                engine,
                &network,
                Some(eps2),
                settings.consistency_rounds,
                &mut rng,
            )?
        } else {
            noisy_conditionals_general_engine(engine, &network, Some(eps2), &mut rng)?
        };
        let mut stats = engine.stats();
        stats.score_micros = score_micros;
        release(
            engine.schema(),
            engine.n(),
            model,
            settings,
            Provenance {
                method: self.method(),
                epsilon_spent: epsilon,
                stats,
                score: ScoreKind::R.name(),
                encoding: settings.encoding.name(),
            },
        )
    }
}

/// `privbayes-k`: Algorithm 2's fixed-degree structure search over the
/// vanilla domain (score `R`, which supports general domains) with
/// Algorithm 3's distribution learning.
struct PrivBayesFixedK;

impl Synthesizer for PrivBayesFixedK {
    fn method(&self) -> Method {
        Method::PrivBayesK
    }

    fn fit_with_engine(
        &self,
        engine: &CountEngine,
        epsilon: f64,
        seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        validate(engine.n(), engine.schema().len(), epsilon, true)?;
        // Algorithm 2 enumerates raw-attribute parent sets: the fixed-k
        // method is vanilla-domain only, and says so rather than silently
        // ignoring a requested encoding.
        if settings.encoding != EncodingKind::Vanilla {
            return Err(SynthError::InvalidConfig(format!(
                "privbayes-k runs over the vanilla domain; encoding `{}` is not supported",
                settings.encoding.name()
            )));
        }
        let split = BudgetSplit::new(settings.beta)
            .map_err(|e| SynthError::InvalidConfig(e.to_string()))?;
        let (eps1, eps2) = split.split(epsilon);
        let greedy = GreedySettings {
            score: ScoreKind::R,
            epsilon1: Some(eps1),
            max_degree: settings.max_degree,
            threads: settings.threads,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let score_started = Instant::now();
        let network = greedy_bayes_fixed_k_engine(engine, settings.fixed_k, &greedy, &mut rng)?;
        let score_micros = u64::try_from(score_started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let model = if settings.consistency_rounds > 0 {
            noisy_conditionals_consistent_engine(
                engine,
                &network,
                Some(eps2),
                settings.consistency_rounds,
                &mut rng,
            )?
        } else {
            noisy_conditionals_general_engine(engine, &network, Some(eps2), &mut rng)?
        };
        let mut stats = engine.stats();
        stats.score_micros = score_micros;
        release(
            engine.schema(),
            engine.n(),
            model,
            settings,
            Provenance {
                method: self.method(),
                epsilon_spent: epsilon,
                stats,
                score: ScoreKind::R.name(),
                encoding: EncodingKind::Vanilla.name(),
            },
        )
    }
}

/// `mwem`: the MWEM loop over the full domain, released as the order-`k`
/// Markov factorisation of the final weights (`k = settings.max_degree`).
///
/// The factorisation is pure post-processing: node `i`'s conditional
/// `Pr[Xᵢ | Xᵢ₋ₖ..Xᵢ₋₁]` is a projection of the released weight vector, so
/// the artifact's privacy guarantee is exactly MWEM's. With
/// `k ≥ d − 1` the factorisation is exact and the artifact samples the MWEM
/// distribution itself.
struct MwemMethod;

impl Synthesizer for MwemMethod {
    fn method(&self) -> Method {
        Method::Mwem
    }

    fn fit_with_engine(
        &self,
        engine: &CountEngine,
        epsilon: f64,
        seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        let schema = engine.schema();
        validate(engine.n(), schema.len(), epsilon, true)?;
        let dims = schema.domain_sizes();
        let cells: usize = dims.iter().product();
        if cells > privbayes_baselines::mwem::MAX_CELLS {
            return Err(SynthError::InvalidConfig(format!(
                "domain has {cells} cells; MWEM materialises the full domain and is capped at {}",
                privbayes_baselines::mwem::MAX_CELLS
            )));
        }
        if settings.mwem.iterations == 0 {
            return Err(SynthError::InvalidConfig("mwem needs at least one round".into()));
        }
        let d = schema.len();
        let alpha = settings.alpha.clamp(1, d);
        let workload = AlphaWayWorkload::new(d, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let fit = mwem_fit(engine, &workload, epsilon, settings.mwem, &mut rng);

        // Order-k Markov factorisation of the final weights.
        let order = settings.max_degree.max(1);
        let mut pairs = Vec::with_capacity(d);
        let mut conditionals = Vec::with_capacity(d);
        for child in 0..d {
            let lo = child.saturating_sub(order);
            let subset: Vec<usize> = (lo..=child).collect();
            let joint = fit.marginal(&subset);
            pairs.push(ApPair::new(child, subset[..subset.len() - 1].to_vec()));
            conditionals.push(conditional_from_joint(&joint, child));
        }
        let network = BayesianNetwork::new(pairs, schema)?;
        let stats = MarginalSource::stats(engine);
        release(
            schema,
            engine.n(),
            NoisyModel { network, conditionals },
            settings,
            Provenance {
                method: self.method(),
                epsilon_spent: epsilon,
                stats,
                score: "-",
                encoding: EncodingKind::Vanilla.name(),
            },
        )
    }
}

/// `laplace` / `geometric`: release every pairwise marginal with the
/// respective mechanism, then assemble a chain model `Pr[X₀] ·
/// Πᵢ Pr[Xᵢ | Xᵢ₋₁]` from the consecutive released pairs — pure
/// post-processing of the noisy release.
struct PairwiseMethod {
    geometric: bool,
}

impl Synthesizer for PairwiseMethod {
    fn method(&self) -> Method {
        if self.geometric {
            Method::Geometric
        } else {
            Method::Laplace
        }
    }

    fn fit_with_engine(
        &self,
        engine: &CountEngine,
        epsilon: f64,
        seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        let schema = engine.schema();
        validate(engine.n(), schema.len(), epsilon, true)?;
        let d = schema.len();
        let workload = AlphaWayWorkload::new(d, 2.min(d));
        let mut rng = StdRng::seed_from_u64(seed);
        let tables = if self.geometric {
            geometric_marginals(engine, &workload, epsilon, &mut rng)
        } else {
            laplace_marginals(engine, &workload, epsilon, &mut rng)
        };
        let model = chain_from_pairs(schema, &workload, &tables)?;
        let stats = engine.stats();
        release(
            schema,
            engine.n(),
            model,
            settings,
            Provenance {
                method: self.method(),
                epsilon_spent: epsilon,
                stats,
                score: "-",
                encoding: EncodingKind::Vanilla.name(),
            },
        )
    }
}

/// Builds the chain model from a released α = 2 workload: the root marginal
/// is the projection of the released (0,1) pair, and each later attribute is
/// conditioned on its predecessor through the released (i−1, i) pair.
fn chain_from_pairs(
    schema: &Schema,
    workload: &AlphaWayWorkload,
    tables: &[ContingencyTable],
) -> Result<NoisyModel, SynthError> {
    let d = schema.len();
    let pair_index =
        |a: usize, b: usize| {
            workload.subsets().iter().position(|s| s == &[a, b]).ok_or_else(|| {
                SynthError::InvalidConfig(format!("workload lacks the ({a},{b}) pair"))
            })
        };
    let mut pairs = Vec::with_capacity(d);
    let mut conditionals = Vec::with_capacity(d);
    // Root: Pr[X₀] from the released (0,1) marginal.
    let root = tables[pair_index(0, 1)?].project(&[0]);
    pairs.push(ApPair::new(0, vec![]));
    conditionals.push(conditional_from_joint(&root, 0));
    for child in 1..d {
        let table = &tables[pair_index(child - 1, child)?];
        pairs.push(ApPair::new(child, vec![child - 1]));
        conditionals.push(conditional_from_joint(table, child));
    }
    let network = BayesianNetwork::new(pairs, schema)?;
    Ok(NoisyModel { network, conditionals })
}

/// `uniform`: every attribute independent and uniform. Touches no data, so
/// it spends no budget and reports zero engine stats.
struct UniformMethod;

impl UniformMethod {
    fn fit_from_shape(
        &self,
        schema: &Schema,
        n: usize,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        validate(n, schema.len(), 0.0, false)?;
        let d = schema.len();
        let mut pairs = Vec::with_capacity(d);
        let mut conditionals = Vec::with_capacity(d);
        for child in 0..d {
            let dim = schema.attribute(child).domain_size();
            pairs.push(ApPair::new(child, vec![]));
            conditionals.push(Conditional {
                child,
                parents: vec![],
                parent_dims: vec![],
                child_dim: dim,
                probs: vec![1.0 / dim as f64; dim],
            });
        }
        let network = BayesianNetwork::new(pairs, schema)?;
        release(
            schema,
            n,
            NoisyModel { network, conditionals },
            settings,
            Provenance {
                method: Method::Uniform,
                epsilon_spent: 0.0,
                stats: EngineStats::default(),
                score: "-",
                encoding: EncodingKind::Vanilla.name(),
            },
        )
    }
}

impl Synthesizer for UniformMethod {
    fn method(&self) -> Method {
        Method::Uniform
    }

    // Overridden (instead of the engine-building default) because uniform
    // touches no data: it needs only the schema and row count.
    fn fit(
        &self,
        data: &Dataset,
        _epsilon: f64,
        _seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        self.fit_from_shape(data.schema(), data.n(), settings)
    }

    fn fit_with_engine(
        &self,
        engine: &CountEngine,
        _epsilon: f64,
        _seed: u64,
        settings: &FitSettings,
    ) -> Result<FittedArtifact, SynthError> {
        self.fit_from_shape(engine.schema(), engine.n(), settings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::Attribute;
    use privbayes_marginals::Axis;
    use rand::RngExt;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("b", 3).unwrap(),
            Attribute::binary("c"),
            Attribute::binary("d"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                vec![a, a + rng.random_range(0..2u32), a, rng.random_range(0..2u32)]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn every_method_fits_and_samples() {
        let data = dataset(600, 1);
        for method in Method::ALL {
            let fitted = fit(method, &data, 1.0, 7).unwrap_or_else(|e| panic!("{method}: {e}"));
            assert_eq!(fitted.artifact.metadata.method, method.name(), "{method}");
            let mut rng = StdRng::seed_from_u64(9);
            let sample = fitted.artifact.sample(128, &mut rng).unwrap();
            assert_eq!(sample.n(), 128, "{method}");
            assert_eq!(sample.d(), data.d(), "{method}");
        }
    }

    fn fit(
        method: Method,
        data: &Dataset,
        eps: f64,
        seed: u64,
    ) -> Result<FittedArtifact, SynthError> {
        crate::fit_method(method, data, eps, seed, &FitSettings::default())
    }

    #[test]
    fn fits_are_deterministic_in_the_seed() {
        let data = dataset(400, 2);
        for method in Method::ALL {
            let a = fit(method, &data, 0.8, 11).unwrap();
            let b = fit(method, &data, 0.8, 11).unwrap();
            assert_eq!(
                a.artifact.to_json_string().unwrap(),
                b.artifact.to_json_string().unwrap(),
                "{method} must be deterministic"
            );
        }
    }

    #[test]
    fn artifacts_round_trip_through_json() {
        let data = dataset(300, 3);
        for method in Method::ALL {
            let fitted = fit(method, &data, 1.0, 5).unwrap();
            let text = fitted.artifact.to_json_string().unwrap();
            let back = ReleasedModel::from_json_string(&text).unwrap();
            assert_eq!(back, fitted.artifact, "{method}");
            assert_eq!(back.metadata.method, method.name());
        }
    }

    #[test]
    fn uniform_spends_nothing_and_is_uniform() {
        let data = dataset(100, 4);
        let fitted = fit(Method::Uniform, &data, 5.0, 1).unwrap();
        assert_eq!(fitted.epsilon_spent, 0.0);
        assert_eq!(fitted.artifact.metadata.epsilon, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let sample = fitted.artifact.sample(4000, &mut rng).unwrap();
        // Attribute b has 3 levels; uniform sampling puts ~1/3 in each.
        let count1 = sample.column(1).iter().filter(|&&v| v == 1).count() as f64;
        assert!((count1 / 4000.0 - 1.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn mwem_exact_factorisation_preserves_weights() {
        // With order ≥ d − 1 the Markov factorisation is exact: the artifact
        // samples the MWEM distribution itself. Compare a projected marginal
        // of the weights against the sampled frequencies.
        let data = dataset(800, 5);
        let settings = FitSettings { max_degree: data.d() - 1, ..FitSettings::default() };
        let engine = CountEngine::new(&data);
        let workload = AlphaWayWorkload::new(data.d(), 2);
        let mut rng = StdRng::seed_from_u64(21);
        let weights = mwem_fit(&engine, &workload, 20.0, MwemOptions::default(), &mut rng);
        let fitted = crate::fit_method(Method::Mwem, &data, 20.0, 21, &settings).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let sample = fitted.artifact.sample(60_000, &mut rng).unwrap();
        let sampled = CountEngine::new(&sample).joint_table(&[Axis::raw(0), Axis::raw(1)]);
        let expected = weights.marginal(&[0, 1]);
        for (s, e) in sampled.values().iter().zip(expected.values()) {
            assert!((s - e).abs() < 0.02, "sampled {s} vs weights {e}");
        }
    }

    #[test]
    fn high_budget_chain_tracks_pairwise_structure() {
        // a and c are perfectly correlated in the data and adjacent in the
        // chain order (b sits between them, but b is a + noise, so the chain
        // still carries most of the signal at huge ε).
        let data = dataset(2000, 6);
        let fitted = fit(Method::Laplace, &data, 1e6, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let sample = fitted.artifact.sample(20_000, &mut rng).unwrap();
        let joint = CountEngine::new(&sample).joint_table(&[Axis::raw(0), Axis::raw(1)]);
        let truth = CountEngine::new(&data).joint_table(&[Axis::raw(0), Axis::raw(1)]);
        let tvd = privbayes_marginals::total_variation(joint.values(), truth.values());
        assert!(tvd < 0.05, "chain (0,1) marginal should be near-exact at huge ε, tvd {tvd}");
    }

    #[test]
    fn privbayes_methods_validate_the_encoding() {
        let data = dataset(200, 9);
        for (method, bad) in [
            (Method::PrivBayes, EncodingKind::Binary),
            (Method::PrivBayes, EncodingKind::Gray),
            (Method::PrivBayesK, EncodingKind::Hierarchical),
            (Method::PrivBayesK, EncodingKind::Binary),
        ] {
            let settings = FitSettings { encoding: bad, ..FitSettings::default() };
            let e = crate::fit_method(method, &data, 1.0, 1, &settings).unwrap_err();
            assert!(e.to_string().contains("encoding"), "{method} must reject {bad:?} loudly: {e}");
        }
    }

    #[test]
    fn privbayes_k_honours_consistency_rounds() {
        let data = dataset(400, 10);
        let with = FitSettings { consistency_rounds: 2, ..FitSettings::default() };
        let a = crate::fit_method(Method::PrivBayesK, &data, 1.0, 4, &with).unwrap();
        let b =
            crate::fit_method(Method::PrivBayesK, &data, 1.0, 4, &FitSettings::default()).unwrap();
        // Same network (structure learning precedes the conditionals and the
        // RNG stream is shared), different reconciled conditionals.
        assert_eq!(a.artifact.model.network, b.artifact.model.network);
        assert_ne!(a.artifact.model.conditionals, b.artifact.model.conditionals);
    }

    #[test]
    fn rejects_bad_inputs() {
        let data = dataset(50, 7);
        for method in [Method::PrivBayes, Method::Mwem, Method::Laplace] {
            assert!(fit(method, &data, 0.0, 1).is_err(), "{method} must reject ε = 0");
            assert!(fit(method, &data, -1.0, 1).is_err(), "{method} must reject ε < 0");
        }
        let tiny = Dataset::from_rows(
            Schema::new(vec![Attribute::binary("only")]).unwrap(),
            &[vec![0], vec![1]],
        )
        .unwrap();
        for method in Method::ALL {
            assert!(fit(method, &tiny, 1.0, 1).is_err(), "{method} must reject d = 1");
        }
    }

    #[test]
    fn engine_stats_are_populated_for_engine_backed_methods() {
        let data = dataset(400, 8);
        let fitted = fit(Method::Mwem, &data, 1.0, 2).unwrap();
        let stats = fitted.stats;
        assert!(stats.scans > 0, "mwem counts at least the full joint");
        assert!(
            stats.projections > 0,
            "workload truths must be served by projection, got {stats:?}"
        );
        let uniform = fit(Method::Uniform, &data, 1.0, 2).unwrap();
        assert_eq!(uniform.stats, EngineStats::default());
    }
}
