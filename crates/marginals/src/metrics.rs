//! Accuracy metrics: total-variation distance and workload averages (§6.1).

use privbayes_data::Dataset;

use crate::query::AlphaWayWorkload;
use crate::table::{Axis, ContingencyTable};

/// Total-variation distance between two distributions: half the L1 distance.
///
/// The inputs need not be normalised (noisy marginals may not be); the metric
/// is computed on the raw vectors exactly as the paper does after its
/// consistency step.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// L1 distance between two distributions.
///
/// # Panics
/// Panics if lengths differ.
#[must_use]
pub fn l1_distance(p: &[f64], q: &[f64]) -> f64 {
    2.0 * total_variation(p, q)
}

/// Average total-variation distance over all α-way marginals between the
/// true dataset and a synthetic dataset — the paper's count-query error
/// metric ("average variation distance").
#[must_use]
pub fn average_workload_tvd(truth: &Dataset, synthetic: &Dataset, alpha: usize) -> f64 {
    let workload = AlphaWayWorkload::new(truth.d(), alpha);
    average_workload_tvd_with(truth, synthetic, &workload)
}

/// As [`average_workload_tvd`], with an explicit workload.
///
/// # Panics
/// Panics if schemas of the two datasets have different domain sizes.
#[must_use]
pub fn average_workload_tvd_with(
    truth: &Dataset,
    synthetic: &Dataset,
    workload: &AlphaWayWorkload,
) -> f64 {
    assert_eq!(
        truth.schema().domain_sizes(),
        synthetic.schema().domain_sizes(),
        "datasets must share domains"
    );
    let mut acc = 0.0;
    for subset in workload.subsets() {
        let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
        let t = ContingencyTable::from_dataset(truth, &axes);
        let s = ContingencyTable::from_dataset(synthetic, &axes);
        acc += total_variation(t.values(), s.values());
    }
    acc / workload.len() as f64
}

/// Average TVD between true marginals and a caller-supplied set of noisy
/// marginal tables (one per workload subset, same order) — used by baselines
/// that release marginals directly rather than synthetic data.
///
/// # Panics
/// Panics if `noisy.len()` differs from the workload size or a table's shape
/// does not match its subset.
#[must_use]
pub fn average_workload_tvd_tables(
    truth: &Dataset,
    noisy: &[ContingencyTable],
    workload: &AlphaWayWorkload,
) -> f64 {
    assert_eq!(noisy.len(), workload.len(), "one table per workload subset required");
    let mut acc = 0.0;
    for (subset, table) in workload.subsets().iter().zip(noisy) {
        let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
        let t = ContingencyTable::from_dataset(truth, &axes);
        assert_eq!(t.dims(), table.dims(), "noisy table shape mismatch for {subset:?}");
        acc += total_variation(t.values(), table.values());
    }
    acc / workload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema};
    use proptest::prelude::*;

    #[test]
    fn tvd_basic() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((total_variation(&[0.7, 0.3], &[0.5, 0.5]) - 0.2).abs() < 1e-12);
        assert!((l1_distance(&[0.7, 0.3], &[0.5, 0.5]) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tvd_length_mismatch() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }

    fn dataset(rows: &[[u32; 3]]) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = rows.iter().map(|r| r.to_vec()).collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn identical_datasets_have_zero_error() {
        let ds = dataset(&[[0, 0, 1], [1, 1, 0], [0, 1, 1], [1, 0, 0]]);
        assert_eq!(average_workload_tvd(&ds, &ds, 2), 0.0);
    }

    #[test]
    fn disjoint_datasets_have_error_one() {
        let a = dataset(&[[0, 0, 0], [0, 0, 0]]);
        let b = dataset(&[[1, 1, 1], [1, 1, 1]]);
        assert!((average_workload_tvd(&a, &b, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn workload_tables_variant_matches_dataset_variant() {
        let truth = dataset(&[[0, 0, 1], [1, 1, 0], [0, 1, 1], [1, 0, 0]]);
        let synth = dataset(&[[0, 0, 0], [1, 1, 1], [0, 1, 1], [1, 0, 0]]);
        let workload = AlphaWayWorkload::new(3, 2);
        let tables: Vec<ContingencyTable> = workload
            .subsets()
            .iter()
            .map(|s| {
                let axes: Vec<Axis> = s.iter().map(|&a| Axis::raw(a)).collect();
                ContingencyTable::from_dataset(&synth, &axes)
            })
            .collect();
        let via_tables = average_workload_tvd_tables(&truth, &tables, &workload);
        let via_dataset = average_workload_tvd_with(&truth, &synth, &workload);
        assert!((via_tables - via_dataset).abs() < 1e-12);
    }

    proptest! {
        /// TVD is a metric bounded by [0,1] for probability vectors.
        #[test]
        fn prop_tvd_bounds(
            p in proptest::collection::vec(0.0f64..1.0, 8..=8),
            q in proptest::collection::vec(0.0f64..1.0, 8..=8),
        ) {
            let norm = |v: Vec<f64>| {
                let s: f64 = v.iter().sum::<f64>().max(1e-12);
                v.into_iter().map(|x| x / s).collect::<Vec<_>>()
            };
            let (p, q) = (norm(p), norm(q));
            let d = total_variation(&p, &q);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
            // Symmetry and identity.
            prop_assert!((d - total_variation(&q, &p)).abs() < 1e-12);
            prop_assert!(total_variation(&p, &p) < 1e-12);
        }

        /// Triangle inequality.
        #[test]
        fn prop_tvd_triangle(
            p in proptest::collection::vec(0.0f64..1.0, 6..=6),
            q in proptest::collection::vec(0.0f64..1.0, 6..=6),
            r in proptest::collection::vec(0.0f64..1.0, 6..=6),
        ) {
            let d_pq = total_variation(&p, &q);
            let d_qr = total_variation(&q, &r);
            let d_pr = total_variation(&p, &r);
            prop_assert!(d_pr <= d_pq + d_qr + 1e-12);
        }
    }
}
