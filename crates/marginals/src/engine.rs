//! `CountEngine`: the shared joint-count engine behind network learning.
//!
//! GreedyBayes materialises `d·C(d+1, k+1)` candidate joints (§4.1); doing
//! that with a fresh row scan per candidate is the dominant cost of the whole
//! pipeline. The engine makes candidate joints cheap three ways:
//!
//! 1. **Radix-coded columns.** Every requested (attribute, level) axis is
//!    encoded once into a dense `u32` code column (level 0 borrows the
//!    dataset column; generalised levels are materialised lazily through the
//!    taxonomy's level lookup). A joint is then a single fused radix pass:
//!    `cell = Σ code·stride` per row, no per-row `Vec` indirection.
//! 2. **Bit-packed popcount fast path.** When every requested axis is a raw
//!    binary attribute the joint comes from AND + popcount chains over
//!    bit-packed columns plus a Möbius transform — the strategy that makes
//!    full-size NLTCS/ACS learning tractable. Both strategies sit behind the
//!    same [`CountBackend`] trait, so callers have one entry point.
//! 3. **Joint memoisation.** Materialised tables are cached keyed by the
//!    *sorted* axis set. A request that is a subset of an already-counted
//!    joint is answered by integer projection instead of a row scan — in
//!    round r+1 of greedy learning almost every candidate was already
//!    counted in round r.
//!
//! # Determinism contract
//!
//! All strategies produce **identical integer counts** (counting is exact),
//! and probabilities are always derived as `count · (1/n)` — the same
//! expression [`ContingencyTable::from_dataset`] uses. A joint served from
//! the cache, derived by projection, counted by popcount, or counted by the
//! radix pass is therefore **bit-identical**, regardless of which threads
//! populated the cache in which order. This is what lets parallel candidate
//! scoring reproduce the sequential scores exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use privbayes_data::{Dataset, Schema};

use crate::table::{Axis, ContingencyTable};

/// A provider of exact joint distributions over attribute subsets — the
/// abstraction every marginal-consuming algorithm (GreedyBayes, the noisy
/// conditionals, the §6 baselines, the relational fact model) is written
/// against, so none of them re-scans the dataset's rows itself.
///
/// The canonical implementation is [`CountEngine`], which memoises integer
/// count tables and answers subset requests by exact projection. The
/// contract every implementation must honour:
///
/// * [`joint_table`](MarginalSource::joint_table) is **bit-identical** to
///   [`ContingencyTable::from_dataset`] with the same axes on the underlying
///   data — same counts, same `count · (1/n)` scaling expression — no matter
///   how the answer was produced (fresh count, cache hit, projection).
/// * Requests are pure: a `MarginalSource` consumes no randomness and its
///   answers do not depend on request order or thread interleaving.
pub trait MarginalSource: Sync {
    /// Number of rows in the underlying dataset.
    fn n(&self) -> usize;

    /// Schema of the underlying dataset.
    fn schema(&self) -> &Schema;

    /// The joint distribution over `axes` (probability scale), laid out like
    /// [`ContingencyTable::from_dataset`]: row-major, last axis fastest.
    fn joint_table(&self, axes: &[Axis]) -> ContingencyTable;

    /// Whether a table of `cells` cells would be retained by this source's
    /// cache (callers use this to decide whether pre-warming a superset
    /// joint pays off). Sources without a cache return `false`.
    fn retains(&self, _cells: usize) -> bool {
        false
    }

    /// Cache effectiveness counters (zero for sources without a cache).
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }
}

/// A dense joint **count** table (row-major, last axis fastest) — the integer
/// twin of [`ContingencyTable`]. Counts are exact, so any two ways of
/// computing the same table agree bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountTable {
    axes: Vec<Axis>,
    dims: Vec<usize>,
    counts: Vec<u64>,
}

impl CountTable {
    /// Builds a table from raw parts.
    ///
    /// # Panics
    /// Panics if `counts.len()` does not equal the product of `dims`, or the
    /// lengths of `axes` and `dims` differ.
    #[must_use]
    pub fn from_parts(axes: Vec<Axis>, dims: Vec<usize>, counts: Vec<u64>) -> Self {
        assert_eq!(axes.len(), dims.len(), "axes/dims length mismatch");
        let cells: usize = dims.iter().product();
        assert_eq!(counts.len(), cells, "counts length must match dims product");
        Self { axes, dims, counts }
    }

    /// Axes of the table.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Per-axis domain sizes.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Flat cell counts (row-major, last axis fastest).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.counts.len()
    }

    /// Projects (sums out) onto the axes at positions `keep`, in the given
    /// order. Keeping every axis in a new order is a pure permutation.
    /// Integer summation is exact, so a projection equals a direct count.
    ///
    /// # Panics
    /// Panics if `keep` is empty, repeats a position, or indexes out of range.
    #[must_use]
    pub fn project(&self, keep: &[usize]) -> Self {
        assert!(!keep.is_empty(), "projection must keep at least one axis");
        for (i, &k) in keep.iter().enumerate() {
            assert!(k < self.axes.len(), "axis position {k} out of range");
            assert!(!keep[..i].contains(&k), "axis position {k} repeated");
        }
        let out_axes: Vec<Axis> = keep.iter().map(|&k| self.axes[k]).collect();
        let out_dims: Vec<usize> = keep.iter().map(|&k| self.dims[k]).collect();
        let out_cells: usize = out_dims.iter().product();
        let mut out = vec![0u64; out_cells];

        let mut in_strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            in_strides[i] = in_strides[i + 1] * self.dims[i + 1];
        }
        let mut out_strides = vec![1usize; keep.len()];
        for i in (0..keep.len().saturating_sub(1)).rev() {
            out_strides[i] = out_strides[i + 1] * out_dims[i + 1];
        }
        // Per input axis: the stride it contributes to the output (0 if summed out).
        let mut contrib = vec![0usize; self.dims.len()];
        for (o, &k) in keep.iter().enumerate() {
            contrib[k] = out_strides[o];
        }

        for (idx, &c) in self.counts.iter().enumerate() {
            let mut rem = idx;
            let mut out_idx = 0usize;
            for (i, &stride) in in_strides.iter().enumerate() {
                let coord = rem / stride;
                rem %= stride;
                out_idx += coord * contrib[i];
            }
            out[out_idx] += c;
        }
        Self { axes: out_axes, dims: out_dims, counts: out }
    }

    /// Writes the probability-scale cells (`count · (1/n)`) into `out`.
    /// This is bit-identical to [`ContingencyTable::from_dataset`] on the
    /// same axes — same counts, same scaling expression.
    pub fn probs_into(&self, n: usize, out: &mut Vec<f64>) {
        let scale = if n == 0 { 0.0 } else { 1.0 / n as f64 };
        out.clear();
        out.extend(self.counts.iter().map(|&c| c as f64 * scale));
    }

    /// The probability-scale [`ContingencyTable`] form of this count table.
    #[must_use]
    pub fn to_contingency(&self, n: usize) -> ContingencyTable {
        let mut values = Vec::new();
        self.probs_into(n, &mut values);
        ContingencyTable::from_parts(self.axes.clone(), self.dims.clone(), values)
    }
}

/// A strategy that can materialise integer joint counts straight from rows.
/// Both engine backends (radix scan, bit-packed popcount) implement this, so
/// the engine — and through it `greedy.rs` — has a single entry point.
pub trait CountBackend: Sync {
    /// Whether this backend can count the given axis set.
    fn supports(&self, axes: &[Axis]) -> bool;

    /// Materialises the joint counts of `axes` (last axis fastest).
    fn materialise(&self, axes: &[Axis]) -> CountTable;
}

/// The general-domain backend: one fused radix pass over pre-encoded dense
/// `u32` code columns. Owns its columns (cloned from the source dataset)
/// so a long-lived engine — e.g. one per ingesting tenant — does not
/// borrow the `Dataset` it was built from.
#[derive(Debug)]
struct RadixBackend {
    schema: Schema,
    /// Level-0 code columns, one per attribute.
    columns: Vec<Vec<u32>>,
    /// Lazily-encoded generalised columns, indexed `[attr][level - 1]`.
    generalised: Vec<Vec<OnceLock<Vec<u32>>>>,
    n: usize,
}

impl RadixBackend {
    fn new(schema: Schema, columns: Vec<Vec<u32>>, n: usize) -> Self {
        let generalised = schema
            .attributes()
            .iter()
            .map(|a| {
                let height = a.taxonomy().map_or(1, privbayes_data::TaxonomyTree::height);
                (1..height).map(|_| OnceLock::new()).collect()
            })
            .collect();
        Self { schema, columns, generalised, n }
    }

    /// The dense code column of an axis (encoded once, then shared).
    fn codes(&self, axis: Axis) -> &[u32] {
        if axis.level == 0 {
            return &self.columns[axis.attr];
        }
        self.generalised[axis.attr][axis.level - 1].get_or_init(|| {
            let lookup = self
                .schema
                .attribute(axis.attr)
                .taxonomy()
                .expect("validated by Axis::size")
                .level_lookup(axis.level);
            self.columns[axis.attr].iter().map(|&v| lookup[v as usize]).collect()
        })
    }

    /// Appends `delta_n` rows of level-0 code columns. Generalised columns
    /// that were already encoded are extended through the same taxonomy
    /// lookup they were built with, so `codes` stays consistent; ones never
    /// requested stay lazy.
    fn extend(&mut self, columns: &[Vec<u32>], delta_n: usize) {
        for (attr, levels) in self.generalised.iter_mut().enumerate() {
            for (li, slot) in levels.iter_mut().enumerate() {
                if let Some(col) = slot.get_mut() {
                    let lookup = self
                        .schema
                        .attribute(attr)
                        .taxonomy()
                        .expect("generalised column exists")
                        .level_lookup(li + 1);
                    col.extend(columns[attr].iter().map(|&v| lookup[v as usize]));
                }
            }
        }
        for (col, add) in self.columns.iter_mut().zip(columns) {
            col.extend_from_slice(add);
        }
        self.n += delta_n;
    }
}

impl CountBackend for RadixBackend {
    fn supports(&self, _axes: &[Axis]) -> bool {
        true
    }

    fn materialise(&self, axes: &[Axis]) -> CountTable {
        let schema = &self.schema;
        let dims: Vec<usize> = axes.iter().map(|a| a.size(schema)).collect();
        let cells: usize = dims.iter().product();
        let mut counts = vec![0u64; cells];

        let mut strides = vec![1usize; axes.len()];
        for i in (0..axes.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        let cols: Vec<(&[u32], usize)> =
            axes.iter().zip(&strides).map(|(&axis, &s)| (self.codes(axis), s)).collect();

        match cols.as_slice() {
            // Unrolled low arities: the k ≤ 3 cases cover almost every
            // candidate joint the greedy rounds request.
            [(a, _)] => {
                for &x in *a {
                    counts[x as usize] += 1;
                }
            }
            [(a, sa), (b, _)] => {
                for (&x, &y) in a.iter().zip(*b) {
                    counts[x as usize * sa + y as usize] += 1;
                }
            }
            [(a, sa), (b, sb), (c, _)] => {
                for ((&x, &y), &z) in a.iter().zip(*b).zip(*c) {
                    counts[x as usize * sa + y as usize * sb + z as usize] += 1;
                }
            }
            _ => {
                for row in 0..self.n {
                    let mut idx = 0usize;
                    for (col, stride) in &cols {
                        idx += col[row] as usize * stride;
                    }
                    counts[idx] += 1;
                }
            }
        }
        CountTable { axes: axes.to_vec(), dims, counts }
    }
}

/// Bit-packed columns of the binary attributes: joints over raw binary axes
/// come from AND + popcount chains instead of row scans.
#[derive(Debug)]
struct BitBackend {
    /// One bit mask per attribute (empty for non-binary attributes).
    cols: Vec<Vec<u64>>,
    n: usize,
}

impl BitBackend {
    /// Joints above this arity fall back to the radix pass (the subset
    /// lattice is exponential in the arity).
    const MAX_ARITY: usize = 16;

    fn new(schema: &Schema, columns: &[Vec<u32>], n: usize) -> Self {
        let words = n.div_ceil(64);
        let cols = columns
            .iter()
            .enumerate()
            .map(|(a, column)| {
                if !schema.attribute(a).is_binary() {
                    return Vec::new();
                }
                let mut mask = vec![0u64; words];
                for (row, &v) in column.iter().enumerate() {
                    if v == 1 {
                        mask[row / 64] |= 1 << (row % 64);
                    }
                }
                mask
            })
            .collect();
        Self { cols, n }
    }

    /// Appends `delta_n` rows to the bit masks (binary attributes only —
    /// `schema` decides, since an empty mask can also mean "no rows yet").
    fn extend(&mut self, schema: &Schema, columns: &[Vec<u32>], delta_n: usize) {
        let words = (self.n + delta_n).div_ceil(64);
        for (a, mask) in self.cols.iter_mut().enumerate() {
            if !schema.attribute(a).is_binary() {
                continue;
            }
            mask.resize(words, 0);
            for (i, &v) in columns[a].iter().enumerate() {
                if v == 1 {
                    let row = self.n + i;
                    mask[row / 64] |= 1 << (row % 64);
                }
            }
        }
        self.n += delta_n;
    }
}

impl CountBackend for BitBackend {
    fn supports(&self, axes: &[Axis]) -> bool {
        axes.len() <= Self::MAX_ARITY
            && axes.iter().all(|a| a.level == 0 && !self.cols[a.attr].is_empty())
    }

    /// Counts via the subset-AND lattice plus a Möbius transform from
    /// "all-ones" counts to exact cell counts; layout matches
    /// [`ContingencyTable::from_dataset`] with the same axes.
    fn materialise(&self, axes: &[Axis]) -> CountTable {
        let m = axes.len();
        let cells = 1usize << m;
        let mut counts = vec![0i64; cells];
        // AND products for subsets of size ≥ 2; singleton subsets borrow the
        // attribute column directly instead of cloning it.
        let mut scratch: Vec<Vec<u64>> = vec![Vec::new(); cells];

        // ones[s] = #rows where every attribute in s is 1. Bit p of `s`
        // corresponds to axes[m-1-p], so `s` doubles as the cell index of
        // the all-ones pattern restricted to s.
        counts[0] = self.n as i64;
        for s in 1..cells {
            let low = s.trailing_zeros() as usize;
            let rest = s & (s - 1);
            let col = &self.cols[axes[m - 1 - low].attr];
            if rest == 0 {
                counts[s] = col.iter().map(|w| i64::from(w.count_ones())).sum();
                continue;
            }
            let prev: &[u64] = if rest & (rest - 1) == 0 {
                // Singleton remainder: borrow its column.
                &self.cols[axes[m - 1 - rest.trailing_zeros() as usize].attr]
            } else {
                &scratch[rest]
            };
            let mut out = vec![0u64; col.len()];
            let mut c = 0i64;
            for ((o, &a), &b) in out.iter_mut().zip(prev).zip(col) {
                *o = a & b;
                c += i64::from(o.count_ones());
            }
            counts[s] = c;
            scratch[s] = out;
        }
        // Möbius: convert "attr unconstrained" to "attr = 0", bit by bit.
        for p in 0..m {
            let bit = 1usize << p;
            for s in 0..cells {
                if s & bit == 0 {
                    counts[s] -= counts[s | bit];
                }
            }
        }
        CountTable {
            axes: axes.to_vec(),
            dims: vec![2; m],
            counts: counts.into_iter().map(|c| c as u64).collect(),
        }
    }
}

/// Cache effectiveness and fit-phase cost counters (see
/// [`CountEngine::stats`]). The engine fills the cache counters,
/// `bytes_materialized`, and `scan_micros`; `score_micros` and
/// `alias_micros` are slots for the layers that own those phases (the
/// synthesizers time candidate scoring, serving layers time alias-table
/// compilation) so one struct carries the whole fit-phase picture. All
/// fields are integers with zero defaults, keeping the struct `Eq` and a
/// no-work fit equal to `EngineStats::default()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests answered from the cache without any computation.
    pub hits: usize,
    /// Requests answered by projecting a cached superset joint.
    pub projections: usize,
    /// Requests that required a fresh pass over the rows.
    pub scans: usize,
    /// Tables currently cached.
    pub cached_tables: usize,
    /// Bytes of count tables materialized by scans (8 bytes per cell).
    pub bytes_materialized: u64,
    /// Incremental batches folded in via [`CountEngine::append`] /
    /// [`CountEngine::merge`].
    pub appends: usize,
    /// Total rows delivered by those batches.
    pub rows_appended: u64,
    /// Wall time spent materializing scan tables, in microseconds.
    pub scan_micros: u64,
    /// Wall time of the candidate-scoring (structure learning) phase, in
    /// microseconds. Filled by the fitting layer, zero for methods without
    /// a scoring phase.
    pub score_micros: u64,
    /// Wall time compiling the released model's alias tables, in
    /// microseconds. Filled by whichever layer triggers compilation.
    pub alias_micros: u64,
}

/// A schema-tagged batch of encoded rows, ready to fold into a
/// [`CountEngine`] — the unit of incremental ingestion. Deltas combine
/// associatively ([`EngineDelta::merge`]), so per-shard batches can be
/// concatenated in any grouping before they reach the engine and the final
/// counts are identical.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineDelta {
    schema: Schema,
    columns: Vec<Vec<u32>>,
    n: usize,
}

impl EngineDelta {
    /// Captures a dataset's rows as a delta (columns are cloned; the
    /// dataset is not borrowed).
    #[must_use]
    pub fn from_dataset(data: &Dataset) -> Self {
        let columns = (0..data.d()).map(|a| data.column(a).to_vec()).collect();
        Self { schema: data.schema().clone(), columns, n: data.n() }
    }

    /// Concatenates `other` after this delta.
    ///
    /// # Panics
    /// Panics if the schemas differ.
    pub fn merge(&mut self, other: EngineDelta) {
        assert_eq!(self.schema, other.schema, "delta schemas must match");
        for (col, add) in self.columns.iter_mut().zip(&other.columns) {
            col.extend_from_slice(add);
        }
        self.n += other.n;
    }

    /// Rows carried by this delta.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Schema the rows are encoded against.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// The shared count engine: one per dataset, used by every greedy round (and
/// safe to share across scoring threads). Owns its encoded columns, so an
/// engine can outlive the `Dataset` it was built from and keep growing via
/// [`CountEngine::append`].
///
/// See the module docs for the caching and determinism contract.
#[derive(Debug)]
pub struct CountEngine {
    n: usize,
    radix: RadixBackend,
    bits: Option<BitBackend>,
    /// Canonical tables keyed by the axis set sorted by (attr, level).
    cache: RwLock<HashMap<Vec<Axis>, Arc<CountTable>>>,
    hits: AtomicUsize,
    projections: AtomicUsize,
    scans: AtomicUsize,
    bytes_materialized: AtomicU64,
    scan_nanos: AtomicU64,
    appends: usize,
    rows_appended: u64,
}

impl CountEngine {
    /// Builds an engine over `data` (columns are cloned — the engine does
    /// not borrow the dataset). The popcount backend is constructed when
    /// the schema has any binary attribute; generalised code columns are
    /// encoded lazily on first use.
    #[must_use]
    pub fn new(data: &Dataset) -> Self {
        Self::from_delta(EngineDelta::from_dataset(data))
    }

    /// Builds an engine directly from a delta's columns.
    #[must_use]
    pub fn from_delta(delta: EngineDelta) -> Self {
        let EngineDelta { schema, columns, n } = delta;
        let any_binary = schema.attributes().iter().any(privbayes_data::Attribute::is_binary);
        let bits = any_binary.then(|| BitBackend::new(&schema, &columns, n));
        Self {
            n,
            radix: RadixBackend::new(schema, columns, n),
            bits,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            projections: AtomicUsize::new(0),
            scans: AtomicUsize::new(0),
            bytes_materialized: AtomicU64::new(0),
            scan_nanos: AtomicU64::new(0),
            appends: 0,
            rows_appended: 0,
        }
    }

    /// Folds a batch of rows into the engine: every cached table is
    /// advanced by the batch's exact integer counts and the backends'
    /// columns grow in place, so subsequent requests are **bit-identical**
    /// to a cold engine over the concatenated data. (Counting is exact
    /// integer arithmetic and probabilities are always derived as
    /// `count · (1/n)`, so incremental addition commutes with scanning.)
    ///
    /// # Panics
    /// Panics if the batch's schema differs from the engine's.
    pub fn append(&mut self, batch: &Dataset) {
        self.merge(EngineDelta::from_dataset(batch));
    }

    /// As [`append`](Self::append), from an already-captured delta.
    ///
    /// # Panics
    /// Panics if the delta's schema differs from the engine's.
    pub fn merge(&mut self, delta: EngineDelta) {
        assert_eq!(self.radix.schema, delta.schema, "append schema must match the engine's");
        self.appends += 1;
        self.rows_appended += delta.n as u64;
        if delta.n == 0 {
            return;
        }
        // Advance every cached table by the delta's own counts before the
        // columns grow: a scratch backend over just the delta rows counts
        // each cached axis set, and exact integer addition folds it in.
        // `Arc::make_mut` clones a table another thread still holds, so an
        // in-flight reader keeps its pre-append snapshot.
        let scratch = RadixBackend::new(delta.schema, delta.columns, delta.n);
        let cache = self.cache.get_mut().expect("cache lock poisoned");
        for (key, table) in cache.iter_mut() {
            let add = scratch.materialise(key);
            let base = Arc::make_mut(table);
            for (c, &a) in base.counts.iter_mut().zip(add.counts()) {
                *c += a;
            }
        }
        let RadixBackend { columns, n: delta_n, .. } = scratch;
        if let Some(bits) = &mut self.bits {
            bits.extend(&self.radix.schema, &columns, delta_n);
        }
        self.radix.extend(&columns, delta_n);
        self.n += delta_n;
    }

    /// Number of rows in the underlying dataset.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Schema of the underlying dataset.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.radix.schema
    }

    /// Raw (level-0) code column of attribute `attr`, spanning every row
    /// ever appended. Lets callers that journal or re-materialise the
    /// backing data read it without keeping a second copy.
    ///
    /// # Panics
    /// Panics if `attr` is out of range.
    #[must_use]
    pub fn column(&self, attr: usize) -> &[u32] {
        &self.radix.columns[attr]
    }

    /// The joint distribution over `axes` (probability scale), laid out
    /// exactly like [`ContingencyTable::from_dataset`] with the same axes:
    /// row-major, last axis fastest.
    ///
    /// # Panics
    /// Panics if `axes` is empty, repeats an axis, or an axis is invalid for
    /// the schema.
    #[must_use]
    pub fn joint(&self, axes: &[Axis]) -> Vec<f64> {
        let mut out = Vec::new();
        self.joint_into(axes, &mut out);
        out
    }

    /// As [`joint`](Self::joint), but writes into a caller-owned buffer so a
    /// scoring loop can reuse one allocation across candidates.
    pub fn joint_into(&self, axes: &[Axis], out: &mut Vec<f64>) {
        self.joint_counts(axes).probs_into(self.n, out);
    }

    /// The integer count table over `axes`, in the requested axis order.
    ///
    /// # Panics
    /// As [`joint`](Self::joint).
    #[must_use]
    pub fn joint_counts(&self, axes: &[Axis]) -> Arc<CountTable> {
        assert!(!axes.is_empty(), "need at least one axis");
        let mut canonical: Vec<Axis> = axes.to_vec();
        canonical.sort_unstable_by_key(|a| (a.attr, a.level));
        canonical.windows(2).for_each(|w| assert!(w[0] != w[1], "axis repeated: {:?}", w[0]));

        let table = self.canonical_table(&canonical);
        if table.axes() == axes {
            return table;
        }
        // Reorder (pure permutation) into the requested axis order.
        let perm: Vec<usize> = axes
            .iter()
            .map(|ax| canonical.iter().position(|c| c == ax).expect("axis in canonical set"))
            .collect();
        Arc::new(table.project(&perm))
    }

    /// The probability-scale [`ContingencyTable`] over `axes` — a drop-in,
    /// bit-identical replacement for [`ContingencyTable::from_dataset`].
    ///
    /// # Panics
    /// As [`joint`](Self::joint).
    #[must_use]
    pub fn joint_table(&self, axes: &[Axis]) -> ContingencyTable {
        self.joint_counts(axes).to_contingency(self.n)
    }

    /// Cache effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            projections: self.projections.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            cached_tables: self.cache.read().expect("cache lock poisoned").len(),
            bytes_materialized: self.bytes_materialized.load(Ordering::Relaxed),
            appends: self.appends,
            rows_appended: self.rows_appended,
            scan_micros: self.scan_nanos.load(Ordering::Relaxed) / 1_000,
            score_micros: 0,
            alias_micros: 0,
        }
    }

    /// The canonical (sorted-axes) table: cache hit, projection from a cached
    /// superset, or fresh materialisation — all bit-identical by the
    /// determinism contract.
    fn canonical_table(&self, canonical: &[Axis]) -> Arc<CountTable> {
        // Fast path: exact hit, plus superset search under the same read lock.
        let from_superset = {
            let cache = self.cache.read().expect("cache lock poisoned");
            if let Some(hit) = cache.get(canonical) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(hit);
            }
            self.best_superset(&cache, canonical).map(|(key, positions)| {
                (Arc::clone(cache.get(&key).expect("key just found")), positions)
            })
        };

        let table = if let Some((superset, positions)) = from_superset {
            self.projections.fetch_add(1, Ordering::Relaxed);
            Arc::new(superset.project(&positions))
        } else {
            self.scans.fetch_add(1, Ordering::Relaxed);
            let backend: &dyn CountBackend = match &self.bits {
                Some(bits) if bits.supports(canonical) => bits,
                _ => &self.radix,
            };
            let started = std::time::Instant::now();
            let fresh = Arc::new(backend.materialise(canonical));
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.scan_nanos.fetch_add(nanos, Ordering::Relaxed);
            self.bytes_materialized.fetch_add(fresh.cell_count() as u64 * 8, Ordering::Relaxed);
            fresh
        };

        // Tables past the projection budget are also not worth *retaining*:
        // they are as expensive to hold as to recount, and an unbounded
        // cache would otherwise accumulate every distinct candidate joint
        // for the engine's lifetime.
        if table.cell_count() > self.cell_budget() {
            return table;
        }
        let mut cache = self.cache.write().expect("cache lock poisoned");
        // Another thread may have raced us to the same key; keep the first
        // insertion (both are bit-identical anyway).
        Arc::clone(cache.entry(canonical.to_vec()).or_insert(table))
    }

    /// Cell bound shared by caching and projection: a table past it costs
    /// more to hold or to project than the O(n·k) row scan it would save.
    fn cell_budget(&self) -> usize {
        self.n.max(1).saturating_mul(4)
    }

    /// Finds the cached superset with the fewest cells whose projection is
    /// cheaper than a fresh row scan. Returns the key and the positions of
    /// `canonical`'s axes within it.
    fn best_superset(
        &self,
        cache: &HashMap<Vec<Axis>, Arc<CountTable>>,
        canonical: &[Axis],
    ) -> Option<(Vec<Axis>, Vec<usize>)> {
        // A projection touches every superset cell; past this it is cheaper
        // to re-count the rows.
        let budget = self.cell_budget();
        let mut best: Option<(&Vec<Axis>, usize)> = None;
        for (key, table) in cache {
            if key.len() <= canonical.len() || table.cell_count() > budget {
                continue;
            }
            if !is_sorted_subset(canonical, key) {
                continue;
            }
            if best.is_none_or(|(_, cells)| table.cell_count() < cells) {
                best = Some((key, table.cell_count()));
            }
        }
        best.map(|(key, _)| {
            let positions = canonical
                .iter()
                .map(|ax| key.iter().position(|k| k == ax).expect("subset checked"))
                .collect();
            (key.clone(), positions)
        })
    }
}

impl MarginalSource for CountEngine {
    fn n(&self) -> usize {
        CountEngine::n(self)
    }

    fn schema(&self) -> &Schema {
        CountEngine::schema(self)
    }

    fn joint_table(&self, axes: &[Axis]) -> ContingencyTable {
        CountEngine::joint_table(self, axes)
    }

    fn retains(&self, cells: usize) -> bool {
        cells <= self.cell_budget()
    }

    fn stats(&self) -> EngineStats {
        CountEngine::stats(self)
    }
}

/// Whether sorted axis list `sub` is a subset of sorted axis list `sup`
/// (merge walk; both sorted by (attr, level)).
fn is_sorted_subset(sub: &[Axis], sup: &[Axis]) -> bool {
    let mut it = sup.iter();
    'outer: for a in sub {
        for b in it.by_ref() {
            if b == a {
                continue 'outer;
            }
            if (b.attr, b.level) > (a.attr, a.level) {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema, TaxonomyTree};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn mixed_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("b0"),
            Attribute::categorical("c4", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::binary("b1"),
            Attribute::categorical("c8", 8)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(8).unwrap())
                .unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let c = rng.random_range(0..4u32);
                vec![
                    u32::from(c >= 2),
                    c,
                    rng.random_range(0..2u32),
                    c * 2 + rng.random_range(0..2u32),
                ]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    fn binary_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("x0"),
            Attribute::binary("x1"),
            Attribute::binary("x2"),
            Attribute::binary("x3"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                vec![a, a ^ u32::from(rng.random_bool(0.1)), rng.random_range(0..2u32), a]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    fn assert_matches_from_dataset(data: &Dataset, engine: &CountEngine, axes: &[Axis]) {
        let fast = engine.joint(axes);
        let slow = ContingencyTable::from_dataset(data, axes);
        assert_eq!(fast.len(), slow.values().len(), "{axes:?}");
        for (i, (a, b)) in fast.iter().zip(slow.values()).enumerate() {
            assert!(a.to_bits() == b.to_bits(), "{axes:?} cell {i}: {a} vs {b}");
        }
    }

    #[test]
    fn engine_matches_contingency_table_on_mixed_schema() {
        let data = mixed_dataset(321, 1); // non-multiple of 64 rows
        let engine = CountEngine::new(&data);
        for axes in [
            vec![Axis::raw(0)],
            vec![Axis::raw(1)],
            vec![Axis::raw(3), Axis::raw(1)],
            vec![Axis::raw(1), Axis::raw(0), Axis::raw(2)],
            vec![Axis { attr: 1, level: 1 }, Axis::raw(0)],
            vec![Axis { attr: 3, level: 2 }, Axis { attr: 1, level: 1 }, Axis::raw(2)],
            vec![Axis::raw(0), Axis::raw(1), Axis::raw(2), Axis::raw(3)],
        ] {
            assert_matches_from_dataset(&data, &engine, &axes);
        }
    }

    #[test]
    fn bit_backend_matches_radix_and_from_dataset() {
        let data = binary_dataset(321, 2);
        let engine = CountEngine::new(&data);
        for axes in [
            vec![Axis::raw(0)],
            vec![Axis::raw(1), Axis::raw(0)],
            vec![Axis::raw(2), Axis::raw(3), Axis::raw(1)],
            vec![Axis::raw(0), Axis::raw(1), Axis::raw(2), Axis::raw(3)],
        ] {
            assert_matches_from_dataset(&data, &engine, &axes);
            // And the radix pass agrees with the popcount path exactly.
            let bits = engine.bits.as_ref().unwrap().materialise(&axes);
            let radix = engine.radix.materialise(&axes);
            assert_eq!(bits, radix);
        }
    }

    #[test]
    fn cache_serves_repeats_and_projections() {
        let data = mixed_dataset(200, 3);
        let engine = CountEngine::new(&data);
        let full = [Axis::raw(0), Axis::raw(1), Axis::raw(2)];
        let _ = engine.joint(&full);
        assert_eq!(engine.stats().scans, 1);

        // Same set again (any order): pure cache traffic, no new scan.
        let _ = engine.joint(&[Axis::raw(2), Axis::raw(0), Axis::raw(1)]);
        assert_eq!(engine.stats().scans, 1);
        assert_eq!(engine.stats().hits, 1);

        // A subset: served by projection, not a scan.
        let sub = engine.joint(&[Axis::raw(1), Axis::raw(0)]);
        let stats = engine.stats();
        assert_eq!(stats.scans, 1);
        assert_eq!(stats.projections, 1);
        let direct = ContingencyTable::from_dataset(&data, &[Axis::raw(1), Axis::raw(0)]);
        for (a, b) in sub.iter().zip(direct.values()) {
            assert!(a.to_bits() == b.to_bits(), "projection must be bit-identical");
        }
    }

    #[test]
    fn generalised_axis_is_not_served_from_raw_superset() {
        // {c4@1} is not a projection of {c4@0, …}: levels must match exactly.
        let data = mixed_dataset(150, 4);
        let engine = CountEngine::new(&data);
        let _ = engine.joint(&[Axis::raw(1), Axis::raw(0)]);
        let g = engine.joint(&[Axis { attr: 1, level: 1 }]);
        assert_eq!(engine.stats().scans, 2, "level-1 axis needs its own count");
        let direct = ContingencyTable::from_dataset(&data, &[Axis { attr: 1, level: 1 }]);
        for (a, b) in g.iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn concurrent_requests_are_bit_identical() {
        let data = mixed_dataset(400, 5);
        let engine = CountEngine::new(&data);
        let requests: Vec<Vec<Axis>> = vec![
            vec![Axis::raw(0), Axis::raw(1)],
            vec![Axis::raw(1), Axis::raw(2), Axis::raw(3)],
            vec![Axis::raw(1)],
            vec![Axis::raw(3), Axis::raw(0)],
            vec![Axis { attr: 3, level: 1 }, Axis::raw(0)],
        ];
        let parallel: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = requests
                .iter()
                .map(|axes| {
                    let engine = &engine;
                    s.spawn(move || engine.joint(axes))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (axes, got) in requests.iter().zip(&parallel) {
            let direct = ContingencyTable::from_dataset(&data, axes);
            for (a, b) in got.iter().zip(direct.values()) {
                assert!(a.to_bits() == b.to_bits());
            }
        }
    }

    #[test]
    fn count_table_projection_is_exact() {
        let data = mixed_dataset(100, 6);
        let engine = CountEngine::new(&data);
        let full = engine.joint_counts(&[Axis::raw(0), Axis::raw(1), Axis::raw(2)]);
        let proj = full.project(&[2, 0]);
        let direct = engine.radix.materialise(&[Axis::raw(2), Axis::raw(0)]);
        assert_eq!(proj, direct);
        let total: u64 = proj.counts().iter().sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn oversized_tables_are_served_but_not_retained() {
        // 16 cells > 4·n for n = 3: correct values, nothing cached.
        let data = binary_dataset(3, 8);
        let engine = CountEngine::new(&data);
        let axes = [Axis::raw(0), Axis::raw(1), Axis::raw(2), Axis::raw(3)];
        assert_matches_from_dataset(&data, &engine, &axes);
        assert_eq!(engine.stats().cached_tables, 0, "over-budget table must not be cached");
        let _ = engine.joint(&axes);
        assert_eq!(engine.stats().scans, 2, "repeat over-budget requests re-count");
    }

    #[test]
    fn empty_dataset_yields_zero_probabilities() {
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let data = Dataset::from_rows(schema, &[]).unwrap();
        let engine = CountEngine::new(&data);
        let j = engine.joint(&[Axis::raw(0), Axis::raw(1)]);
        assert!(j.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "axis repeated")]
    fn rejects_repeated_axes() {
        let data = binary_dataset(10, 7);
        let engine = CountEngine::new(&data);
        let _ = engine.joint(&[Axis::raw(0), Axis::raw(0)]);
    }

    /// Splits `data`'s rows into `[..at]` and `[at..]` datasets.
    fn split_rows(data: &Dataset, at: usize) -> (Dataset, Dataset) {
        let rows: Vec<Vec<u32>> =
            (0..data.n()).map(|r| (0..data.d()).map(|a| data.column(a)[r]).collect()).collect();
        let head = Dataset::from_rows(data.schema().clone(), &rows[..at]).unwrap();
        let tail = Dataset::from_rows(data.schema().clone(), &rows[at..]).unwrap();
        (head, tail)
    }

    #[test]
    fn append_is_bit_identical_to_cold_scan_of_concatenated_data() {
        for (full, warm_axes) in [
            (mixed_dataset(321, 11), vec![Axis::raw(0), Axis::raw(1), Axis::raw(3)]),
            (binary_dataset(257, 12), vec![Axis::raw(0), Axis::raw(1), Axis::raw(2)]),
        ] {
            let (head, tail) = split_rows(&full, 128);
            let mut engine = CountEngine::new(&head);
            // Warm the cache (including a generalised level where available)
            // so the append path must advance cached tables, not just
            // columns.
            let _ = engine.joint(&warm_axes);
            if full.schema().attribute(1).taxonomy().is_some() {
                let _ = engine.joint(&[Axis { attr: 1, level: 1 }, Axis::raw(0)]);
            }
            engine.append(&tail);
            assert_eq!(engine.n(), full.n());
            for axes in [
                warm_axes.clone(),
                vec![Axis::raw(2), Axis::raw(0)],
                vec![Axis::raw(1)],
                vec![Axis::raw(0), Axis::raw(1), Axis::raw(2), Axis::raw(3)],
            ] {
                assert_matches_from_dataset(&full, &engine, &axes);
            }
            if full.schema().attribute(1).taxonomy().is_some() {
                assert_matches_from_dataset(
                    &full,
                    &engine,
                    &[Axis { attr: 1, level: 1 }, Axis::raw(0)],
                );
            }
            let stats = engine.stats();
            assert_eq!(stats.appends, 1);
            assert_eq!(stats.rows_appended, (full.n() - 128) as u64);
        }
    }

    #[test]
    fn delta_merge_is_associative() {
        let full = mixed_dataset(300, 13);
        let (head, rest) = split_rows(&full, 100);
        let (mid, tail) = split_rows(&rest, 100);

        // (head ⊕ mid) ⊕ tail vs head ⊕ (mid ⊕ tail): identical counts.
        let mut left = EngineDelta::from_dataset(&head);
        left.merge(EngineDelta::from_dataset(&mid));
        left.merge(EngineDelta::from_dataset(&tail));
        let mut right_tail = EngineDelta::from_dataset(&mid);
        right_tail.merge(EngineDelta::from_dataset(&tail));
        let mut right = EngineDelta::from_dataset(&head);
        right.merge(right_tail);
        assert_eq!(left, right);

        let engine = CountEngine::from_delta(left);
        assert_matches_from_dataset(&full, &engine, &[Axis::raw(0), Axis::raw(1), Axis::raw(3)]);
    }

    #[test]
    fn appending_to_an_empty_engine_matches_a_cold_engine() {
        let full = binary_dataset(90, 14);
        let empty = Dataset::from_rows(full.schema().clone(), &[]).unwrap();
        let mut engine = CountEngine::new(&empty);
        let _ = engine.joint(&[Axis::raw(0), Axis::raw(3)]);
        engine.append(&full);
        for axes in
            [vec![Axis::raw(0), Axis::raw(3)], vec![Axis::raw(1), Axis::raw(2), Axis::raw(0)]]
        {
            assert_matches_from_dataset(&full, &engine, &axes);
        }
    }

    #[test]
    fn append_does_not_mutate_tables_held_by_readers() {
        let full = mixed_dataset(200, 15);
        let (head, tail) = split_rows(&full, 120);
        let mut engine = CountEngine::new(&head);
        let axes = [Axis::raw(0), Axis::raw(1)];
        let before = engine.joint_counts(&axes);
        let snapshot = before.counts().to_vec();
        engine.append(&tail);
        // The pre-append handle still sees head-only counts…
        assert_eq!(before.counts(), &snapshot[..]);
        // …while the engine serves the concatenated counts.
        assert_matches_from_dataset(&full, &engine, &axes);
    }

    #[test]
    #[should_panic(expected = "append schema must match")]
    fn append_rejects_schema_mismatch() {
        let mut engine = CountEngine::new(&binary_dataset(10, 16));
        engine.append(&mixed_dataset(10, 16));
    }

    #[test]
    fn sorted_subset_walk() {
        let a = |attr, level| Axis { attr, level };
        assert!(is_sorted_subset(&[a(1, 0)], &[a(0, 0), a(1, 0), a(2, 0)]));
        assert!(is_sorted_subset(&[a(0, 0), a(2, 0)], &[a(0, 0), a(1, 0), a(2, 0)]));
        assert!(!is_sorted_subset(&[a(1, 1)], &[a(0, 0), a(1, 0), a(2, 0)]));
        assert!(!is_sorted_subset(&[a(3, 0)], &[a(0, 0), a(1, 0)]));
        assert!(is_sorted_subset(&[], &[a(0, 0)]));
    }
}
