//! Contingency-table engine for the PrivBayes reproduction.
//!
//! Materialises joint distributions over (possibly generalised) attribute
//! subsets in O(n·k) time, projects them to sub-marginals, enumerates α-way
//! marginal workloads (the paper's `Q_α` count-query task), computes
//! total-variation accuracy metrics, and applies consistency post-processing:
//! per-table non-negativity + renormalisation (used by both PrivBayes and the
//! baselines) and cross-table [`consistency::mutual_consistency`] (the §3
//! footnote-1 optimisation).

pub mod consistency;
pub mod metrics;
pub mod query;
pub mod table;

pub use consistency::{clamp_and_normalize, mutual_consistency, shared_axes};
pub use metrics::{average_workload_tvd, total_variation};
pub use query::AlphaWayWorkload;
pub use table::{Axis, ContingencyTable};
