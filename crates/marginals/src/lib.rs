//! Contingency-table engine for the PrivBayes reproduction.
//!
//! Materialises joint distributions over (possibly generalised) attribute
//! subsets in O(n·k) time, projects them to sub-marginals, enumerates α-way
//! marginal workloads (the paper's `Q_α` count-query task), computes
//! total-variation accuracy metrics, and applies consistency post-processing:
//! per-table non-negativity + renormalisation (used by both PrivBayes and the
//! baselines) and cross-table [`consistency::mutual_consistency`] (the §3
//! footnote-1 optimisation).
//!
//! # The count engine
//!
//! [`engine::CountEngine`] is the shared, memoising source of joints for
//! every marginal-consuming algorithm in the suite — network learning, the
//! noisy conditionals, the §6 baselines, and the relational fact model all
//! consume it through the [`engine::MarginalSource`] trait. Its contract,
//! relied on by the parallel scoring and equivalence tests in `privbayes`:
//!
//! * **Caching.** Tables are cached keyed by the *sorted* (attr, level) axis
//!   set; a request whose axis set is a subset of a cached joint is answered
//!   by integer projection instead of a fresh row scan. The cache is
//!   thread-safe and lives for the engine's lifetime (one greedy run).
//! * **Determinism.** Every materialisation strategy — radix row scan,
//!   bit-packed popcount, cached projection — produces identical integer
//!   counts, and probabilities are always `count · (1/n)`, the exact
//!   expression [`ContingencyTable::from_dataset`] uses. Engine output is
//!   therefore bit-identical to `from_dataset` regardless of cache state,
//!   request order, or which thread populated the cache first.

pub mod consistency;
pub mod engine;
pub mod metrics;
pub mod query;
pub mod table;

pub use consistency::{clamp_and_normalize, mutual_consistency, shared_axes};
pub use engine::{CountBackend, CountEngine, CountTable, EngineDelta, EngineStats, MarginalSource};
pub use metrics::{average_workload_tvd, total_variation};
pub use query::AlphaWayWorkload;
pub use table::{Axis, ContingencyTable};
