//! Consistency post-processing.
//!
//! Two layers, both pure post-processing (no privacy cost):
//!
//! * **Per-table**: non-negativity followed by renormalisation (Algorithm 1
//!   line 5 and §6.1's baseline boosting).
//! * **Cross-table**: [`mutual_consistency`] reconciles a *set* of noisy
//!   marginals that overlap on shared attributes — the optimisation the paper
//!   points to in §3, footnote 1 ("we could apply additional post-processing
//!   of distributions, in the spirit of \[2, 17, 27\], to reflect the fact that
//!   lower degree distributions should be consistent"). Two noisy joints that
//!   share attributes generally disagree on the shared marginal; averaging
//!   them (inverse-variance weighted) and distributing the correction evenly
//!   is the least-squares adjustment subject to the agreed margin.

use crate::table::{Axis, ContingencyTable};

/// Sets negative cells to zero, then rescales the vector to sum to `target`.
///
/// If everything clamps to zero (possible under heavy noise), the result is
/// uniform — the least-informative valid distribution, mirroring the paper's
/// Uniform fallback. Post-processing never consumes privacy budget.
pub fn clamp_and_normalize(values: &mut [f64], target: f64) {
    debug_assert!(target > 0.0);
    let mut total = 0.0;
    for v in values.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
        total += *v;
    }
    if total > 0.0 {
        let scale = target / total;
        for v in values.iter_mut() {
            *v *= scale;
        }
    } else {
        let u = target / values.len() as f64;
        for v in values.iter_mut() {
            *v = u;
        }
    }
}

/// Non-negativity only (the paper's first boosting technique, used on its own
/// for count-scale releases where renormalisation is not wanted).
pub fn clamp_negatives(values: &mut [f64]) {
    for v in values.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// The axes two tables share (matching attribute **and** generalisation
/// level), in `a`'s axis order.
#[must_use]
pub fn shared_axes(a: &ContingencyTable, b: &ContingencyTable) -> Vec<Axis> {
    a.axes().iter().copied().filter(|axis| b.axes().contains(axis)).collect()
}

/// Reconciles overlapping noisy marginals in place.
///
/// For every pair of tables that share at least one axis, the shared marginal
/// is re-estimated as the inverse-variance-weighted average of the two
/// projections, and each table absorbs its correction spread evenly over the
/// cells that aggregate into each shared-margin cell — the least-squares
/// update subject to the new margin.
///
/// `cell_variance[i]` is the noise variance of one cell of `tables[i]`
/// (relative scale suffices; PrivBayes adds identically-distributed noise to
/// every joint, so `&[1.0; d]` is correct there). Projections onto the shared
/// margin sum cells, so a margin cell of table `i` carries variance
/// `cell_variance[i] · (cells_i / margin_cells)` — coarser tables therefore
/// get more weight, as in the consistency literature the paper cites.
///
/// One `round` makes each *pair* exactly consistent in isolation; later pairs
/// can disturb earlier ones, so a few rounds (2–3) are typically used. The
/// total mass of every table is preserved exactly; individual cells may go
/// negative and callers releasing distributions should re-apply
/// [`clamp_and_normalize`] afterwards (which costs a small, final deviation
/// from exact consistency, as in the consistency literature).
///
/// # Panics
/// Panics if `cell_variance.len() != tables.len()` or any variance is not
/// positive.
pub fn mutual_consistency(tables: &mut [ContingencyTable], cell_variance: &[f64], rounds: usize) {
    assert_eq!(tables.len(), cell_variance.len(), "one variance per table");
    assert!(cell_variance.iter().all(|&v| v > 0.0), "variances must be positive");
    for _ in 0..rounds {
        for i in 0..tables.len() {
            for j in i + 1..tables.len() {
                let shared = shared_axes(&tables[i], &tables[j]);
                if shared.is_empty() {
                    continue;
                }
                reconcile_pair(tables, i, j, &shared, cell_variance);
            }
        }
    }
}

/// Margin of `table` over `shared` plus, per table cell, the flat index of
/// the shared-margin cell it aggregates into.
fn margin_of(table: &ContingencyTable, shared: &[Axis]) -> (Vec<f64>, Vec<usize>) {
    let positions: Vec<usize> = shared
        .iter()
        .map(|axis| {
            table.axes().iter().position(|a| a == axis).expect("shared axis present in table")
        })
        .collect();
    let margin_dims: Vec<usize> = positions.iter().map(|&p| table.dims()[p]).collect();
    let margin_cells: usize = margin_dims.iter().product();
    let mut margin = vec![0.0; margin_cells];
    let mut cell_to_margin = vec![0usize; table.cell_count()];
    for (idx, &v) in table.values().iter().enumerate() {
        let coords = table.coords_of(idx);
        let mut m = 0usize;
        for (&p, &dim) in positions.iter().zip(&margin_dims) {
            m = m * dim + coords[p];
        }
        margin[m] += v;
        cell_to_margin[idx] = m;
    }
    (margin, cell_to_margin)
}

fn reconcile_pair(
    tables: &mut [ContingencyTable],
    i: usize,
    j: usize,
    shared: &[Axis],
    cell_variance: &[f64],
) {
    let (margin_i, map_i) = margin_of(&tables[i], shared);
    let (margin_j, map_j) = margin_of(&tables[j], shared);
    let margin_cells = margin_i.len();

    // Inverse-variance weights for the shared margin.
    let agg_i = tables[i].cell_count() / margin_cells;
    let agg_j = tables[j].cell_count() / margin_cells;
    let var_i = cell_variance[i] * agg_i as f64;
    let var_j = cell_variance[j] * agg_j as f64;
    let w_i = 1.0 / var_i;
    let w_j = 1.0 / var_j;

    let target: Vec<f64> =
        margin_i.iter().zip(&margin_j).map(|(&a, &b)| (w_i * a + w_j * b) / (w_i + w_j)).collect();

    // Least-squares absorption: spread each margin correction evenly over
    // the cells aggregating into it.
    let spread_i = agg_i as f64;
    for (idx, v) in tables[i].values_mut().iter_mut().enumerate() {
        let m = map_i[idx];
        *v += (target[m] - margin_i[m]) / spread_i;
    }
    let spread_j = agg_j as f64;
    for (idx, v) in tables[j].values_mut().iter_mut().enumerate() {
        let m = map_j[idx];
        *v += (target[m] - margin_j[m]) / spread_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamps_then_normalizes() {
        let mut v = vec![0.5, -0.2, 0.3, 0.2];
        clamp_and_normalize(&mut v, 1.0);
        assert_eq!(v[1], 0.0);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_negative_becomes_uniform() {
        let mut v = vec![-1.0, -2.0, -3.0, -4.0];
        clamp_and_normalize(&mut v, 1.0);
        assert!(v.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn respects_target_mass() {
        let mut v = vec![1.0, 1.0];
        clamp_and_normalize(&mut v, 10.0);
        assert!((v.iter().sum::<f64>() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_negatives_only() {
        let mut v = vec![-0.5, 2.0];
        clamp_negatives(&mut v);
        assert_eq!(v, vec![0.0, 2.0]);
    }

    fn table(axes: Vec<Axis>, dims: Vec<usize>, values: Vec<f64>) -> ContingencyTable {
        ContingencyTable::from_parts(axes, dims, values)
    }

    /// Shared margin of `t` over `shared`, for assertions.
    fn margin(t: &ContingencyTable, shared: &[Axis]) -> Vec<f64> {
        margin_of(t, shared).0
    }

    #[test]
    fn shared_axes_match_attr_and_level() {
        let a = table(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2], vec![0.25; 4]);
        let b = table(vec![Axis::raw(1), Axis::raw(2)], vec![2, 2], vec![0.25; 4]);
        assert_eq!(shared_axes(&a, &b), vec![Axis::raw(1)]);
        // A generalised axis does not match its raw counterpart.
        let c = table(vec![Axis { attr: 1, level: 1 }, Axis::raw(2)], vec![2, 2], vec![0.25; 4]);
        assert_eq!(shared_axes(&a, &c), vec![]);
    }

    #[test]
    fn one_round_makes_a_pair_exactly_consistent() {
        // Two 2×2 joints over ({0,1}) and ({1,2}) disagreeing on Pr[1].
        let mut tables = vec![
            // Pr[attr1 = 1] = 0.6 here…
            table(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2], vec![0.2, 0.2, 0.2, 0.4]),
            // …and 0.4 here.
            table(vec![Axis::raw(1), Axis::raw(2)], vec![2, 2], vec![0.3, 0.3, 0.2, 0.2]),
        ];
        mutual_consistency(&mut tables, &[1.0, 1.0], 1);
        let m0 = margin(&tables[0], &[Axis::raw(1)]);
        let m1 = margin(&tables[1], &[Axis::raw(1)]);
        for (a, b) in m0.iter().zip(&m1) {
            assert!((a - b).abs() < 1e-12, "margins must agree: {m0:?} vs {m1:?}");
        }
        // Equal variances and equal aggregation -> plain average 0.5/0.5.
        assert!((m0[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_mass_is_preserved() {
        let mut tables = vec![
            table(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2], vec![0.1, 0.2, 0.3, 0.4]),
            table(
                vec![Axis::raw(1), Axis::raw(2)],
                vec![2, 3],
                vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.25],
            ),
        ];
        mutual_consistency(&mut tables, &[1.0, 1.0], 3);
        for t in &tables {
            assert!((t.total() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn coarser_tables_get_more_weight() {
        // Table A is 2 cells over {1}; table B is 8 cells over {0,1,2}.
        // Projecting B onto {1} sums 4 cells -> 4x the variance of A's cells,
        // so the reconciled margin must sit much closer to A.
        let mut tables = vec![
            table(vec![Axis::raw(1)], vec![2], vec![0.9, 0.1]),
            table(
                vec![Axis::raw(0), Axis::raw(1), Axis::raw(2)],
                vec![2, 2, 2],
                vec![0.125; 8], // margin over {1} = (0.5, 0.5)
            ),
        ];
        mutual_consistency(&mut tables, &[1.0, 1.0], 1);
        let m = margin(&tables[0], &[Axis::raw(1)]);
        // Weighted: (1*0.9 + 0.25*0.5) / 1.25 = 0.82.
        assert!((m[0] - 0.82).abs() < 1e-12, "got {m:?}");
        let m_b = margin(&tables[1], &[Axis::raw(1)]);
        assert!((m_b[0] - 0.82).abs() < 1e-12, "both sides share the margin: {m_b:?}");
    }

    #[test]
    fn disjoint_tables_are_untouched() {
        let original = table(vec![Axis::raw(0)], vec![2], vec![0.7, 0.3]);
        let mut tables = vec![original.clone(), table(vec![Axis::raw(1)], vec![2], vec![0.5, 0.5])];
        mutual_consistency(&mut tables, &[1.0, 1.0], 5);
        assert_eq!(tables[0], original);
    }

    #[test]
    fn already_consistent_tables_are_a_fixed_point() {
        // Both joints are products of the same marginals -> already agree.
        let mut tables = vec![
            table(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2], vec![0.12, 0.28, 0.18, 0.42]),
            table(vec![Axis::raw(1), Axis::raw(2)], vec![2, 2], vec![0.15, 0.15, 0.35, 0.35]),
        ];
        let before = tables.clone();
        mutual_consistency(&mut tables, &[1.0, 1.0], 2);
        for (t, b) in tables.iter().zip(&before) {
            for (x, y) in t.values().iter().zip(b.values()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one variance per table")]
    fn variance_arity_mismatch_panics() {
        let mut tables = vec![table(vec![Axis::raw(0)], vec![2], vec![0.5, 0.5])];
        mutual_consistency(&mut tables, &[1.0, 1.0], 1);
    }

    proptest! {
        /// After one round, every overlapping *pair* processed last agrees on
        /// its shared margin; after a few rounds a chain A–B–C agrees globally
        /// within a loose tolerance.
        #[test]
        fn prop_chain_converges(
            a in proptest::collection::vec(0.01f64..1.0, 4),
            b in proptest::collection::vec(0.01f64..1.0, 4),
            c in proptest::collection::vec(0.01f64..1.0, 4),
        ) {
            let norm = |mut v: Vec<f64>| {
                let s: f64 = v.iter().sum();
                for x in &mut v { *x /= s; }
                v
            };
            let mut tables = vec![
                table(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2], norm(a)),
                table(vec![Axis::raw(1), Axis::raw(2)], vec![2, 2], norm(b)),
                table(vec![Axis::raw(2), Axis::raw(3)], vec![2, 2], norm(c)),
            ];
            mutual_consistency(&mut tables, &[1.0, 1.0, 1.0], 8);
            let m01 = margin(&tables[0], &[Axis::raw(1)]);
            let m11 = margin(&tables[1], &[Axis::raw(1)]);
            let m12 = margin(&tables[1], &[Axis::raw(2)]);
            let m22 = margin(&tables[2], &[Axis::raw(2)]);
            for (x, y) in m01.iter().zip(&m11) {
                prop_assert!((x - y).abs() < 1e-6, "{m01:?} vs {m11:?}");
            }
            for (x, y) in m12.iter().zip(&m22) {
                prop_assert!((x - y).abs() < 1e-6, "{m12:?} vs {m22:?}");
            }
            // Mass conservation throughout.
            for t in &tables {
                prop_assert!((t.total() - 1.0).abs() < 1e-9);
            }
        }

        /// Consistency is an averaging operation: reconciled margins lie
        /// inside the interval spanned by the two original estimates.
        #[test]
        fn prop_margin_within_bounds(
            a in proptest::collection::vec(0.01f64..1.0, 4),
            b in proptest::collection::vec(0.01f64..1.0, 4),
        ) {
            let norm = |mut v: Vec<f64>| {
                let s: f64 = v.iter().sum();
                for x in &mut v { *x /= s; }
                v
            };
            let t0 = table(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2], norm(a));
            let t1 = table(vec![Axis::raw(1), Axis::raw(2)], vec![2, 2], norm(b));
            let m0 = margin(&t0, &[Axis::raw(1)]);
            let m1 = margin(&t1, &[Axis::raw(1)]);
            let mut tables = vec![t0, t1];
            mutual_consistency(&mut tables, &[1.0, 1.0], 1);
            let m = margin(&tables[0], &[Axis::raw(1)]);
            for k in 0..2 {
                let lo = m0[k].min(m1[k]) - 1e-12;
                let hi = m0[k].max(m1[k]) + 1e-12;
                prop_assert!(m[k] >= lo && m[k] <= hi);
            }
        }
    }

    proptest! {
        /// Output is a valid distribution for arbitrary noisy input.
        #[test]
        fn prop_valid_distribution(mut v in proptest::collection::vec(-5.0f64..5.0, 1..50)) {
            clamp_and_normalize(&mut v, 1.0);
            prop_assert!(v.iter().all(|&x| x >= 0.0));
            prop_assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }

        /// Idempotence: applying twice changes nothing.
        #[test]
        fn prop_idempotent(mut v in proptest::collection::vec(-5.0f64..5.0, 1..50)) {
            clamp_and_normalize(&mut v, 1.0);
            let once = v.clone();
            clamp_and_normalize(&mut v, 1.0);
            for (a, b) in once.iter().zip(&v) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
