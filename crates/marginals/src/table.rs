//! Joint distributions over attribute subsets as dense mixed-radix tables.

use privbayes_data::{Dataset, Schema};

/// One axis of a contingency table: an attribute at a generalisation level.
///
/// Level 0 is the raw attribute; higher levels require a taxonomy tree on the
/// attribute (§5.1). The paper's vanilla encoding only ever uses level 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Axis {
    /// Attribute index in the dataset's schema.
    pub attr: usize,
    /// Generalisation level (0 = leaves).
    pub level: usize,
}

impl Axis {
    /// A level-0 axis.
    #[must_use]
    pub fn raw(attr: usize) -> Self {
        Self { attr, level: 0 }
    }

    /// Domain size of this axis under `schema`.
    ///
    /// # Panics
    /// Panics if `level > 0` and the attribute has no taxonomy, or the level
    /// is out of range.
    #[must_use]
    pub fn size(&self, schema: &Schema) -> usize {
        let attribute = schema.attribute(self.attr);
        if self.level == 0 {
            attribute.domain_size()
        } else {
            attribute
                .taxonomy()
                .unwrap_or_else(|| {
                    panic!(
                        "attribute `{}` has no taxonomy for level {}",
                        attribute.name(),
                        self.level
                    )
                })
                .level_size(self.level)
        }
    }
}

/// A dense joint distribution (probability scale) over a list of axes.
///
/// Cells are stored row-major: the **last** axis varies fastest. Values are
/// probabilities (multiples of 1/n when materialised from data), matching the
/// paper's sensitivity analysis (S = 2/n).
#[derive(Debug, Clone, PartialEq)]
pub struct ContingencyTable {
    axes: Vec<Axis>,
    dims: Vec<usize>,
    values: Vec<f64>,
}

impl ContingencyTable {
    /// Materialises the joint distribution of `axes` from `dataset`.
    ///
    /// # Panics
    /// Panics if an axis is invalid for the schema (see [`Axis::size`]) or
    /// `axes` is empty.
    #[must_use]
    pub fn from_dataset(dataset: &Dataset, axes: &[Axis]) -> Self {
        assert!(!axes.is_empty(), "need at least one axis");
        let schema = dataset.schema();
        let dims: Vec<usize> = axes.iter().map(|a| a.size(schema)).collect();
        let cells: usize = dims.iter().product();
        let mut counts = vec![0u64; cells];

        // Per-axis lookup tables: raw code -> (generalised code × stride).
        let mut strides = vec![1usize; axes.len()];
        for i in (0..axes.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        let lookups: Vec<Vec<usize>> = axes
            .iter()
            .zip(&strides)
            .map(|(axis, &stride)| {
                let attribute = schema.attribute(axis.attr);
                let raw_size = attribute.domain_size();
                (0..raw_size as u32)
                    .map(|code| {
                        let g = if axis.level == 0 {
                            code
                        } else {
                            attribute
                                .taxonomy()
                                .expect("validated by Axis::size")
                                .generalize(code, axis.level)
                        };
                        g as usize * stride
                    })
                    .collect()
            })
            .collect();

        let n = dataset.n();
        let columns: Vec<&[u32]> = axes.iter().map(|a| dataset.column(a.attr)).collect();
        for row in 0..n {
            let mut idx = 0usize;
            for (col, lookup) in columns.iter().zip(&lookups) {
                idx += lookup[col[row] as usize];
            }
            counts[idx] += 1;
        }

        let scale = if n == 0 { 0.0 } else { 1.0 / n as f64 };
        let values = counts.into_iter().map(|c| c as f64 * scale).collect();
        Self { axes: axes.to_vec(), dims, values }
    }

    /// Builds a table from raw parts (used by noisy releases and tests).
    ///
    /// # Panics
    /// Panics if `values.len()` does not equal the product of `dims`, or the
    /// lengths of `axes` and `dims` differ.
    #[must_use]
    pub fn from_parts(axes: Vec<Axis>, dims: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(axes.len(), dims.len(), "axes/dims length mismatch");
        let cells: usize = dims.iter().product();
        assert_eq!(values.len(), cells, "values length must match dims product");
        Self { axes, dims, values }
    }

    /// The uniform distribution over the axes' domain.
    #[must_use]
    pub fn uniform(axes: Vec<Axis>, dims: Vec<usize>) -> Self {
        let cells: usize = dims.iter().product();
        let v = 1.0 / cells as f64;
        Self::from_parts(axes, dims, vec![v; cells])
    }

    /// Axes of the table.
    #[must_use]
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Per-axis domain sizes.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.values.len()
    }

    /// Flat cell values (row-major, last axis fastest).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable flat cell values (e.g. for noise injection).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Total mass.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Flat index of a coordinate tuple.
    ///
    /// # Panics
    /// Panics if the coordinate arity or any coordinate is out of range.
    #[must_use]
    pub fn index_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity mismatch");
        let mut idx = 0usize;
        for (&c, &d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "coordinate {c} out of dim {d}");
            idx = idx * d + c;
        }
        idx
    }

    /// Coordinate tuple of a flat index (inverse of [`index_of`](Self::index_of)).
    #[must_use]
    pub fn coords_of(&self, mut idx: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.dims.len()];
        for (c, &d) in coords.iter_mut().zip(&self.dims).rev() {
            *c = idx % d;
            idx /= d;
        }
        coords
    }

    /// Value at a coordinate tuple.
    ///
    /// # Panics
    /// Panics as [`index_of`](Self::index_of).
    #[must_use]
    pub fn get(&self, coords: &[usize]) -> f64 {
        self.values[self.index_of(coords)]
    }

    /// Projects (sums out) onto the axes at positions `keep` (in the given
    /// order). Summation preserves total mass.
    ///
    /// # Panics
    /// Panics if `keep` is empty, repeats a position, or indexes out of range.
    #[must_use]
    pub fn project(&self, keep: &[usize]) -> Self {
        assert!(!keep.is_empty(), "projection must keep at least one axis");
        for (i, &k) in keep.iter().enumerate() {
            assert!(k < self.axes.len(), "axis position {k} out of range");
            assert!(!keep[..i].contains(&k), "axis position {k} repeated");
        }
        let out_axes: Vec<Axis> = keep.iter().map(|&k| self.axes[k]).collect();
        let out_dims: Vec<usize> = keep.iter().map(|&k| self.dims[k]).collect();
        let out_cells: usize = out_dims.iter().product();
        let mut out = vec![0.0f64; out_cells];

        // Precompute per-input-axis contribution to the output index.
        let mut in_strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            in_strides[i] = in_strides[i + 1] * self.dims[i + 1];
        }
        let mut out_strides = vec![1usize; keep.len()];
        for i in (0..keep.len().saturating_sub(1)).rev() {
            out_strides[i] = out_strides[i + 1] * out_dims[i + 1];
        }
        // For every input axis, the stride it contributes to the output (0 if dropped).
        let mut contrib = vec![0usize; self.dims.len()];
        for (o, &k) in keep.iter().enumerate() {
            contrib[k] = out_strides[o];
        }

        for (idx, &v) in self.values.iter().enumerate() {
            let mut rem = idx;
            let mut out_idx = 0usize;
            for (i, &stride) in in_strides.iter().enumerate() {
                let c = rem / stride;
                rem %= stride;
                out_idx += c * contrib[i];
            }
            out[out_idx] += v;
        }
        Self { axes: out_axes, dims: out_dims, values: out }
    }

    /// Projects onto the axes identified by attribute index (level ignored),
    /// in the order given. Convenience for workload evaluation.
    ///
    /// # Panics
    /// Panics if an attribute is not an axis of this table.
    #[must_use]
    pub fn project_attrs(&self, attrs: &[usize]) -> Self {
        let keep: Vec<usize> = attrs
            .iter()
            .map(|&a| {
                self.axes
                    .iter()
                    .position(|ax| ax.attr == a)
                    .unwrap_or_else(|| panic!("attribute {a} is not an axis"))
            })
            .collect();
        self.project(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, TaxonomyTree};
    use proptest::prelude::*;

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("x"),
            Attribute::categorical("y", 3).unwrap(),
            Attribute::binary("z"),
        ])
        .unwrap();
        Dataset::from_rows(
            schema,
            &[vec![0, 0, 0], vec![0, 0, 1], vec![1, 2, 1], vec![1, 1, 0], vec![1, 2, 1]],
        )
        .unwrap()
    }

    #[test]
    fn joint_matches_hand_count() {
        let ds = dataset();
        let t = ContingencyTable::from_dataset(&ds, &[Axis::raw(0), Axis::raw(1)]);
        assert_eq!(t.dims(), &[2, 3]);
        assert!((t.get(&[0, 0]) - 0.4).abs() < 1e-12);
        assert!((t.get(&[1, 2]) - 0.4).abs() < 1e-12);
        assert!((t.get(&[1, 1]) - 0.2).abs() < 1e-12);
        assert!((t.get(&[0, 1]) - 0.0).abs() < 1e-12);
        assert!((t.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_axis_is_marginal() {
        let ds = dataset();
        let t = ContingencyTable::from_dataset(&ds, &[Axis::raw(1)]);
        assert_eq!(t.values().len(), 3);
        assert!((t.get(&[0]) - 0.4).abs() < 1e-12);
        assert!((t.get(&[1]) - 0.2).abs() < 1e-12);
        assert!((t.get(&[2]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn projection_equals_direct_materialisation() {
        let ds = dataset();
        let joint =
            ContingencyTable::from_dataset(&ds, &[Axis::raw(0), Axis::raw(1), Axis::raw(2)]);
        let direct = ContingencyTable::from_dataset(&ds, &[Axis::raw(0), Axis::raw(2)]);
        let projected = joint.project(&[0, 2]);
        assert_eq!(projected.dims(), direct.dims());
        for (a, b) in projected.values().iter().zip(direct.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_reorders_axes() {
        let ds = dataset();
        let joint = ContingencyTable::from_dataset(&ds, &[Axis::raw(0), Axis::raw(1)]);
        let swapped = joint.project(&[1, 0]);
        assert_eq!(swapped.dims(), &[3, 2]);
        assert!((swapped.get(&[2, 1]) - joint.get(&[1, 2])).abs() < 1e-12);
    }

    #[test]
    fn project_attrs_by_attribute_index() {
        let ds = dataset();
        let joint =
            ContingencyTable::from_dataset(&ds, &[Axis::raw(0), Axis::raw(1), Axis::raw(2)]);
        let p = joint.project_attrs(&[2, 1]);
        assert_eq!(p.axes()[0].attr, 2);
        assert_eq!(p.dims(), &[2, 3]);
    }

    #[test]
    fn generalized_axis_uses_taxonomy() {
        let schema = Schema::new(vec![
            Attribute::categorical("w", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::binary("f"),
        ])
        .unwrap();
        let ds =
            Dataset::from_rows(schema, &[vec![0, 0], vec![1, 0], vec![2, 1], vec![3, 1]]).unwrap();
        let t = ContingencyTable::from_dataset(&ds, &[Axis { attr: 0, level: 1 }, Axis::raw(1)]);
        assert_eq!(t.dims(), &[2, 2]);
        assert!((t.get(&[0, 0]) - 0.5).abs() < 1e-12, "leaves 0,1 -> node 0, both f=0");
        assert!((t.get(&[1, 1]) - 0.5).abs() < 1e-12, "leaves 2,3 -> node 1, both f=1");
    }

    #[test]
    fn index_coords_round_trip() {
        let t = ContingencyTable::uniform(
            vec![Axis::raw(0), Axis::raw(1), Axis::raw(2)],
            vec![2, 3, 4],
        );
        for idx in 0..t.cell_count() {
            assert_eq!(t.index_of(&t.coords_of(idx)), idx);
        }
        // Last axis fastest.
        assert_eq!(t.index_of(&[0, 0, 1]), 1);
        assert_eq!(t.index_of(&[0, 1, 0]), 4);
        assert_eq!(t.index_of(&[1, 0, 0]), 12);
    }

    #[test]
    fn uniform_total_is_one() {
        let t = ContingencyTable::uniform(vec![Axis::raw(0)], vec![7]);
        assert!((t.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn project_rejects_duplicates() {
        let t = ContingencyTable::uniform(vec![Axis::raw(0), Axis::raw(1)], vec![2, 2]);
        let _ = t.project(&[0, 0]);
    }

    proptest! {
        /// Projection preserves total mass and never produces negatives from
        /// non-negative inputs.
        #[test]
        fn prop_projection_mass(
            vals in proptest::collection::vec(0.0f64..1.0, 24..=24),
            keep_first in any::<bool>(),
        ) {
            let t = ContingencyTable::from_parts(
                vec![Axis::raw(0), Axis::raw(1), Axis::raw(2)],
                vec![2, 3, 4],
                vals,
            );
            let keep: Vec<usize> = if keep_first { vec![0, 2] } else { vec![1] };
            let p = t.project(&keep);
            prop_assert!((p.total() - t.total()).abs() < 1e-9);
            prop_assert!(p.values().iter().all(|&v| v >= 0.0));
        }

        /// Materialised joints always sum to 1 and sit on the 1/n grid.
        #[test]
        fn prop_joint_on_grid(rows in proptest::collection::vec((0u32..2, 0u32..3), 1..30)) {
            let schema = Schema::new(vec![
                Attribute::binary("a"),
                Attribute::categorical("b", 3).unwrap(),
            ]).unwrap();
            let rows: Vec<Vec<u32>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
            let n = rows.len() as f64;
            let ds = Dataset::from_rows(schema, &rows).unwrap();
            let t = ContingencyTable::from_dataset(&ds, &[Axis::raw(0), Axis::raw(1)]);
            prop_assert!((t.total() - 1.0).abs() < 1e-9);
            for &v in t.values() {
                let scaled = v * n;
                prop_assert!((scaled - scaled.round()).abs() < 1e-9);
            }
        }
    }
}
