//! α-way marginal workloads (`Q_α`, §6.1).

/// The workload of **all** α-way marginals over `d` attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaWayWorkload {
    alpha: usize,
    subsets: Vec<Vec<usize>>,
}

impl AlphaWayWorkload {
    /// Enumerates all `C(d, α)` subsets in lexicographic order.
    ///
    /// # Panics
    /// Panics if `alpha == 0` or `alpha > d`.
    #[must_use]
    pub fn new(d: usize, alpha: usize) -> Self {
        assert!(alpha >= 1 && alpha <= d, "alpha must lie in 1..=d, got {alpha} for d={d}");
        let mut subsets = Vec::new();
        let mut current = Vec::with_capacity(alpha);
        enumerate(d, alpha, 0, &mut current, &mut subsets);
        Self { alpha, subsets }
    }

    /// α.
    #[must_use]
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The attribute subsets.
    #[must_use]
    pub fn subsets(&self) -> &[Vec<usize>] {
        &self.subsets
    }

    /// Number of marginals in the workload.
    #[must_use]
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// Whether the workload is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }
}

fn enumerate(
    d: usize,
    alpha: usize,
    start: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if current.len() == alpha {
        out.push(current.clone());
        return;
    }
    let needed = alpha - current.len();
    for i in start..=d - needed {
        current.push(i);
        enumerate(d, alpha, i + 1, current, out);
        current.pop();
    }
}

/// Binomial coefficient (used to cross-check workload sizes; saturating).
#[must_use]
pub fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    usize::try_from(acc).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn q2_over_4_attributes() {
        let w = AlphaWayWorkload::new(4, 2);
        assert_eq!(w.len(), 6);
        assert_eq!(
            w.subsets(),
            &[vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3]]
        );
    }

    #[test]
    fn paper_workload_sizes() {
        // NLTCS (d=16): |Q3| = 560, |Q4| = 1820. ACS (d=23): |Q3| = 1771, |Q4| = 8855.
        assert_eq!(AlphaWayWorkload::new(16, 3).len(), 560);
        assert_eq!(AlphaWayWorkload::new(16, 4).len(), 1820);
        assert_eq!(AlphaWayWorkload::new(23, 3).len(), 1771);
        assert_eq!(AlphaWayWorkload::new(23, 4).len(), 8855);
    }

    #[test]
    fn alpha_equals_d() {
        let w = AlphaWayWorkload::new(3, 3);
        assert_eq!(w.subsets(), &[vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "alpha must lie")]
    fn rejects_zero_alpha() {
        let _ = AlphaWayWorkload::new(4, 0);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(23, 4), 8855);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(10, 0), 1);
    }

    proptest! {
        /// Subsets are sorted, distinct, of size α, and count C(d, α).
        #[test]
        fn prop_workload_wellformed(d in 2usize..10, alpha in 1usize..5) {
            prop_assume!(alpha <= d);
            let w = AlphaWayWorkload::new(d, alpha);
            prop_assert_eq!(w.len(), binomial(d, alpha));
            let mut seen = std::collections::HashSet::new();
            for s in w.subsets() {
                prop_assert_eq!(s.len(), alpha);
                prop_assert!(s.windows(2).all(|p| p[0] < p[1]));
                prop_assert!(s.iter().all(|&a| a < d));
                prop_assert!(seen.insert(s.clone()));
            }
        }
    }
}
