//! PrivateERM: differentially private empirical risk minimisation by
//! objective perturbation (Chaudhuri, Monteleoni & Sarwate \[8\], Algorithm 2),
//! instantiated with the Huber-smoothed SVM loss the paper uses (§6.1).
//!
//! The perturbed objective is
//! `J(w) = (1/n)·Σ ℓ_huber(yᵢ·w·xᵢ) + Δ/2·‖w‖² + λ/2·‖w‖² + bᵀw/n`,
//! where `‖b‖ ~ Γ(dim, 2/ε′)` with a uniformly random direction. The budget
//! adjustment follows \[8\]: `ε′ = ε − log(1 + 2c/(nλ) + c²/(n²λ²))`; if that
//! is non-positive, `Δ = c/(n·(e^{ε/4} − 1)) − λ` and `ε′ = ε/2`. The Huber
//! smoothness constant is `c = 1/(2h)`.
//!
//! Requires ‖xᵢ‖ ≤ 1, which [`crate::features::FeatureMatrix`] guarantees.

use privbayes_dp::stats::{sample_gamma, sample_unit_sphere};
use rand::Rng;

use crate::features::{dot, FeatureMatrix};
use crate::svm::LinearSvm;

/// PrivateERM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivateErmOptions {
    /// Ridge regularisation λ.
    pub lambda: f64,
    /// Huber smoothing half-width h (loss is exactly hinge outside `1 ± h`).
    pub huber_h: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
}

impl Default for PrivateErmOptions {
    fn default() -> Self {
        Self { lambda: 1e-3, huber_h: 0.5, iterations: 400 }
    }
}

/// The PrivateERM learner.
#[derive(Debug, Clone)]
pub struct PrivateErm {
    options: PrivateErmOptions,
}

/// Huber-smoothed hinge loss of a margin `z = y·w·x` and its derivative
/// d ℓ / d z.
fn huber_loss(z: f64, h: f64) -> (f64, f64) {
    if z > 1.0 + h {
        (0.0, 0.0)
    } else if z < 1.0 - h {
        (1.0 - z, -1.0)
    } else {
        let t = 1.0 + h - z;
        (t * t / (4.0 * h), -t / (2.0 * h))
    }
}

impl PrivateErm {
    /// Creates the learner.
    #[must_use]
    pub fn new(options: PrivateErmOptions) -> Self {
        Self { options }
    }

    /// Trains an ε-DP linear classifier; `epsilon = None` trains the same
    /// objective without perturbation (the NoPrivacy reference).
    ///
    /// # Panics
    /// Panics if the training set is empty, λ ≤ 0, h ≤ 0, or ε ≤ 0.
    pub fn train<R: Rng + ?Sized>(
        &self,
        train: &FeatureMatrix,
        epsilon: Option<f64>,
        rng: &mut R,
    ) -> LinearSvm {
        let o = &self.options;
        assert!(train.rows() > 0, "empty training set");
        assert!(o.lambda > 0.0 && o.huber_h > 0.0, "invalid hyper-parameters");
        let n = train.rows() as f64;
        let dim = train.dim;
        let c = 1.0 / (2.0 * o.huber_h); // smoothness of the Huber loss

        let (delta, b) = match epsilon {
            None => (0.0, vec![0.0; dim]),
            Some(eps) => {
                assert!(eps > 0.0 && eps.is_finite(), "epsilon must be positive");
                let slack = 2.0 * c / (n * o.lambda) + c * c / (n * n * o.lambda * o.lambda);
                let eps_prime = eps - (1.0 + slack).ln();
                let (delta, eps_prime) = if eps_prime > 0.0 {
                    (0.0, eps_prime)
                } else {
                    (c / (n * ((eps / 4.0).exp() - 1.0)) - o.lambda, eps / 2.0)
                };
                let norm = sample_gamma(dim as f64, 2.0 / eps_prime, rng);
                let dir = sample_unit_sphere(dim, rng);
                (delta.max(0.0), dir.into_iter().map(|v| v * norm).collect())
            }
        };

        // Gradient descent on the smooth strongly convex objective.
        let mut w = vec![0.0f64; dim];
        let mut grad = vec![0.0f64; dim];
        // Lipschitz constant of ∇J: c/n·Σ‖x‖² bounded by c + λ + Δ.
        let step = 1.0 / (c + o.lambda + delta + 1.0);
        for _ in 0..self.options.iterations {
            let reg = o.lambda + delta;
            for (g, &wv) in grad.iter_mut().zip(&w) {
                *g = reg * wv;
            }
            for i in 0..train.rows() {
                let xi = train.row(i);
                let z = train.y[i] * dot(&w, xi);
                let (_, dz) = huber_loss(z, o.huber_h);
                if dz != 0.0 {
                    let coeff = dz * train.y[i] / n;
                    for (g, &x) in grad.iter_mut().zip(xi) {
                        *g += coeff * x;
                    }
                }
            }
            for ((g, bv), _) in grad.iter_mut().zip(&b).zip(0..dim) {
                *g += bv / n;
            }
            for (wv, &g) in w.iter_mut().zip(&grad) {
                *wv -= step * g;
            }
        }
        LinearSvm::from_weights(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::misclassification_rate;
    use privbayes_data::{Attribute, Dataset, Schema};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn separable(n: usize, seed: u64) -> FeatureMatrix {
        let schema = Schema::new(vec![
            Attribute::binary("t"),
            Attribute::binary("f"),
            Attribute::binary("g"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let t = rng.random_range(0..2u32);
                vec![t, t, rng.random_range(0..2u32)]
            })
            .collect();
        let ds = Dataset::from_rows(schema, &rows).unwrap();
        FeatureMatrix::build(&ds, 0, &[1])
    }

    #[test]
    fn huber_loss_shape() {
        let h = 0.5;
        assert_eq!(huber_loss(2.0, h), (0.0, 0.0));
        let (l, d) = huber_loss(0.0, h);
        assert!((l - 1.0).abs() < 1e-12 && (d + 1.0).abs() < 1e-12);
        // Smooth junctions.
        let (l, _) = huber_loss(1.0 + h, h);
        assert!(l.abs() < 1e-12);
        let (l, d) = huber_loss(1.0 - h, h);
        assert!((l - h).abs() < 1e-12 && (d + 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_private_erm_learns() {
        let train = separable(800, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = PrivateErm::new(PrivateErmOptions::default()).train(&train, None, &mut rng);
        let err = misclassification_rate(&model, &train);
        assert!(err < 0.05, "ERM should fit separable data, err = {err}");
    }

    #[test]
    fn high_epsilon_approaches_non_private() {
        let train = separable(800, 3);
        let test = separable(400, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let erm = PrivateErm::new(PrivateErmOptions::default());
        let private = erm.train(&train, Some(50.0), &mut rng);
        let clear = erm.train(&train, None, &mut rng);
        let pe = misclassification_rate(&private, &test);
        let ce = misclassification_rate(&clear, &test);
        assert!(pe < ce + 0.1, "ε=50 should be close to non-private: {pe} vs {ce}");
    }

    #[test]
    fn small_epsilon_degrades() {
        let train = separable(400, 6);
        let test = separable(400, 7);
        let erm = PrivateErm::new(PrivateErmOptions::default());
        let avg = |eps: Option<f64>| {
            (0..10)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(100 + s);
                    misclassification_rate(&erm.train(&train, eps, &mut rng), &test)
                })
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(Some(0.01)) > avg(None), "tiny ε must hurt accuracy");
    }

    #[test]
    fn budget_adjustment_branch_runs() {
        // Small n and tiny λ force ε′ ≤ 0, exercising the Δ branch.
        let train = separable(30, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let opts = PrivateErmOptions { lambda: 1e-6, huber_h: 0.5, iterations: 50 };
        let model = PrivateErm::new(opts).train(&train, Some(0.1), &mut rng);
        assert_eq!(model.weights.len(), train.dim);
        assert!(model.weights.iter().all(|w| w.is_finite()));
    }
}
