//! The Majority baseline (§6.1): a noisy count of positive training labels
//! decides a constant prediction for the whole test set.

use privbayes_dp::laplace::sample_laplace;
use rand::Rng;

use crate::eval::constant_misclassification_rate;
use crate::features::FeatureMatrix;

/// A constant ±1 classifier chosen by a Laplace-noised majority vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorityClassifier {
    /// The constant prediction.
    pub prediction: f64,
}

impl MajorityClassifier {
    /// Counts training rows with label +1, adds `Lap(1/ε)` (the count has
    /// sensitivity 1), and predicts +1 iff the noisy count exceeds n/2.
    ///
    /// # Panics
    /// Panics if `epsilon <= 0` or the training set is empty.
    pub fn train<R: Rng + ?Sized>(train: &FeatureMatrix, epsilon: f64, rng: &mut R) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
        assert!(train.rows() > 0, "empty training set");
        let positives = train.y.iter().filter(|&&y| y > 0.0).count() as f64;
        let noisy = positives + sample_laplace(1.0 / epsilon, rng);
        let prediction = if noisy > train.rows() as f64 / 2.0 { 1.0 } else { -1.0 };
        Self { prediction }
    }

    /// Misclassification rate on a test set.
    #[must_use]
    pub fn misclassification_rate(&self, test: &FeatureMatrix) -> f64 {
        constant_misclassification_rate(self.prediction, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix(pos: usize, neg: usize) -> FeatureMatrix {
        let y: Vec<f64> =
            std::iter::repeat_n(1.0, pos).chain(std::iter::repeat_n(-1.0, neg)).collect();
        FeatureMatrix { x: vec![0.0; y.len()], y, dim: 1 }
    }

    #[test]
    fn follows_clear_majorities() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = matrix(900, 100);
        // Large n makes the vote robust (the paper's observation).
        for _ in 0..20 {
            let c = MajorityClassifier::train(&m, 0.1, &mut rng);
            assert_eq!(c.prediction, 1.0);
        }
        let m = matrix(50, 950);
        for _ in 0..20 {
            let c = MajorityClassifier::train(&m, 0.1, &mut rng);
            assert_eq!(c.prediction, -1.0);
        }
    }

    #[test]
    fn error_equals_minority_fraction() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = matrix(800, 200);
        let c = MajorityClassifier::train(&m, 1.0, &mut rng);
        assert!((c.misclassification_rate(&m) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = MajorityClassifier::train(&matrix(1, 1), 0.0, &mut rng);
    }
}
