//! Classifier evaluation: the misclassification rate of §6.1.

use crate::features::FeatureMatrix;
use crate::svm::LinearSvm;

/// Fraction of rows the classifier labels incorrectly.
///
/// # Panics
/// Panics if `data` is empty.
#[must_use]
pub fn misclassification_rate(model: &LinearSvm, data: &FeatureMatrix) -> f64 {
    assert!(data.rows() > 0, "empty evaluation set");
    let wrong = (0..data.rows()).filter(|&i| model.predict(data.row(i)) != data.y[i]).count();
    wrong as f64 / data.rows() as f64
}

/// Misclassification rate of a constant prediction (used by Majority).
///
/// # Panics
/// Panics if `data` is empty.
#[must_use]
pub fn constant_misclassification_rate(prediction: f64, data: &FeatureMatrix) -> f64 {
    assert!(data.rows() > 0, "empty evaluation set");
    let wrong = data.y.iter().filter(|&&y| y != prediction).count();
    wrong as f64 / data.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> FeatureMatrix {
        // Two rows: x = [1], labels +1 and −1.
        FeatureMatrix { x: vec![1.0, 1.0], y: vec![1.0, -1.0], dim: 1 }
    }

    #[test]
    fn rates() {
        let m = toy();
        let always_pos = LinearSvm::from_weights(vec![1.0]);
        assert!((misclassification_rate(&always_pos, &m) - 0.5).abs() < 1e-12);
        assert!((constant_misclassification_rate(1.0, &m) - 0.5).abs() < 1e-12);
        assert!((constant_misclassification_rate(-1.0, &m) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier_scores_zero() {
        let m = FeatureMatrix { x: vec![1.0, -1.0], y: vec![1.0, -1.0], dim: 1 };
        let svm = LinearSvm::from_weights(vec![1.0]);
        assert_eq!(misclassification_rate(&svm, &m), 0.0);
    }
}
