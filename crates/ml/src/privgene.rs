//! PrivGene: differentially private model fitting with genetic algorithms
//! (Zhang et al. \[50\]).
//!
//! Each generation, the fittest candidate weight vector is selected with the
//! exponential mechanism (fitness = number of correctly classified training
//! tuples, sensitivity 1) and the next generation is bred from it by
//! crossover and Gaussian mutation. The per-generation budget is ε/r.
//!
//! Faithful simplifications (documented per DESIGN.md): one parent per
//! generation (the original selects two and pairs offspring) and a fixed
//! mutation schedule — both preserve the method's budget/iteration trade-off,
//! which is what the evaluation exercises.

use privbayes_dp::exponential::exponential_mechanism;
use privbayes_dp::stats::sample_normal;
use rand::{Rng, RngExt};

use crate::features::{dot, FeatureMatrix};
use crate::svm::LinearSvm;

/// PrivGene hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivGeneOptions {
    /// Population size per generation.
    pub population: usize,
    /// Number of generations `r`; `None` derives it from the budget as
    /// `clamp(round(ε·n / 800), 2, 30)` (the original scales iterations with
    /// ε·n).
    pub generations: Option<usize>,
    /// Initial mutation standard deviation (decays geometrically).
    pub mutation_std: f64,
}

impl Default for PrivGeneOptions {
    fn default() -> Self {
        Self { population: 100, generations: None, mutation_std: 0.3 }
    }
}

/// The PrivGene learner.
#[derive(Debug, Clone)]
pub struct PrivGene {
    options: PrivGeneOptions,
}

impl PrivGene {
    /// Creates the learner.
    #[must_use]
    pub fn new(options: PrivGeneOptions) -> Self {
        Self { options }
    }

    fn generations_for(&self, epsilon: f64, n: usize) -> usize {
        self.options
            .generations
            .unwrap_or_else(|| ((epsilon * n as f64 / 800.0).round() as usize).clamp(2, 30))
    }

    /// Trains an ε-DP linear classifier.
    ///
    /// # Panics
    /// Panics if the training set is empty, ε ≤ 0, or the population < 2.
    pub fn train<R: Rng + ?Sized>(
        &self,
        train: &FeatureMatrix,
        epsilon: f64,
        rng: &mut R,
    ) -> LinearSvm {
        assert!(train.rows() > 0, "empty training set");
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
        assert!(self.options.population >= 2, "population must be at least 2");
        let dim = train.dim;
        let generations = self.generations_for(epsilon, train.rows());
        let eps_per_gen = epsilon / generations as f64;

        // Fitness: correctly classified count; changing one tuple moves it by
        // at most 1 → sensitivity 1.
        let fitness = |w: &[f64]| -> f64 {
            (0..train.rows())
                .filter(|&i| {
                    let margin = train.y[i] * dot(w, train.row(i));
                    margin > 0.0
                })
                .count() as f64
        };

        let mut population: Vec<Vec<f64>> = (0..self.options.population)
            .map(|_| (0..dim).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect())
            .collect();
        let mut best = population[0].clone();
        let mut std = self.options.mutation_std;

        for _ in 0..generations {
            let scores: Vec<f64> = population.iter().map(|w| fitness(w)).collect();
            let chosen =
                exponential_mechanism(&scores, 1.0, eps_per_gen, rng).expect("valid scores");
            best = population[chosen].clone();

            // Breed the next generation: crossover best with random
            // population members, then mutate.
            let mut next = Vec::with_capacity(self.options.population);
            next.push(best.clone());
            while next.len() < self.options.population {
                let mate = &population[rng.random_range(0..population.len())];
                let mut child: Vec<f64> = best
                    .iter()
                    .zip(mate)
                    .map(|(&a, &b)| if rng.random::<bool>() { a } else { b })
                    .collect();
                for v in &mut child {
                    *v += sample_normal(0.0, std, rng);
                }
                next.push(child);
            }
            population = next;
            std *= 0.9;
        }
        LinearSvm::from_weights(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::misclassification_rate;
    use privbayes_data::{Attribute, Dataset, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize, seed: u64) -> FeatureMatrix {
        let schema = Schema::new(vec![
            Attribute::binary("t"),
            Attribute::binary("f"),
            Attribute::binary("g"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let t = rng.random_range(0..2u32);
                vec![t, t, rng.random_range(0..2u32)]
            })
            .collect();
        let ds = Dataset::from_rows(schema, &rows).unwrap();
        FeatureMatrix::build(&ds, 0, &[1])
    }

    #[test]
    fn generation_count_scales_with_budget() {
        let pg = PrivGene::new(PrivGeneOptions::default());
        assert_eq!(pg.generations_for(0.05, 1000), 2, "floor at 2");
        assert_eq!(pg.generations_for(1.6, 20_000), 30, "cap at 30");
        let mid = pg.generations_for(0.4, 10_000);
        assert!(mid > 2 && mid < 30);
    }

    #[test]
    fn explicit_generations_respected() {
        let pg =
            PrivGene::new(PrivGeneOptions { generations: Some(7), ..PrivGeneOptions::default() });
        assert_eq!(pg.generations_for(0.1, 10), 7);
    }

    #[test]
    fn large_budget_learns_separable_data() {
        let train = separable(600, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let pg = PrivGene::new(PrivGeneOptions {
            population: 80,
            generations: Some(15),
            mutation_std: 0.3,
        });
        let model = pg.train(&train, 100.0, &mut rng);
        let err = misclassification_rate(&model, &train);
        assert!(err < 0.2, "PrivGene at huge ε should learn, err = {err}");
    }

    #[test]
    fn output_shape_and_finiteness() {
        let train = separable(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let model = PrivGene::new(PrivGeneOptions::default()).train(&train, 0.1, &mut rng);
        assert_eq!(model.weights.len(), train.dim);
        assert!(model.weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        let train = separable(10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = PrivGene::new(PrivGeneOptions::default()).train(&train, 0.0, &mut rng);
    }
}
