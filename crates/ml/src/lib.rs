//! Classification substrate for the PrivBayes evaluation (§6.1, §6.6):
//!
//! * [`features`] — one-hot feature extraction with unit-ball normalisation
//!   (required by PrivateERM's analysis);
//! * [`svm`] — a linear hinge-loss C-SVM trained by Pegasos-style projected
//!   sub-gradient descent (the paper uses LIBSVM's linear C-SVM with C = 1;
//!   see the substitution note in DESIGN.md);
//! * [`private_erm`] — PrivateERM, the objective-perturbation ERM of
//!   Chaudhuri, Monteleoni & Sarwate \[8\] with Huber loss;
//! * [`privgene`] — PrivGene, genetic model fitting with an exponential-
//!   mechanism selection step (Zhang et al. \[50\]);
//! * [`majority`] — the noisy-majority constant classifier;
//! * [`eval`] — misclassification-rate evaluation.
//!
//! PrivBayes itself never appears here: it trains ordinary (non-private)
//! SVMs on its synthetic output, which is the point of the comparison.

pub mod eval;
pub mod features;
pub mod majority;
pub mod private_erm;
pub mod privgene;
pub mod svm;

pub use eval::misclassification_rate;
pub use features::FeatureMatrix;
pub use majority::MajorityClassifier;
pub use private_erm::{PrivateErm, PrivateErmOptions};
pub use privgene::{PrivGene, PrivGeneOptions};
pub use svm::LinearSvm;
