//! Feature extraction: one-hot encoding with unit-ball normalisation.
//!
//! Every attribute except the target is one-hot encoded; a constant bias
//! feature is appended; each row is scaled so ‖x‖₂ ≤ 1, which PrivateERM's
//! privacy analysis requires \[8\] and which does not affect the other
//! learners.

use privbayes_data::Dataset;

/// A dense feature matrix with ±1 labels.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Row-major features, `rows × dim`.
    pub x: Vec<f64>,
    /// ±1 labels.
    pub y: Vec<f64>,
    /// Feature dimensionality (including the bias column).
    pub dim: usize,
}

impl FeatureMatrix {
    /// Builds the matrix for predicting `target_attr`; rows whose target
    /// value is in `positive` get label +1.
    ///
    /// # Panics
    /// Panics if `target_attr` is out of range.
    #[must_use]
    pub fn build(dataset: &Dataset, target_attr: usize, positive: &[u32]) -> Self {
        let schema = dataset.schema();
        assert!(target_attr < schema.len(), "target attribute out of range");
        let feature_attrs: Vec<usize> = (0..schema.len()).filter(|&a| a != target_attr).collect();
        let offsets: Vec<usize> = feature_attrs
            .iter()
            .scan(0usize, |acc, &a| {
                let off = *acc;
                *acc += schema.attribute(a).domain_size();
                Some(off)
            })
            .collect();
        let one_hot_dim: usize =
            feature_attrs.iter().map(|&a| schema.attribute(a).domain_size()).sum();
        // One-hot features plus the bias coordinate; each row then has
        // exactly (d−1) ones plus the bias, so norm² = d.
        let dim = one_hot_dim + 1;
        let scale = 1.0 / (feature_attrs.len() as f64 + 1.0).sqrt();

        let n = dataset.n();
        let mut x = vec![0.0f64; n * dim];
        let mut y = Vec::with_capacity(n);
        for row in 0..n {
            let base = row * dim;
            for (slot, &attr) in feature_attrs.iter().enumerate() {
                let code = dataset.value(row, attr) as usize;
                x[base + offsets[slot] + code] = scale;
            }
            x[base + one_hot_dim] = scale; // bias
            let label =
                if positive.contains(&dataset.value(row, target_attr)) { 1.0 } else { -1.0 };
            y.push(label);
        }
        Self { x, y, dim }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.y.len()
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.x[i * self.dim..(i + 1) * self.dim]
    }
}

/// Dot product helper shared by the learners.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("t"),
            Attribute::categorical("c", 3).unwrap(),
            Attribute::binary("b"),
        ])
        .unwrap();
        Dataset::from_rows(schema, &[vec![1, 2, 0], vec![0, 0, 1]]).unwrap()
    }

    #[test]
    fn one_hot_layout_and_labels() {
        let m = FeatureMatrix::build(&dataset(), 0, &[1]);
        // Features: c (3) + b (2) + bias = 6 dims.
        assert_eq!(m.dim, 6);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.y, vec![1.0, -1.0]);
        let s = 1.0 / 3f64.sqrt();
        assert_eq!(m.row(0), &[0.0, 0.0, s, s, 0.0, s]);
        assert_eq!(m.row(1), &[s, 0.0, 0.0, 0.0, s, s]);
    }

    #[test]
    fn rows_have_unit_norm() {
        let m = FeatureMatrix::build(&dataset(), 1, &[2]);
        for i in 0..m.rows() {
            let norm: f64 = m.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12, "row {i} norm {norm}");
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn empty_positive_set_labels_everything_negative() {
        let m = FeatureMatrix::build(&dataset(), 0, &[]);
        assert!(m.y.iter().all(|&l| l == -1.0));
        let m = FeatureMatrix::build(&dataset(), 0, &[0, 1]);
        assert!(m.y.iter().all(|&l| l == 1.0), "covering positives label all +1");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        fn random_dataset(d: usize, sizes: &[usize], n: usize, seed: u64) -> Dataset {
            let schema = Schema::new(
                (0..d)
                    .map(|i| {
                        Attribute::categorical(format!("a{i}"), sizes[i % sizes.len()]).unwrap()
                    })
                    .collect(),
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let rows: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    (0..d).map(|i| rng.random_range(0..sizes[i % sizes.len()] as u32)).collect()
                })
                .collect();
            Dataset::from_rows(schema, &rows).unwrap()
        }

        proptest! {
            /// Every row of every feature matrix lies exactly on the unit
            /// sphere (PrivateERM's ‖x‖ ≤ 1 requirement) and carries exactly
            /// d non-zero coordinates (d−1 one-hots + bias).
            #[test]
            fn prop_unit_norm_and_sparsity(
                d in 2usize..6,
                n in 1usize..30,
                target in 0usize..6,
                seed in any::<u64>(),
            ) {
                let target = target % d;
                let data = random_dataset(d, &[2, 3, 4], n, seed);
                let m = FeatureMatrix::build(&data, target, &[0]);
                prop_assert_eq!(m.rows(), n);
                for i in 0..m.rows() {
                    let norm: f64 = m.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
                    prop_assert!((norm - 1.0).abs() < 1e-12);
                    let nonzero = m.row(i).iter().filter(|&&v| v != 0.0).count();
                    prop_assert_eq!(nonzero, d, "d-1 one-hots plus bias");
                }
            }

            /// Labels always match membership of the target value.
            #[test]
            fn prop_labels_track_target(
                n in 1usize..30,
                seed in any::<u64>(),
            ) {
                let data = random_dataset(3, &[4], n, seed);
                let m = FeatureMatrix::build(&data, 1, &[1, 3]);
                for row in 0..n {
                    let v = data.value(row, 1);
                    let expected = if v == 1 || v == 3 { 1.0 } else { -1.0 };
                    prop_assert_eq!(m.y[row], expected);
                }
            }
        }
    }
}
