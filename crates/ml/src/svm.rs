//! Linear hinge-loss C-SVM trained with Pegasos-style projected sub-gradient
//! descent (Shalev-Shwartz et al.), standing in for LIBSVM's linear C-SVM
//! with C = 1 (§6.1; substitution note in DESIGN.md).
//!
//! Objective: `min_w λ/2·‖w‖² + (1/n)·Σ max(0, 1 − yᵢ·w·xᵢ)` with
//! `λ = 1/(C·n)`.

use rand::{Rng, RngExt};

use crate::features::{dot, FeatureMatrix};

/// A trained linear classifier: `predict(x) = sign(w·x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    /// Weight vector (bias folded into the last feature).
    pub weights: Vec<f64>,
}

impl LinearSvm {
    /// Trains with hinge loss and regularisation `C` (paper default 1.0).
    ///
    /// # Panics
    /// Panics if the matrix is empty or `c <= 0`.
    pub fn train_hinge<R: Rng + ?Sized>(
        data: &FeatureMatrix,
        c: f64,
        epochs: usize,
        rng: &mut R,
    ) -> Self {
        assert!(data.rows() > 0, "no training rows");
        assert!(c > 0.0, "C must be positive");
        let n = data.rows();
        let lambda = 1.0 / (c * n as f64);
        let mut w = vec![0.0f64; data.dim];
        let total_steps = epochs * n;
        for t in 1..=total_steps {
            let i = rng.random_range(0..n);
            let eta = 1.0 / (lambda * t as f64);
            let xi = data.row(i);
            let margin = data.y[i] * dot(&w, xi);
            // w ← (1 − η·λ)·w  [+ η·y·x if the hinge is active]
            let shrink = 1.0 - eta * lambda;
            for v in &mut w {
                *v *= shrink;
            }
            if margin < 1.0 {
                let step = eta * data.y[i];
                for (v, &x) in w.iter_mut().zip(xi) {
                    *v += step * x;
                }
            }
            // Pegasos projection onto the ‖w‖ ≤ 1/√λ ball.
            let norm = dot(&w, &w).sqrt();
            let bound = (1.0 / lambda).sqrt();
            if norm > bound {
                let s = bound / norm;
                for v in &mut w {
                    *v *= s;
                }
            }
        }
        Self { weights: w }
    }

    /// Builds a classifier from explicit weights (used by the private
    /// learners, which optimise their own objectives).
    #[must_use]
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self { weights }
    }

    /// The signed margin `w·x`.
    #[must_use]
    pub fn margin(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x)
    }

    /// ±1 prediction (0 margins predict +1).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.margin(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::misclassification_rate;
    use privbayes_data::{Attribute, Dataset, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// target == strongly determined by feature attribute.
    fn separable(n: usize, noise: f64, seed: u64) -> FeatureMatrix {
        let schema = Schema::new(vec![
            Attribute::binary("t"),
            Attribute::binary("f1"),
            Attribute::categorical("f2", 3).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let t = rng.random_range(0..2u32);
                let f1 = if rng.random::<f64>() < noise { 1 - t } else { t };
                vec![t, f1, rng.random_range(0..3u32)]
            })
            .collect();
        let ds = Dataset::from_rows(schema, &rows).unwrap();
        FeatureMatrix::build(&ds, 0, &[1])
    }

    #[test]
    fn learns_separable_data() {
        let train = separable(1000, 0.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let svm = LinearSvm::train_hinge(&train, 1.0, 20, &mut rng);
        let err = misclassification_rate(&svm, &train);
        assert!(err < 0.02, "separable data should be learned, err = {err}");
    }

    #[test]
    fn tolerates_label_noise() {
        let train = separable(2000, 0.1, 3);
        let test = separable(500, 0.1, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let svm = LinearSvm::train_hinge(&train, 1.0, 20, &mut rng);
        let err = misclassification_rate(&svm, &test);
        assert!(err < 0.2, "should approach the 10% Bayes rate, err = {err}");
    }

    #[test]
    fn prediction_is_sign_of_margin() {
        let svm = LinearSvm::from_weights(vec![1.0, -2.0]);
        assert_eq!(svm.predict(&[1.0, 0.0]), 1.0);
        assert_eq!(svm.predict(&[0.0, 1.0]), -1.0);
        assert_eq!(svm.predict(&[0.0, 0.0]), 1.0, "ties go positive");
    }

    #[test]
    #[should_panic(expected = "no training rows")]
    fn rejects_empty_training_set() {
        let m = FeatureMatrix { x: vec![], y: vec![], dim: 3 };
        let mut rng = StdRng::seed_from_u64(6);
        let _ = LinearSvm::train_hinge(&m, 1.0, 5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn rejects_non_positive_c() {
        let train = separable(10, 0.0, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let _ = LinearSvm::train_hinge(&train, 0.0, 5, &mut rng);
    }

    #[test]
    fn training_is_deterministic_under_seed() {
        let train = separable(200, 0.05, 9);
        let fit = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            LinearSvm::train_hinge(&train, 1.0, 5, &mut rng).weights
        };
        assert_eq!(fit(11), fit(11));
    }

    #[test]
    fn weights_respect_the_pegasos_ball() {
        // After training, ‖w‖ ≤ 1/√λ = √(C·n) must hold (the projection
        // invariant the convergence analysis relies on).
        let train = separable(300, 0.2, 12);
        let c = 1.0;
        let mut rng = StdRng::seed_from_u64(13);
        let svm = LinearSvm::train_hinge(&train, c, 10, &mut rng);
        let norm = dot(&svm.weights, &svm.weights).sqrt();
        let bound = (c * train.rows() as f64).sqrt();
        assert!(norm <= bound + 1e-9, "‖w‖ = {norm} exceeds {bound}");
    }

    #[test]
    fn flipped_labels_flip_the_classifier() {
        // Symmetry: negating every label must negate predictions on the
        // same inputs (up to tie-breaking at exactly zero margin).
        let train = separable(800, 0.0, 14);
        let mut flipped = train.clone();
        for l in &mut flipped.y {
            *l = -*l;
        }
        let mut rng = StdRng::seed_from_u64(15);
        let svm = LinearSvm::train_hinge(&train, 1.0, 15, &mut rng);
        let mut rng = StdRng::seed_from_u64(15);
        let svm_flipped = LinearSvm::train_hinge(&flipped, 1.0, 15, &mut rng);
        let mut disagreements = 0;
        for i in 0..train.rows() {
            let a = svm.predict(train.row(i));
            let b = svm_flipped.predict(train.row(i));
            if a == b {
                disagreements += 1;
            }
        }
        let frac = disagreements as f64 / train.rows() as f64;
        assert!(frac < 0.05, "flipped training should invert predictions, agreement {frac}");
    }
}
