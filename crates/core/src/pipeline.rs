//! The end-to-end PrivBayes pipeline (§3) for all four encodings (§5.1).
//!
//! * **Binary / Gray**: binarise → choose `k` by θ-usefulness (Lemma 4.8) →
//!   GreedyBayes (Algorithm 2, default score `F`) → NoisyConditionals
//!   (Algorithm 1) → sample → decode.
//! * **Vanilla / Hierarchical**: GreedyBayes with maximal parent sets
//!   (Algorithm 4, default score `R`; the hierarchical variant additionally
//!   generalises parents through taxonomy trees) → NoisyConditionals
//!   (Algorithm 3) → sample.
//!
//! The ablations of §6.4 are exposed via [`PrivBayesOptions::best_network`]
//! (noise-free structure learning) and [`PrivBayesOptions::best_marginal`]
//! (noise-free distribution learning).

use privbayes_data::encoding::{binarize, debinarize, EncodingKind};
use privbayes_data::Dataset;
use privbayes_dp::budget::BudgetSplit;
use privbayes_marginals::CountEngine;
use rand::Rng;

use crate::conditionals::{
    noisy_conditionals_binary_k_engine, noisy_conditionals_consistent_engine,
    noisy_conditionals_general_engine, NoisyModel,
};
use crate::error::PrivBayesError;
use crate::greedy::{greedy_bayes_adaptive_engine, greedy_bayes_fixed_k_engine, GreedySettings};
use crate::network::BayesianNetwork;
use crate::sampler::sample_synthetic_with_threads;
use crate::score::ScoreKind;
use crate::theta::choose_degree_binary;

/// Configuration of one PrivBayes run.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivBayesOptions {
    /// Total privacy budget ε (= ε₁ + ε₂, Theorem 3.2).
    pub epsilon: f64,
    /// Budget split: ε₁ = βε, ε₂ = (1−β)ε. Paper default β = 0.3 (§6.4).
    pub beta: f64,
    /// θ-usefulness threshold. Paper default θ = 4 (§6.4).
    pub theta: f64,
    /// Attribute encoding (§5.1). Default: vanilla.
    pub encoding: EncodingKind,
    /// Score function; `None` selects the paper's per-encoding default
    /// (`F` for binary/Gray, `R` for vanilla/hierarchical — §6.2/§6.3).
    pub score: Option<ScoreKind>,
    /// Cap on parent-set cardinality — a tractability knob for the harness
    /// (DESIGN.md §4). `usize::MAX` is the paper-faithful setting.
    pub max_degree: usize,
    /// Override the θ-derived degree `k` for binary encodings.
    pub fixed_k: Option<usize>,
    /// Number of synthetic rows; `None` = same as the input (§3).
    pub synthetic_rows: Option<usize>,
    /// Whether network learning is private (false = BestNetwork ablation).
    pub private_network: bool,
    /// Whether distribution learning is private (false = BestMarginal ablation).
    pub private_marginals: bool,
    /// Rounds of cross-marginal [`mutual_consistency`] applied to the noisy
    /// joints before conditioning (§3 footnote 1; 0 = paper's default of no
    /// cross-table reconciliation). Only supported by the vanilla and
    /// hierarchical encodings; combining it with a bitwise encoding is an
    /// error rather than a silent no-op.
    ///
    /// [`mutual_consistency`]: privbayes_marginals::mutual_consistency
    pub consistency_rounds: usize,
    /// Worker threads for candidate scoring and synthesis; `None` uses
    /// [`std::thread::available_parallelism`]. The output for a fixed seed is
    /// identical for every setting (see `greedy` and `sampler` docs).
    pub threads: Option<usize>,
}

impl PrivBayesOptions {
    /// Paper-default options at budget `epsilon`.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        Self {
            epsilon,
            beta: BudgetSplit::DEFAULT_BETA,
            theta: 4.0,
            encoding: EncodingKind::Vanilla,
            score: None,
            max_degree: 4,
            fixed_k: None,
            synthetic_rows: None,
            private_network: true,
            private_marginals: true,
            consistency_rounds: 0,
            threads: None,
        }
    }

    /// Pins the worker-thread count (tests and benchmarks; `1` forces the
    /// sequential paths).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the encoding.
    #[must_use]
    pub fn with_encoding(mut self, encoding: EncodingKind) -> Self {
        self.encoding = encoding;
        self
    }

    /// Sets the score function explicitly.
    #[must_use]
    pub fn with_score(mut self, score: ScoreKind) -> Self {
        self.score = Some(score);
        self
    }

    /// Sets β.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets θ.
    #[must_use]
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the number of cross-marginal consistency rounds (0 disables).
    #[must_use]
    pub fn with_consistency_rounds(mut self, rounds: usize) -> Self {
        self.consistency_rounds = rounds;
        self
    }

    /// Removes the harness degree cap (paper-faithful, possibly slow).
    #[must_use]
    pub fn paper_faithful(mut self) -> Self {
        self.max_degree = usize::MAX;
        self
    }

    /// BestNetwork ablation (§6.4): structure learned without noise,
    /// marginals still private with ε₂.
    #[must_use]
    pub fn best_network(mut self) -> Self {
        self.private_network = false;
        self
    }

    /// BestMarginal ablation (§6.4): structure private with ε₁, marginals
    /// noise-free.
    #[must_use]
    pub fn best_marginal(mut self) -> Self {
        self.private_marginals = false;
        self
    }

    /// The effective score function for the configured encoding.
    #[must_use]
    pub fn effective_score(&self) -> ScoreKind {
        self.score.unwrap_or(match self.encoding {
            EncodingKind::Binary | EncodingKind::Gray => ScoreKind::F,
            EncodingKind::Vanilla | EncodingKind::Hierarchical => ScoreKind::R,
        })
    }

    fn validate(&self) -> Result<(), PrivBayesError> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(PrivBayesError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if !(self.beta > 0.0 && self.beta < 1.0) {
            return Err(PrivBayesError::InvalidConfig(format!(
                "beta must lie in (0,1), got {}",
                self.beta
            )));
        }
        if !(self.theta > 0.0 && self.theta.is_finite()) {
            return Err(PrivBayesError::InvalidConfig(format!(
                "theta must be positive, got {}",
                self.theta
            )));
        }
        if self.consistency_rounds > 0 && self.encoding.is_bitwise() {
            return Err(PrivBayesError::InvalidConfig(format!(
                "consistency rounds require the vanilla or hierarchical encoding, got {}",
                self.encoding.name()
            )));
        }
        Ok(())
    }
}

/// The output of a PrivBayes run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The synthetic dataset `D*` over the original schema.
    pub synthetic: Dataset,
    /// The learned network (over bit attributes for binary/Gray encodings).
    pub network: BayesianNetwork,
    /// The noisy model (network + conditionals) used for sampling.
    pub model: NoisyModel,
    /// The degree used (θ-derived `k` for binary encodings, observed degree
    /// otherwise).
    pub degree: usize,
    /// Privacy spent on network learning (0 for ablations).
    pub epsilon1_spent: f64,
    /// Privacy spent on distribution learning (0 for ablations).
    pub epsilon2_spent: f64,
}

/// The PrivBayes synthesiser.
#[derive(Debug, Clone)]
pub struct PrivBayes {
    options: PrivBayesOptions,
}

impl PrivBayes {
    /// Creates a synthesiser with the given options.
    #[must_use]
    pub fn new(options: PrivBayesOptions) -> Self {
        Self { options }
    }

    /// The configured options.
    #[must_use]
    pub fn options(&self) -> &PrivBayesOptions {
        &self.options
    }

    /// Runs the full three-phase pipeline on `data`.
    ///
    /// # Errors
    /// Returns [`PrivBayesError`] on invalid configuration, score/encoding
    /// mismatches, or empty input.
    pub fn synthesize<R: Rng + ?Sized>(
        &self,
        data: &Dataset,
        rng: &mut R,
    ) -> Result<SynthesisResult, PrivBayesError> {
        let o = &self.options;
        o.validate()?;
        if data.n() == 0 {
            return Err(PrivBayesError::InvalidConfig("empty dataset".into()));
        }
        if data.d() < 2 {
            return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
        }
        let split = BudgetSplit::new(o.beta).map_err(PrivBayesError::Dp)?;
        let (eps1, eps2) = split.split(o.epsilon);
        let rows = o.synthetic_rows.unwrap_or(data.n());
        let score = o.effective_score();
        let settings = GreedySettings {
            score,
            epsilon1: o.private_network.then_some(eps1),
            max_degree: o.max_degree,
            threads: o.threads,
        };

        if o.encoding.is_bitwise() {
            let (bin_data, map) = binarize(data, o.encoding)?;
            if bin_data.d() < 2 {
                return Err(PrivBayesError::InvalidConfig(
                    "binarised dataset has fewer than two bit attributes".into(),
                ));
            }
            let k = o
                .fixed_k
                .unwrap_or_else(|| choose_degree_binary(bin_data.n(), bin_data.d(), eps2, o.theta))
                .min(o.max_degree)
                .min(bin_data.d() - 1);
            // One engine spans both learning phases: AP-pair joints counted
            // while scoring candidates are cache hits when the noisy
            // conditionals materialise them again.
            let engine = CountEngine::new(&bin_data);
            let network = greedy_bayes_fixed_k_engine(&engine, k, &settings, rng)?;
            let model = noisy_conditionals_binary_k_engine(
                &engine,
                &network,
                k,
                o.private_marginals.then_some(eps2),
                rng,
            )?;
            let bin_synth =
                sample_synthetic_with_threads(&model, bin_data.schema(), rows, o.threads, rng)?;
            let synthetic = debinarize(&bin_synth, &map, data.schema())?;
            Ok(SynthesisResult {
                synthetic,
                network,
                model,
                degree: k,
                epsilon1_spent: if o.private_network { eps1 } else { 0.0 },
                epsilon2_spent: if o.private_marginals { eps2 } else { 0.0 },
            })
        } else {
            let use_taxonomy = o.encoding == EncodingKind::Hierarchical;
            let engine = CountEngine::new(data);
            let network =
                greedy_bayes_adaptive_engine(&engine, o.theta, eps2, use_taxonomy, &settings, rng)?;
            let model = if o.consistency_rounds > 0 {
                noisy_conditionals_consistent_engine(
                    &engine,
                    &network,
                    o.private_marginals.then_some(eps2),
                    o.consistency_rounds,
                    rng,
                )?
            } else {
                noisy_conditionals_general_engine(
                    &engine,
                    &network,
                    o.private_marginals.then_some(eps2),
                    rng,
                )?
            };
            let synthetic =
                sample_synthetic_with_threads(&model, data.schema(), rows, o.threads, rng)?;
            let degree = network.degree();
            Ok(SynthesisResult {
                synthetic,
                network,
                model,
                degree,
                epsilon1_spent: if o.private_network { eps1 } else { 0.0 },
                epsilon2_spent: if o.private_marginals { eps2 } else { 0.0 },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema, TaxonomyTree};
    use privbayes_marginals::average_workload_tvd;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn binary_data(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
            Attribute::binary("d"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                let c = rng.random_range(0..2u32);
                let flip = u32::from(rng.random::<f64>() < 0.1);
                vec![a, a ^ flip, c, c]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    fn mixed_data(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("flag"),
            Attribute::categorical("work", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::continuous("age", 0.0, 80.0, 8)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(8).unwrap())
                .unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let w = rng.random_range(0..4u32);
                vec![u32::from(w >= 2), w, w * 2 + rng.random_range(0..2u32)]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn all_encodings_produce_schema_matching_output() {
        let data = mixed_data(400, 1);
        for encoding in [
            EncodingKind::Binary,
            EncodingKind::Gray,
            EncodingKind::Vanilla,
            EncodingKind::Hierarchical,
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let result = PrivBayes::new(PrivBayesOptions::new(1.0).with_encoding(encoding))
                .synthesize(&data, &mut rng)
                .unwrap_or_else(|e| panic!("{encoding:?}: {e}"));
            assert_eq!(result.synthetic.n(), data.n(), "{encoding:?}");
            assert_eq!(
                result.synthetic.schema().domain_sizes(),
                data.schema().domain_sizes(),
                "{encoding:?}"
            );
        }
    }

    #[test]
    fn budget_accounting_sums_to_epsilon() {
        let data = binary_data(300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let eps = 0.8;
        let result = PrivBayes::new(PrivBayesOptions::new(eps).with_encoding(EncodingKind::Binary))
            .synthesize(&data, &mut rng)
            .unwrap();
        assert!((result.epsilon1_spent + result.epsilon2_spent - eps).abs() < 1e-12);
        assert!((result.epsilon1_spent - 0.3 * eps).abs() < 1e-12, "β default 0.3");
    }

    #[test]
    fn ablations_spend_less() {
        let data = binary_data(300, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let r = PrivBayes::new(PrivBayesOptions::new(1.0).best_network())
            .synthesize(&data, &mut rng)
            .unwrap();
        assert_eq!(r.epsilon1_spent, 0.0);
        assert!(r.epsilon2_spent > 0.0);
        let r = PrivBayes::new(PrivBayesOptions::new(1.0).best_marginal())
            .synthesize(&data, &mut rng)
            .unwrap();
        assert!(r.epsilon1_spent > 0.0);
        assert_eq!(r.epsilon2_spent, 0.0);
    }

    #[test]
    fn higher_epsilon_gives_lower_error_on_average() {
        let data = binary_data(2000, 7);
        let avg_err = |eps: f64| -> f64 {
            let reps = 5;
            (0..reps)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(1000 + s);
                    let r = PrivBayes::new(
                        PrivBayesOptions::new(eps).with_encoding(EncodingKind::Vanilla),
                    )
                    .synthesize(&data, &mut rng)
                    .unwrap();
                    average_workload_tvd(&data, &r.synthetic, 2)
                })
                .sum::<f64>()
                / reps as f64
        };
        let low = avg_err(0.05);
        let high = avg_err(5.0);
        assert!(high < low, "ε=5 error ({high}) should be below ε=0.05 error ({low})");
    }

    #[test]
    fn noise_free_run_is_accurate() {
        let data = binary_data(2000, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let opts = PrivBayesOptions::new(1.0).best_network().best_marginal();
        let r = PrivBayes::new(opts).synthesize(&data, &mut rng).unwrap();
        let err = average_workload_tvd(&data, &r.synthetic, 2);
        assert!(err < 0.06, "noise-free synthesis should track the data, err = {err}");
    }

    #[test]
    fn fixed_k_override_is_respected() {
        let data = binary_data(500, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut opts = PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Binary);
        opts.fixed_k = Some(1);
        let r = PrivBayes::new(opts).synthesize(&data, &mut rng).unwrap();
        assert_eq!(r.degree, 1);
        assert!(r.network.degree() <= 1);
    }

    #[test]
    fn synthetic_rows_override() {
        let data = binary_data(200, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut opts = PrivBayesOptions::new(1.0);
        opts.synthetic_rows = Some(77);
        let r = PrivBayes::new(opts).synthesize(&data, &mut rng).unwrap();
        assert_eq!(r.synthetic.n(), 77);
    }

    #[test]
    fn default_scores_follow_encoding() {
        assert_eq!(
            PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Binary).effective_score(),
            ScoreKind::F
        );
        assert_eq!(
            PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Gray).effective_score(),
            ScoreKind::F
        );
        assert_eq!(
            PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Vanilla).effective_score(),
            ScoreKind::R
        );
        assert_eq!(
            PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Hierarchical).effective_score(),
            ScoreKind::R
        );
        assert_eq!(
            PrivBayesOptions::new(1.0).with_score(ScoreKind::MutualInformation).effective_score(),
            ScoreKind::MutualInformation
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = binary_data(50, 14);
        let mut rng = StdRng::seed_from_u64(15);
        for opts in [
            PrivBayesOptions::new(0.0),
            PrivBayesOptions::new(-1.0),
            PrivBayesOptions::new(1.0).with_beta(0.0),
            PrivBayesOptions::new(1.0).with_beta(1.0),
            PrivBayesOptions::new(1.0).with_theta(0.0),
            PrivBayesOptions::new(1.0)
                .with_encoding(EncodingKind::Binary)
                .with_consistency_rounds(2),
        ] {
            assert!(PrivBayes::new(opts).synthesize(&data, &mut rng).is_err());
        }
    }

    #[test]
    fn consistency_rounds_run_end_to_end() {
        let data = mixed_data(400, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let result = PrivBayes::new(PrivBayesOptions::new(1.0).with_consistency_rounds(2))
            .synthesize(&data, &mut rng)
            .unwrap();
        assert_eq!(result.synthetic.n(), data.n());
        // Conditionals remain valid distributions after reconciliation.
        for cond in &result.model.conditionals {
            for slice in cond.probs.chunks_exact(cond.child_dim) {
                assert!((slice.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = binary_data(300, 16);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            PrivBayes::new(PrivBayesOptions::new(0.5))
                .synthesize(&data, &mut rng)
                .unwrap()
                .synthetic
        };
        assert_eq!(run(42), run(42));
    }
}
