//! The score function `R` (§5.3): half the L1 distance from `Pr[X, Π]` to the
//! independent joint `Pr[X]·Pr[Π]` — i.e. the total-variation distance to the
//! nearest zero-mutual-information distribution (Lemma 5.2).

/// Computes `R(X, Π)` (Equation 11) for a joint in parent-major/child-fastest
/// layout (module docs of [`crate::score`]).
///
/// # Panics
/// Panics if `values.len()` is not a multiple of `child_dim`.
#[must_use]
pub fn r_score(values: &[f64], child_dim: usize) -> f64 {
    assert!(child_dim > 0 && values.len().is_multiple_of(child_dim), "bad joint shape");
    let parent_dim = values.len() / child_dim;
    let mut px = vec![0.0f64; child_dim];
    let mut ppi = vec![0.0f64; parent_dim];
    for pi in 0..parent_dim {
        for x in 0..child_dim {
            let v = values[pi * child_dim + x];
            px[x] += v;
            ppi[pi] += v;
        }
    }
    let mut l1 = 0.0;
    for pi in 0..parent_dim {
        for x in 0..child_dim {
            l1 += (values[pi * child_dim + x] - px[x] * ppi[pi]).abs();
        }
    }
    0.5 * l1
}

/// Upper bound on the sensitivity of `R`: `3/n + 2/n²` (Theorem 5.3).
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn r_sensitivity(n: usize) -> f64 {
    assert!(n > 0);
    let n = n as f64;
    3.0 / n + 2.0 / (n * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::mi::mutual_information;
    use proptest::prelude::*;

    #[test]
    fn independent_joint_scores_zero() {
        let px = [0.3, 0.7];
        let ppi = [0.2, 0.5, 0.3];
        let mut joint = Vec::new();
        for &q in &ppi {
            for &p in &px {
                joint.push(p * q);
            }
        }
        assert!(r_score(&joint, 2).abs() < 1e-12);
    }

    #[test]
    fn perfect_binary_correlation_scores_half() {
        // Diagonal .5/.5: product distribution is uniform .25, L1 = 4·.25 = 1.
        let joint = [0.5, 0.0, 0.0, 0.5];
        assert!((r_score(&joint, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn works_on_non_binary_domains() {
        // 3×3 permutation matrix / 3: strongly correlated.
        let mut joint = vec![0.0; 9];
        for i in 0..3 {
            joint[i * 3 + i] = 1.0 / 3.0;
        }
        let r = r_score(&joint, 3);
        // Product marginals are uniform 1/9: L1 = 3·|1/3−1/9| + 6·|0−1/9| = 4/3.
        assert!((r - 2.0 / 3.0).abs() < 1e-12, "R = {r}");
    }

    #[test]
    fn sensitivity_bound_on_neighbors() {
        // Theorem 5.3: |ΔR| ≤ 3/n + 2/n² between neighbouring datasets.
        let n = 40u64;
        let base = [(5u64, 9u64), (11, 2), (6, 7)];
        let to_joint = |c: &[(u64, u64)]| -> Vec<f64> {
            c.iter().flat_map(|&(a, b)| [a as f64 / n as f64, b as f64 / n as f64]).collect()
        };
        let r1 = r_score(&to_joint(&base), 2);
        for (fc, fr) in [(0usize, 0usize), (1, 0), (2, 1)] {
            for (tc, tr) in [(1usize, 1usize), (2, 0), (0, 1)] {
                let mut c = base;
                if fr == 0 {
                    c[fc].0 -= 1
                } else {
                    c[fc].1 -= 1
                };
                if tr == 0 {
                    c[tc].0 += 1
                } else {
                    c[tc].1 += 1
                };
                let r2 = r_score(&to_joint(&c), 2);
                assert!(
                    (r1 - r2).abs() <= r_sensitivity(n as usize) + 1e-12,
                    "ΔR = {} exceeds bound {}",
                    (r1 - r2).abs(),
                    r_sensitivity(n as usize)
                );
            }
        }
    }

    proptest! {
        /// R ∈ [0, 1) and R = 0 exactly for product distributions.
        #[test]
        fn prop_r_range(vals in proptest::collection::vec(0.0f64..1.0, 12..=12)) {
            let total: f64 = vals.iter().sum();
            prop_assume!(total > 1e-9);
            let joint: Vec<f64> = vals.iter().map(|v| v / total).collect();
            let r = r_score(&joint, 3);
            prop_assert!((0.0..1.0).contains(&r));
        }

        /// Pinsker relation (§5.3): R ≤ sqrt(ln2/2 · I).
        #[test]
        fn prop_pinsker(vals in proptest::collection::vec(0.0f64..1.0, 8..=8)) {
            let total: f64 = vals.iter().sum();
            prop_assume!(total > 1e-9);
            let joint: Vec<f64> = vals.iter().map(|v| v / total).collect();
            let r = r_score(&joint, 2);
            let i = mutual_information(&joint, 2);
            prop_assert!(r <= (0.5 * std::f64::consts::LN_2 * i).sqrt() + 1e-9);
        }

        /// R is symmetric in X and Π.
        #[test]
        fn prop_r_symmetric(vals in proptest::collection::vec(0.0f64..1.0, 6..=6)) {
            let total: f64 = vals.iter().sum();
            prop_assume!(total > 1e-9);
            let joint: Vec<f64> = vals.iter().map(|v| v / total).collect();
            let a = r_score(&joint, 2);
            let mut t = vec![0.0; 6];
            for pi in 0..3 {
                for x in 0..2 {
                    t[x * 3 + pi] = joint[pi * 2 + x];
                }
            }
            prop_assert!((a - r_score(&t, 3)).abs() < 1e-9);
        }
    }
}
