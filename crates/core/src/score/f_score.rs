//! The score function `F` (§4.3–4.4): negative half the L1 distance from
//! `Pr[X, Π]` to the nearest *maximum joint distribution* (Definition 4.2),
//! computed by the dominated-state dynamic program of §4.4.
//!
//! `F` requires a binary child: Theorem 5.1 shows that computing `F` exactly
//! is NP-hard in general, and the pseudo-polynomial algorithm costs
//! `O(|dom(Π)| · n^{|dom(X)|−1})` — only `|dom(X)| = 2` is practical.

use crate::error::PrivBayesError;

/// Frontier-size guard. The exact dynamic program keeps every non-dominated
/// `(a, b)` count pair, of which there can be up to `n+1`. Past this bound we
/// thin the frontier to evenly spaced states; the induced error in `F` is at
/// most `max_count / (n · MAX_STATES)` per column — negligible against
/// `range(F) = 0.5` (and the guard never triggers in the paper's settings).
const MAX_STATES: usize = 4096;

/// Sensitivity of `F`: exactly `1/n` (Theorem 4.5).
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn f_sensitivity(n: usize) -> f64 {
    assert!(n > 0);
    1.0 / n as f64
}

/// Extracts per-parent-value count pairs from a probability-scale joint.
fn column_counts(values: &[f64], n: usize) -> Vec<(u64, u64)> {
    values
        .chunks_exact(2)
        .map(|c| {
            let c0 = (c[0] * n as f64).round() as u64;
            let c1 = (c[1] * n as f64).round() as u64;
            (c0, c1)
        })
        .collect()
}

/// Computes `F(X, Π)` for a binary child via the Pareto-frontier dynamic
/// program. `values` is parent-major/child-fastest (module docs of
/// [`crate::score`]); `n` is the dataset cardinality (cells must be multiples
/// of `1/n`).
///
/// # Errors
/// Returns [`PrivBayesError::UnsupportedScore`] if `child_dim != 2`.
///
/// # Panics
/// Panics if the joint shape is inconsistent or `n == 0`.
pub fn f_score(values: &[f64], child_dim: usize, n: usize) -> Result<f64, PrivBayesError> {
    if child_dim != 2 {
        return Err(PrivBayesError::UnsupportedScore(format!(
            "F requires a binary child attribute, got domain size {child_dim} (Theorem 5.1)"
        )));
    }
    assert!(n > 0, "empty dataset");
    assert!(values.len().is_multiple_of(2), "joint length must be even");

    // Frontier of Pareto-maximal reachable (K0·n, K1·n) pairs, kept sorted by
    // `a` strictly increasing / `b` strictly decreasing.
    let mut frontier: Vec<(u64, u64)> = vec![(0, 0)];
    let mut scratch: Vec<(u64, u64)> = Vec::new();

    for (c0, c1) in column_counts(values, n) {
        if c0 == 0 && c1 == 0 {
            continue;
        }
        // Branch A assigns the column's row-0 mass to K0; branch B assigns
        // row-1 mass to K1. Both branches preserve the frontier's ordering,
        // so a linear merge + prune suffices.
        scratch.clear();
        let (mut ia, mut ib) = (0usize, 0usize);
        while ia < frontier.len() || ib < frontier.len() {
            let cand_a = frontier.get(ia).map(|&(a, b)| (a + c0, b));
            let cand_b = frontier.get(ib).map(|&(a, b)| (a, b + c1));
            let take_a = match (cand_a, cand_b) {
                (Some(x), Some(y)) => (x.0, x.1) <= (y.0, y.1),
                (Some(_), None) => true,
                _ => false,
            };
            if take_a {
                scratch.push(cand_a.expect("guarded"));
                ia += 1;
            } else {
                scratch.push(cand_b.expect("guarded"));
                ib += 1;
            }
        }
        // Prune dominated states right-to-left: keep strictly increasing b.
        frontier.clear();
        let mut best_b: Option<u64> = None;
        for &(a, b) in scratch.iter().rev() {
            if best_b.is_none_or(|bb| b > bb) {
                frontier.push((a, b));
                best_b = Some(b);
            }
        }
        frontier.reverse();

        if frontier.len() > MAX_STATES {
            thin(&mut frontier);
        }
    }

    let nf = n as f64;
    let best = frontier
        .iter()
        .map(|&(a, b)| (0.5 - a as f64 / nf).max(0.0) + (0.5 - b as f64 / nf).max(0.0))
        .fold(f64::INFINITY, f64::min);
    Ok(-best)
}

/// Keeps `MAX_STATES` evenly spaced states (always including both endpoints).
fn thin(frontier: &mut Vec<(u64, u64)>) {
    let len = frontier.len();
    let mut kept = Vec::with_capacity(MAX_STATES);
    for i in 0..MAX_STATES {
        let idx = i * (len - 1) / (MAX_STATES - 1);
        if kept.last() != Some(&frontier[idx]) {
            kept.push(frontier[idx]);
        }
    }
    *frontier = kept;
}

/// Exhaustive-enumeration reference implementation (exponential in the number
/// of parent values). Used to cross-validate the dynamic program in tests and
/// benches; inputs must be small.
///
/// # Errors
/// Returns [`PrivBayesError::UnsupportedScore`] if `child_dim != 2`.
///
/// # Panics
/// Panics if the joint has more than 20 parent values.
pub fn f_score_exhaustive(
    values: &[f64],
    child_dim: usize,
    n: usize,
) -> Result<f64, PrivBayesError> {
    if child_dim != 2 {
        return Err(PrivBayesError::UnsupportedScore("F requires a binary child attribute".into()));
    }
    let cols = column_counts(values, n);
    assert!(cols.len() <= 20, "exhaustive F only feasible for small parents");
    let nf = n as f64;
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << cols.len()) {
        let (mut a, mut b) = (0u64, 0u64);
        for (j, &(c0, c1)) in cols.iter().enumerate() {
            if mask >> j & 1 == 0 {
                a += c0;
            } else {
                b += c1;
            }
        }
        let v = (0.5 - a as f64 / nf).max(0.0) + (0.5 - b as f64 / nf).max(0.0);
        best = best.min(v);
    }
    Ok(-best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Builds a probability joint from counts, child-fastest.
    fn joint(counts: &[(u64, u64)], n: u64) -> Vec<f64> {
        counts.iter().flat_map(|&(c0, c1)| [c0 as f64 / n as f64, c1 as f64 / n as f64]).collect()
    }

    #[test]
    fn table_3_example() {
        // Table 3(a): X binary, Π 4-valued, n=10:
        // row X=0: .6 0 0 0 ; row X=1: .1 .1 .1 .1.
        // The closest maximum joint (Table 3(b)) is at L1 distance 0.4, so
        // F = -0.4/2 = -0.2.
        let v = joint(&[(6, 1), (0, 1), (0, 1), (0, 1)], 10);
        let f = f_score(&v, 2, 10).unwrap();
        assert!((f - (-0.2)).abs() < 1e-12, "F = {f}, expected -0.2");
    }

    #[test]
    fn maximum_joint_scores_zero() {
        // Diagonal .5/.5 is itself a maximum joint distribution.
        let v = joint(&[(5, 0), (0, 5)], 10);
        assert!(f_score(&v, 2, 10).unwrap().abs() < 1e-12);
    }

    #[test]
    fn uniform_independent_scores_minus_half() {
        // Uniform 2×2: the nearest maximum joint (e.g. diag(.5, .5)) is at L1
        // distance 1, so F = −0.5 — the minimum over full-mass inputs,
        // matching range(F) = 0.5 for binary domains (§4.3).
        let v = joint(&[(1, 1), (1, 1)], 4);
        let f = f_score(&v, 2, 4).unwrap();
        assert!((f - (-0.5)).abs() < 1e-12, "F = {f}");
    }

    #[test]
    fn rejects_non_binary_child() {
        assert!(f_score(&[0.5, 0.25, 0.25], 3, 4).is_err());
        assert!(f_score_exhaustive(&[0.5, 0.25, 0.25], 3, 4).is_err());
    }

    #[test]
    fn empty_parent_set_single_column() {
        // Π = ∅: one column holding the child marginal. Best assignment puts
        // the full row mass in K0 or K1, whichever is larger.
        let v = joint(&[(7, 3)], 10);
        // Option A: a=7/10, b=0 -> 0 + .5 = .5. Option B: a=0, b=3/10 -> .5+.2=.7.
        let f = f_score(&v, 2, 10).unwrap();
        assert!((f - (-0.5)).abs() < 1e-12, "F = {f}");
    }

    #[test]
    fn range_is_bounded() {
        // F ∈ [-1, 0]: minimum at an empty-ish distribution; maximum at a
        // maximum joint. (range(F) = 0.5 for realistic inputs; the extreme -1
        // needs zero mass.)
        let v = joint(&[(0, 0)], 10);
        let f = f_score(&v, 2, 10).unwrap();
        assert!((f - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_bound_on_neighbors() {
        // Move one tuple between arbitrary cells; |ΔF| ≤ 1/n (Theorem 4.5).
        let n = 50u64;
        let base = [(10u64, 5u64), (8, 7), (12, 8)];
        let v1 = joint(&base, n);
        for (from_col, from_row) in [(0usize, 0usize), (1, 1), (2, 0)] {
            for (to_col, to_row) in [(0usize, 1usize), (2, 1), (1, 0)] {
                let mut c = base;
                let take = if from_row == 0 { &mut c[from_col].0 } else { &mut c[from_col].1 };
                *take -= 1;
                let put = if to_row == 0 { &mut c[to_col].0 } else { &mut c[to_col].1 };
                *put += 1;
                let v2 = joint(&c, n);
                let f1 = f_score(&v1, 2, n as usize).unwrap();
                let f2 = f_score(&v2, 2, n as usize).unwrap();
                assert!(
                    (f1 - f2).abs() <= 1.0 / n as f64 + 1e-12,
                    "sensitivity violated: {} > 1/n",
                    (f1 - f2).abs()
                );
            }
        }
    }

    proptest! {
        /// The dynamic program agrees exactly with exhaustive enumeration.
        #[test]
        fn prop_dp_matches_exhaustive(
            counts in proptest::collection::vec((0u64..30, 0u64..30), 1..8),
        ) {
            let n: u64 = counts.iter().map(|&(a, b)| a + b).sum::<u64>().max(1);
            let v = joint(&counts, n);
            let dp = f_score(&v, 2, n as usize).unwrap();
            let ex = f_score_exhaustive(&v, 2, n as usize).unwrap();
            prop_assert!((dp - ex).abs() < 1e-12, "dp={dp} exhaustive={ex}");
        }

        /// F is always in [-1, 0].
        #[test]
        fn prop_f_range(
            counts in proptest::collection::vec((0u64..50, 0u64..50), 1..10),
        ) {
            let n: u64 = counts.iter().map(|&(a, b)| a + b).sum::<u64>().max(1);
            let v = joint(&counts, n);
            let f = f_score(&v, 2, n as usize).unwrap();
            prop_assert!((-1.0..=1e-12).contains(&f));
        }

        /// Permuting parent columns leaves F unchanged (it only depends on
        /// the multiset of columns).
        #[test]
        fn prop_f_column_permutation_invariant(
            mut counts in proptest::collection::vec((0u64..20, 0u64..20), 2..8),
            swap in (0usize..8, 0usize..8),
        ) {
            let n: u64 = counts.iter().map(|&(a, b)| a + b).sum::<u64>().max(1);
            let before = f_score(&joint(&counts, n), 2, n as usize).unwrap();
            let (i, j) = (swap.0 % counts.len(), swap.1 % counts.len());
            counts.swap(i, j);
            let after = f_score(&joint(&counts, n), 2, n as usize).unwrap();
            prop_assert!((before - after).abs() < 1e-12);
        }
    }
}
