//! Score functions for AP-pair selection (§4.2, §4.3, §5.3; Table 4).
//!
//! All three functions score a joint distribution `Pr[X, Π]` supplied as a
//! flat slice in **parent-major order with the child varying fastest**:
//! `values[π · |dom(X)| + x] = Pr[X = x, Π = π]`. This is exactly the layout
//! produced by materialising a [`privbayes_marginals::ContingencyTable`] with
//! axes `[parents…, child]`.
//!
//! | Function | Range | Sensitivity | Time |
//! |----------|-------|-------------|------|
//! | `I`      | O(1)  | O(log n / n) (Lemma 4.1) | O(cells) |
//! | `F`      | O(1)  | 1/n (Theorem 4.5)        | O(n·2ᵏ) dynamic program |
//! | `R`      | O(1)  | 3/n + 2/n² (Theorem 5.3) | O(cells) |

pub mod f_score;
pub mod mi;
pub mod r_score;

use crate::error::PrivBayesError;

pub use f_score::{f_score, f_score_exhaustive, f_sensitivity};
pub use mi::{entropy, mi_sensitivity, mutual_information};
pub use r_score::{r_score, r_sensitivity};

/// Which score function the exponential mechanism uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreKind {
    /// Mutual information `I` (the first-cut solution, §4.2).
    MutualInformation,
    /// The surrogate `F` (§4.3): L1 distance to the nearest *maximum* joint
    /// distribution. Binary child only (Theorem 5.1 shows general-domain
    /// computation is NP-hard).
    F,
    /// The surrogate `R` (§5.3): L1 distance to the independent
    /// (zero-mutual-information) joint. Works on general domains.
    R,
}

impl ScoreKind {
    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScoreKind::MutualInformation => "I",
            ScoreKind::F => "F",
            ScoreKind::R => "R",
        }
    }

    /// Computes the score of a joint distribution (layout documented at the
    /// module level). `n` is the dataset cardinality (used by `F`'s dynamic
    /// program and available to sensitivity bounds).
    ///
    /// # Errors
    /// Returns [`PrivBayesError::UnsupportedScore`] if `F` is applied to a
    /// non-binary child.
    pub fn compute(
        self,
        values: &[f64],
        child_dim: usize,
        n: usize,
    ) -> Result<f64, PrivBayesError> {
        match self {
            ScoreKind::MutualInformation => Ok(mutual_information(values, child_dim)),
            ScoreKind::F => f_score(values, child_dim, n),
            ScoreKind::R => Ok(r_score(values, child_dim)),
        }
    }

    /// Sensitivity of the score for a dataset of `n` tuples.
    ///
    /// `either_binary` only matters for `I` (Lemma 4.1 distinguishes the case
    /// where `X` or `Π` has a binary domain).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn sensitivity(self, n: usize, either_binary: bool) -> f64 {
        assert!(n > 0, "sensitivity undefined for empty data");
        match self {
            ScoreKind::MutualInformation => mi_sensitivity(n, either_binary),
            ScoreKind::F => f_sensitivity(n),
            ScoreKind::R => r_sensitivity(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(ScoreKind::MutualInformation.name(), "I");
        assert_eq!(ScoreKind::F.name(), "F");
        assert_eq!(ScoreKind::R.name(), "R");
    }

    #[test]
    fn table_4_sensitivity_ordering() {
        // Table 4 and §5.3: S(F) < S(R)/3 … and both ≪ S(I).
        let n = 10_000;
        let sf = ScoreKind::F.sensitivity(n, true);
        let sr = ScoreKind::R.sensitivity(n, true);
        let si = ScoreKind::MutualInformation.sensitivity(n, true);
        assert!(sf < sr, "S(F)={sf} < S(R)={sr}");
        assert!(sr < si, "S(R)={sr} < S(I)={si}");
        assert!(sf <= sr / 3.0 + 1e-12, "S(F) is less than a third of S(R)");
        assert!(si > (n as f64).log2() / n as f64, "S(I) > log(n)/n");
    }

    #[test]
    fn f_on_non_binary_child_is_rejected() {
        // A 3-valued child: Theorem 5.1 territory.
        let joint = vec![0.2, 0.3, 0.5];
        let r = ScoreKind::F.compute(&joint, 3, 10);
        assert!(matches!(r, Err(PrivBayesError::UnsupportedScore(_))));
    }

    #[test]
    fn compute_dispatches() {
        // Independent uniform joint: I = 0, R = 0, F < 0.
        let joint = vec![0.25, 0.25, 0.25, 0.25];
        let n = 4;
        assert!(ScoreKind::MutualInformation.compute(&joint, 2, n).unwrap().abs() < 1e-12);
        assert!(ScoreKind::R.compute(&joint, 2, n).unwrap().abs() < 1e-12);
        assert!(ScoreKind::F.compute(&joint, 2, n).unwrap() < 0.0);
    }
}
