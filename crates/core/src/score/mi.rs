//! Mutual information `I(X, Π)` and its sensitivity (Equation 5, Lemma 4.1).

/// Shannon entropy (base 2) of a distribution slice; zero cells contribute 0.
#[must_use]
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.log2()).sum()
}

/// Mutual information `I(X, Π)` of a joint in parent-major/child-fastest
/// layout (see the [module docs](crate::score)).
///
/// # Panics
/// Panics if `values.len()` is not a multiple of `child_dim`.
#[must_use]
pub fn mutual_information(values: &[f64], child_dim: usize) -> f64 {
    assert!(child_dim > 0 && values.len().is_multiple_of(child_dim), "bad joint shape");
    let parent_dim = values.len() / child_dim;
    let mut px = vec![0.0f64; child_dim];
    let mut ppi = vec![0.0f64; parent_dim];
    for pi in 0..parent_dim {
        for x in 0..child_dim {
            let v = values[pi * child_dim + x];
            px[x] += v;
            ppi[pi] += v;
        }
    }
    let mut mi = 0.0;
    for pi in 0..parent_dim {
        for x in 0..child_dim {
            let v = values[pi * child_dim + x];
            if v > 0.0 {
                mi += v * (v / (px[x] * ppi[pi])).log2();
            }
        }
    }
    // Clamp tiny negative float residue.
    mi.max(0.0)
}

/// Sensitivity of `I` for `n` tuples (Lemma 4.1).
///
/// `either_binary`: whether `X` or `Π` has a binary domain (the smaller
/// bound applies).
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn mi_sensitivity(n: usize, either_binary: bool) -> f64 {
    assert!(n > 0);
    let n = n as f64;
    if either_binary {
        (1.0 / n) * n.log2() + ((n - 1.0) / n) * (n / (n - 1.0)).log2()
    } else {
        (2.0 / n) * ((n + 1.0) / 2.0).log2() + ((n - 1.0) / n) * ((n + 1.0) / (n - 1.0)).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entropy_known_values() {
        assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!(entropy(&[1.0, 0.0]).abs() < 1e-12);
        assert!((entropy(&[0.25; 4]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn independent_joint_has_zero_mi() {
        // Pr[X,Π] = Pr[X]·Pr[Π] with Pr[X] = (.3,.7), Pr[Π] = (.2,.5,.3).
        let px = [0.3, 0.7];
        let ppi = [0.2, 0.5, 0.3];
        let mut joint = Vec::new();
        for &q in &ppi {
            for &p in &px {
                joint.push(p * q);
            }
        }
        assert!(mutual_information(&joint, 2).abs() < 1e-12);
    }

    #[test]
    fn perfectly_correlated_binary_has_mi_one() {
        // X = Π uniform: diagonal .5/.5.
        let joint = [0.5, 0.0, 0.0, 0.5];
        assert!((mutual_information(&joint, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn example_4_4_maximum_joint_distributions() {
        // Both distributions of Example 4.4 have I = 1 (child binary,
        // parent ternary). Layout: child fastest.
        // First: columns a=(.5,0), b=(0,.5), c=(0,0).
        let d1 = [0.5, 0.0, 0.0, 0.5, 0.0, 0.0];
        assert!((mutual_information(&d1, 2) - 1.0).abs() < 1e-12);
        // Second: a=(0,.5), b=(.2,0), c=(.3,0).
        let d2 = [0.0, 0.5, 0.2, 0.0, 0.3, 0.0];
        assert!((mutual_information(&d2, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_decomposition_holds() {
        // I = H(X) + H(Π) − H(X,Π)  (Equation 12).
        let joint = [0.1, 0.2, 0.3, 0.15, 0.05, 0.2];
        let child_dim = 2;
        let parent_dim = 3;
        let mut px = [0.0; 2];
        let mut ppi = [0.0; 3];
        for pi in 0..parent_dim {
            for x in 0..child_dim {
                px[x] += joint[pi * child_dim + x];
                ppi[pi] += joint[pi * child_dim + x];
            }
        }
        let direct = mutual_information(&joint, child_dim);
        let via_entropy = entropy(&px) + entropy(&ppi) - entropy(&joint);
        assert!((direct - via_entropy).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_witness_binary_case() {
        // Lemma 4.1, Table 7: ΔI between those two neighbouring tables equals
        // the binary-case bound.
        let n = 100usize;
        let nf = n as f64;
        // D1: cells (x=0,π=0)=1/n, (x=1,π=1)=(n-1)/n; layout child-fastest,
        // parent dim 3.
        let d1 = [1.0 / nf, 0.0, 0.0, (nf - 1.0) / nf, 0.0, 0.0];
        let d2 = [0.0, 0.0, 0.0, (nf - 1.0) / nf, 0.0, 1.0 / nf];
        let delta = (mutual_information(&d1, 2) - mutual_information(&d2, 2)).abs();
        let bound = mi_sensitivity(n, true);
        assert!((delta - bound).abs() < 1e-9, "witness {delta} vs bound {bound}");
    }

    #[test]
    fn sensitivity_witness_general_case() {
        // Lemma 4.1, Table 6: the general-case witness with both domains of
        // size 3 achieves the general bound.
        let n = 101usize; // odd so (n+1)/2 is integral
        let nf = n as f64;
        let h = (nf - 1.0) / (2.0 * nf);
        // Layout: parent π ∈ {0,1,2} major, child x ∈ {0,1,2} fastest.
        // D1: (0,0)=1/n, (1,2)=h, (2,1)=h.
        let d1 = [1.0 / nf, 0.0, 0.0, 0.0, 0.0, h, 0.0, h, 0.0];
        // D2: (1,2)=h, (2,1)=h, (2,2)=1/n.
        let d2 = [0.0, 0.0, 0.0, 0.0, 0.0, h, 0.0, h, 1.0 / nf];
        let delta = (mutual_information(&d1, 3) - mutual_information(&d2, 3)).abs();
        let bound = mi_sensitivity(n, false);
        assert!((delta - bound).abs() < 1e-9, "witness {delta} vs bound {bound}");
        // And the general bound exceeds the binary bound.
        assert!(bound > mi_sensitivity(n, true));
    }

    proptest! {
        /// 0 ≤ I ≤ min(log|X|, log|Π|) for arbitrary joints.
        #[test]
        fn prop_mi_bounds(vals in proptest::collection::vec(0.0f64..1.0, 12..=12)) {
            let total: f64 = vals.iter().sum();
            prop_assume!(total > 1e-9);
            let joint: Vec<f64> = vals.iter().map(|v| v / total).collect();
            let mi = mutual_information(&joint, 3); // 3-child × 4-parent
            prop_assert!(mi >= 0.0);
            prop_assert!(mi <= 3f64.log2() + 1e-9);
        }

        /// I is symmetric in X and Π.
        #[test]
        fn prop_mi_symmetric(vals in proptest::collection::vec(0.0f64..1.0, 6..=6)) {
            let total: f64 = vals.iter().sum();
            prop_assume!(total > 1e-9);
            let joint: Vec<f64> = vals.iter().map(|v| v / total).collect();
            // joint laid out child-fastest, child_dim=2, parent_dim=3.
            let a = mutual_information(&joint, 2);
            // Transpose: child_dim=3, parent_dim=2.
            let mut t = vec![0.0; 6];
            for pi in 0..3 {
                for x in 0..2 {
                    t[x * 3 + pi] = joint[pi * 2 + x];
                }
            }
            let b = mutual_information(&t, 3);
            prop_assert!((a - b).abs() < 1e-9);
        }

        /// Monotonicity under merging parents: I(X, Π) ≤ I(X, Π′) when Π is a
        /// coarsening of Π′ (the property §5.2's maximality argument uses).
        #[test]
        fn prop_mi_monotone_coarsening(vals in proptest::collection::vec(0.0f64..1.0, 8..=8)) {
            let total: f64 = vals.iter().sum();
            prop_assume!(total > 1e-9);
            let joint: Vec<f64> = vals.iter().map(|v| v / total).collect();
            // child_dim=2, parent_dim=4; coarsen parents {0,1}->0, {2,3}->1.
            let fine = mutual_information(&joint, 2);
            let mut coarse = vec![0.0; 4];
            for pi in 0..4 {
                for x in 0..2 {
                    coarse[(pi / 2) * 2 + x] += joint[pi * 2 + x];
                }
            }
            prop_assert!(mutual_information(&coarse, 2) <= fine + 1e-9);
        }
    }
}
