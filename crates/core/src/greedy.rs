//! GreedyBayes network learning (Algorithms 2 and 4).
//!
//! Both variants repeatedly pick an attribute–parent pair from a candidate
//! set Ω: Algorithm 2 (all-binary data, fixed degree `k`) draws parent sets
//! from `(V choose min(k,|V|))`; Algorithm 4 (general domains) draws them
//! from the θ-usefulness-constrained maximal parent sets. The selection is
//! either the exponential mechanism at ε₁/(d−1) per round (private) or an
//! argmax (the paper's NoPrivacy / BestNetwork reference lines).
//!
//! All candidate joints are served by a per-run
//! [`CountEngine`](privbayes_marginals::CountEngine) (radix-coded columns, a
//! popcount fast path for binary axes, and cross-round joint memoisation),
//! and each round's candidate list is scored by a pool of scoped threads.
//! Scoring is deterministic — only [`select`] consumes randomness — and the
//! engine's integer-count contract makes every score bit-identical to the
//! sequential path, so the learned network does not depend on the worker
//! count.

use privbayes_data::Dataset;
use privbayes_dp::exponential::select_with_scale;
use privbayes_marginals::{Axis, CountEngine};
use rand::{Rng, RngExt};

use crate::error::PrivBayesError;
use crate::network::{ApPair, BayesianNetwork};
use crate::parent_sets::{maximal_parent_sets, maximal_parent_sets_generalized};
use crate::score::ScoreKind;
use crate::theta::tau_for_child;

/// Settings shared by both GreedyBayes variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedySettings {
    /// Score function for candidate AP pairs.
    pub score: ScoreKind,
    /// Network-learning budget ε₁; `None` selects by argmax (no privacy),
    /// which implements the paper's NoPrivacy and BestNetwork lines.
    pub epsilon1: Option<f64>,
    /// Cap on parent-set cardinality. `usize::MAX` is the paper-faithful
    /// setting; the experiment harness uses a small cap for tractability
    /// (documented in DESIGN.md §4).
    pub max_degree: usize,
    /// Scoring worker threads; `None` uses
    /// [`std::thread::available_parallelism`]. The learned network is
    /// bit-identical for every thread count (scores are deterministic and
    /// candidate order is preserved).
    pub threads: Option<usize>,
}

impl GreedySettings {
    /// Private learning with the given budget and score.
    #[must_use]
    pub fn private(score: ScoreKind, epsilon1: f64) -> Self {
        Self { score, epsilon1: Some(epsilon1), max_degree: usize::MAX, threads: None }
    }

    /// Non-private argmax learning (NoPrivacy / BestNetwork).
    #[must_use]
    pub fn non_private(score: ScoreKind) -> Self {
        Self { score, epsilon1: None, max_degree: usize::MAX, threads: None }
    }

    /// Returns a copy with the degree cap set.
    #[must_use]
    pub fn with_max_degree(mut self, cap: usize) -> Self {
        self.max_degree = cap;
        self
    }

    /// Returns a copy with an explicit scoring worker count (tests and
    /// benchmarks; `1` forces the sequential path).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Resolves an optional thread override against the machine's parallelism.
pub(crate) fn resolve_threads(threads: Option<usize>) -> usize {
    threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .max(1)
}

/// One candidate AP pair under consideration.
#[derive(Debug, Clone)]
struct Candidate {
    child: usize,
    parents: Vec<Axis>,
}

/// Scores `Pr[X, Π]` for one AP pair through the shared engine — the same
/// entry point the greedy rounds use, exposed for callers scoring a single
/// ad-hoc pair.
///
/// # Errors
/// Propagates score errors (e.g. `F` on a non-binary child).
pub fn score_candidate(
    engine: &CountEngine,
    child: usize,
    parents: &[Axis],
    score: ScoreKind,
) -> Result<f64, PrivBayesError> {
    let mut axes: Vec<Axis> = parents.to_vec();
    axes.push(Axis::raw(child));
    let table = engine.joint_table(&axes);
    let child_dim = engine.schema().attribute(child).domain_size();
    score.compute(table.values(), child_dim, engine.n())
}

/// Scores every candidate through the engine, preserving candidate order.
/// With `threads > 1` the list is split into contiguous chunks scored by
/// scoped workers; results are collected via the join handles, so the output
/// is the in-order concatenation regardless of scheduling.
fn score_candidates(
    engine: &CountEngine,
    candidates: &[Candidate],
    score: ScoreKind,
    threads: usize,
) -> Result<Vec<f64>, PrivBayesError> {
    let score_chunk = |chunk: &[Candidate]| -> Result<Vec<f64>, PrivBayesError> {
        let mut axes: Vec<Axis> = Vec::new();
        let mut joint: Vec<f64> = Vec::new();
        chunk
            .iter()
            .map(|cand| {
                axes.clear();
                axes.extend_from_slice(&cand.parents);
                axes.push(Axis::raw(cand.child));
                engine.joint_into(&axes, &mut joint);
                let child_dim = engine.schema().attribute(cand.child).domain_size();
                score.compute(&joint, child_dim, engine.n())
            })
            .collect()
    };

    let workers = threads.min(candidates.len()).max(1);
    if workers == 1 {
        return score_chunk(candidates);
    }
    let chunk_len = candidates.len().div_ceil(workers);
    let per_chunk: Vec<Result<Vec<f64>, PrivBayesError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || score_chunk(chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("scoring worker panicked")).collect()
    });
    let mut scores = Vec::with_capacity(candidates.len());
    for chunk in per_chunk {
        scores.extend(chunk?);
    }
    Ok(scores)
}

/// All size-`k` subsets of `items` (the paper's `(V choose k)`).
fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        let needed = k - cur.len();
        for i in start..=items.len().saturating_sub(needed) {
            cur.push(items[i]);
            rec(items, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    rec(items, k, 0, &mut cur, &mut out);
    out
}

/// Selects one candidate: exponential mechanism (private) or argmax.
fn select<R: Rng + ?Sized>(
    scores: &[f64],
    settings: &GreedySettings,
    d: usize,
    n: usize,
    all_binary: bool,
    rng: &mut R,
) -> Result<usize, PrivBayesError> {
    match settings.epsilon1 {
        Some(eps1) => {
            // Δ = (d−1)·S/ε₁ (§4.2): d−1 invocations compose to ε₁.
            let sensitivity = settings.score.sensitivity(n, all_binary);
            let delta = (d as f64 - 1.0) * sensitivity / eps1;
            Ok(select_with_scale(scores, delta, rng)?)
        }
        None => {
            let (mut best, mut best_score) = (0usize, f64::NEG_INFINITY);
            for (i, &s) in scores.iter().enumerate() {
                if s > best_score {
                    best = i;
                    best_score = s;
                }
            }
            Ok(best)
        }
    }
}

/// Algorithm 2: GreedyBayes with a fixed degree `k` (binary encodings).
/// Builds a fresh [`CountEngine`] over `data`; callers that already hold an
/// engine (and want its cache shared with distribution learning) should use
/// [`greedy_bayes_fixed_k_engine`].
///
/// # Errors
/// Returns [`PrivBayesError`] on score failures or invalid configuration.
pub fn greedy_bayes_fixed_k<R: Rng + ?Sized>(
    data: &Dataset,
    k: usize,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    greedy_bayes_fixed_k_engine(&CountEngine::new(data), k, settings, rng)
}

/// [`greedy_bayes_fixed_k`] over a caller-owned engine. The learned network
/// depends only on the underlying data and `rng` — never on the engine's
/// cache state — so sharing an engine across phases is purely a speedup.
///
/// # Errors
/// Returns [`PrivBayesError`] on score failures or invalid configuration.
pub fn greedy_bayes_fixed_k_engine<R: Rng + ?Sized>(
    engine: &CountEngine,
    k: usize,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    let schema = engine.schema();
    let d = schema.len();
    if d < 2 {
        return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
    }
    let k = k.min(settings.max_degree).min(d - 1);
    let n = engine.n();
    let all_binary = schema.all_binary();
    let threads = resolve_threads(settings.threads);

    let first = rng.random_range(0..d);
    let mut pairs = vec![ApPair::new(first, vec![])];
    let mut in_v = vec![false; d];
    in_v[first] = true;
    let mut v = vec![first];

    for _ in 2..=d {
        let subset_size = k.min(v.len());
        let parent_sets = combinations(&v, subset_size);
        let mut candidates = Vec::new();
        for child in (0..d).filter(|&x| !in_v[x]) {
            for parents in &parent_sets {
                candidates.push(Candidate {
                    child,
                    parents: parents.iter().copied().map(Axis::raw).collect(),
                });
            }
        }
        let scores = score_candidates(engine, &candidates, settings.score, threads)?;
        let chosen = select(&scores, settings, d, n, all_binary, rng)?;
        let c = candidates.swap_remove(chosen);
        in_v[c.child] = true;
        v.push(c.child);
        pairs.push(ApPair::generalized(c.child, c.parents));
    }
    BayesianNetwork::new(pairs, schema)
}

/// Algorithm 4: GreedyBayes with θ-usefulness-driven maximal parent sets
/// (vanilla and hierarchical encodings). `use_taxonomy` enables generalised
/// parent sets (Algorithm 6) where taxonomy trees are available. Builds a
/// fresh [`CountEngine`] over `data`; see [`greedy_bayes_adaptive_engine`]
/// for the shared-engine form.
///
/// # Errors
/// Returns [`PrivBayesError`] on score failures or invalid configuration.
pub fn greedy_bayes_adaptive<R: Rng + ?Sized>(
    data: &Dataset,
    theta: f64,
    epsilon2: f64,
    use_taxonomy: bool,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    greedy_bayes_adaptive_engine(
        &CountEngine::new(data),
        theta,
        epsilon2,
        use_taxonomy,
        settings,
        rng,
    )
}

/// [`greedy_bayes_adaptive`] over a caller-owned engine. The learned network
/// depends only on the underlying data and `rng` — never on the engine's
/// cache state — so sharing an engine across phases is purely a speedup.
///
/// # Errors
/// Returns [`PrivBayesError`] on score failures or invalid configuration.
pub fn greedy_bayes_adaptive_engine<R: Rng + ?Sized>(
    engine: &CountEngine,
    theta: f64,
    epsilon2: f64,
    use_taxonomy: bool,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    let schema = engine.schema();
    let d = schema.len();
    if d < 2 {
        return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
    }
    let n = engine.n();
    let all_binary = schema.all_binary();
    let threads = resolve_threads(settings.threads);
    let domain_sizes = schema.domain_sizes();
    let level_sizes: Vec<Vec<usize>> = schema
        .attributes()
        .iter()
        .map(|a| match (use_taxonomy, a.taxonomy()) {
            (true, Some(t)) => (0..t.height()).map(|l| t.level_size(l)).collect(),
            _ => vec![a.domain_size()],
        })
        .collect();

    let first = rng.random_range(0..d);
    let mut pairs = vec![ApPair::new(first, vec![])];
    let mut in_v = vec![false; d];
    in_v[first] = true;
    let mut v = vec![first];

    for _ in 2..=d {
        let mut candidates = Vec::new();
        for child in (0..d).filter(|&x| !in_v[x]) {
            let tau = tau_for_child(n, d, epsilon2, theta, domain_sizes[child]);
            let tops: Vec<Vec<Axis>> = if use_taxonomy {
                maximal_parent_sets_generalized(&v, &level_sizes, tau, settings.max_degree)
            } else {
                maximal_parent_sets(&v, &domain_sizes, tau, settings.max_degree)
                    .into_iter()
                    .map(|s| s.into_iter().map(Axis::raw).collect())
                    .collect()
            };
            if tops.is_empty() {
                // Algorithm 4 lines 7–8: even Pr[X] violates θ-usefulness;
                // model X as independent so every attribute is covered.
                candidates.push(Candidate { child, parents: Vec::new() });
            } else {
                for parents in tops {
                    candidates.push(Candidate { child, parents });
                }
            }
        }
        let scores = score_candidates(engine, &candidates, settings.score, threads)?;
        let chosen = select(&scores, settings, d, n, all_binary, rng)?;
        let c = candidates.swap_remove(chosen);
        in_v[c.child] = true;
        v.push(c.child);
        pairs.push(ApPair::generalized(c.child, c.parents));
    }
    BayesianNetwork::new(pairs, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema, TaxonomyTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A binary dataset where x1 ≈ x0 and x3 ≈ x2, with x0 ⊥ x2.
    fn correlated_binary(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("x0"),
            Attribute::binary("x1"),
            Attribute::binary("x2"),
            Attribute::binary("x3"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                let b = rng.random_range(0..2u32);
                let noise1 = rng.random::<f64>() < 0.05;
                let noise3 = rng.random::<f64>() < 0.05;
                vec![a, a ^ u32::from(noise1), b, b ^ u32::from(noise3)]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn combinations_enumeration() {
        assert_eq!(combinations(&[5, 7, 9], 2), vec![vec![5, 7], vec![5, 9], vec![7, 9]]);
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(&[1], 1), vec![vec![1]]);
    }

    #[test]
    fn non_private_greedy_finds_true_edges() {
        let data = correlated_binary(2000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let settings = GreedySettings::non_private(ScoreKind::MutualInformation);
        let net = greedy_bayes_fixed_k(&data, 1, &settings, &mut rng).unwrap();
        assert_eq!(net.degree(), 1);
        // The two strongly-correlated pairs must be joined by an edge (the
        // Chow-Liu tree necessarily adds one ~zero-MI edge between the
        // independent blocks, which is fine).
        let edges = net.edges();
        let has = |a: usize, b: usize| edges.contains(&(a, b)) || edges.contains(&(b, a));
        assert!(has(0, 1), "x0—x1 edge missing: {edges:?}");
        assert!(has(2, 3), "x2—x3 edge missing: {edges:?}");
    }

    #[test]
    fn private_greedy_produces_valid_network() {
        let data = correlated_binary(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for score in [ScoreKind::MutualInformation, ScoreKind::F, ScoreKind::R] {
            let settings = GreedySettings::private(score, 0.5);
            let net = greedy_bayes_fixed_k(&data, 2, &settings, &mut rng).unwrap();
            assert_eq!(net.len(), 4);
            assert!(net.degree() <= 2);
        }
    }

    #[test]
    fn parallel_scoring_is_bit_identical_to_sequential() {
        let data = correlated_binary(800, 21);
        for score in [ScoreKind::MutualInformation, ScoreKind::F, ScoreKind::R] {
            let run = |threads: usize| {
                let mut rng = StdRng::seed_from_u64(77);
                let settings = GreedySettings::private(score, 0.6).with_threads(threads);
                greedy_bayes_fixed_k(&data, 2, &settings, &mut rng).unwrap()
            };
            let sequential = run(1);
            for threads in [2, 3, 8] {
                assert_eq!(run(threads), sequential, "{score:?} threads={threads}");
            }
        }
    }

    #[test]
    fn fixed_k_zero_yields_independent_network() {
        let data = correlated_binary(200, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let settings = GreedySettings::private(ScoreKind::F, 0.1);
        let net = greedy_bayes_fixed_k(&data, 0, &settings, &mut rng).unwrap();
        assert_eq!(net.degree(), 0);
    }

    #[test]
    fn max_degree_caps_parent_sets() {
        let data = correlated_binary(500, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let settings = GreedySettings::private(ScoreKind::F, 1.0).with_max_degree(1);
        let net = greedy_bayes_fixed_k(&data, 3, &settings, &mut rng).unwrap();
        assert!(net.degree() <= 1);
    }

    #[test]
    fn first_k_pairs_have_prefix_parents() {
        // Algorithm 1's derivation of the first k conditionals relies on
        // Πᵢ = {X₁..Xᵢ₋₁} for i ≤ k and Π_{k+1} = {X₁..X_k}.
        let data = correlated_binary(300, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let k = 2;
        let settings = GreedySettings::private(ScoreKind::F, 1.0);
        let net = greedy_bayes_fixed_k(&data, k, &settings, &mut rng).unwrap();
        let children: Vec<usize> = net.pairs().iter().map(|p| p.child).collect();
        for (i, pair) in net.pairs().iter().enumerate().take(k + 1) {
            let parent_attrs: Vec<usize> = pair.parents.iter().map(|a| a.attr).collect();
            let expected: Vec<usize> = children[..i.min(k)].to_vec();
            let mut a = parent_attrs;
            let mut b = expected;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "pair {i} parents");
        }
    }

    fn mixed_dataset(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("b"),
            Attribute::categorical("c", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::categorical("e", 8)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(8).unwrap())
                .unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let c = rng.random_range(0..4u32);
                vec![u32::from(c >= 2), c, c * 2 + rng.random_range(0..2u32)]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn adaptive_greedy_respects_theta() {
        let data = mixed_dataset(1000, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let settings = GreedySettings::private(ScoreKind::R, 0.3);
        let net = greedy_bayes_adaptive(&data, 4.0, 0.7, false, &settings, &mut rng).unwrap();
        assert_eq!(net.len(), 3);
        // Every AP joint must satisfy the θ bound m ≤ nε₂/(2dθ).
        let bound = crate::theta::max_joint_cells(data.n(), data.d(), 0.7, 4.0);
        for pair in net.pairs() {
            let child_dim = data.schema().attribute(pair.child).domain_size() as f64;
            let parent_dim: f64 =
                pair.parents.iter().map(|ax| ax.size(data.schema()) as f64).product();
            assert!(
                pair.parents.is_empty() || child_dim * parent_dim <= bound + 1e-9,
                "AP pair exceeds θ bound"
            );
        }
    }

    #[test]
    fn adaptive_parallel_matches_sequential() {
        let data = mixed_dataset(600, 31);
        for (use_taxonomy, score) in
            [(false, ScoreKind::R), (true, ScoreKind::R), (false, ScoreKind::MutualInformation)]
        {
            let run = |threads: usize| {
                let mut rng = StdRng::seed_from_u64(32);
                let settings = GreedySettings::private(score, 0.4).with_threads(threads);
                greedy_bayes_adaptive(&data, 4.0, 0.6, use_taxonomy, &settings, &mut rng).unwrap()
            };
            let sequential = run(1);
            assert_eq!(run(4), sequential, "taxonomy={use_taxonomy} {score:?}");
        }
    }

    #[test]
    fn adaptive_with_taxonomy_can_generalize() {
        let data = mixed_dataset(1000, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let settings = GreedySettings::non_private(ScoreKind::R);
        // Tight budget: forces generalised parents if any.
        let net = greedy_bayes_adaptive(&data, 4.0, 0.05, true, &settings, &mut rng).unwrap();
        assert_eq!(net.len(), 3);
        for pair in net.pairs() {
            for ax in &pair.parents {
                let attr = data.schema().attribute(ax.attr);
                let height = attr.taxonomy().map_or(1, |t| t.height());
                assert!(ax.level < height);
            }
        }
    }

    #[test]
    fn tiny_budget_gives_empty_parents() {
        let data = mixed_dataset(50, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let settings = GreedySettings::private(ScoreKind::R, 0.01);
        let net = greedy_bayes_adaptive(&data, 4.0, 0.0001, false, &settings, &mut rng).unwrap();
        assert_eq!(net.degree(), 0, "θ-usefulness must reject all parent sets");
    }

    #[test]
    fn rejects_single_attribute() {
        let schema = Schema::new(vec![Attribute::binary("only")]).unwrap();
        let data = Dataset::from_rows(schema, &[vec![0], vec![1]]).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let settings = GreedySettings::private(ScoreKind::F, 1.0);
        assert!(greedy_bayes_fixed_k(&data, 1, &settings, &mut rng).is_err());
    }

    #[test]
    fn resolve_threads_floors_at_one() {
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }
}
