//! Maximal parent-set enumeration (Algorithms 5 and 6).
//!
//! Given the remaining candidate attributes `V` and a domain-size budget τ
//! (from θ-usefulness), these routines enumerate every *maximal* subset of
//! `V` whose joint domain fits within τ — plain subsets for the vanilla
//! encoding (Algorithm 5), and generalised subsets mixing taxonomy levels for
//! the hierarchical encoding (Algorithm 6).
//!
//! Both accept an additional `max_size` cap on the number of parents; the
//! paper's algorithms correspond to `max_size = usize::MAX`. The cap is a
//! documented tractability knob for the experiment harness (DESIGN.md §4):
//! maximality is then defined with respect to *both* constraints.

use std::collections::HashMap;
use std::rc::Rc;

use privbayes_marginals::Axis;

/// Enumerates the maximal subsets of `v` (attribute indices) whose domain
/// size product is ≤ `tau` and whose cardinality is ≤ `max_size`
/// (Algorithm 5).
///
/// Returns an empty collection when even the empty set violates τ (τ < 1);
/// the caller then falls back to the `(X, ∅)` pair (Algorithm 4 lines 7–8).
/// Sets are returned with ascending attribute indices.
#[must_use]
pub fn maximal_parent_sets(
    v: &[usize],
    domain_sizes: &[usize],
    tau: f64,
    max_size: usize,
) -> Vec<Vec<usize>> {
    let mut sorted: Vec<usize> = v.to_vec();
    sorted.sort_unstable();
    let mut memo = HashMap::new();
    plain_rec(&sorted, domain_sizes, tau, max_size, 0, &mut memo).as_ref().clone()
}

type PlainMemo = HashMap<(usize, usize, u64), Rc<Vec<Vec<usize>>>>;

fn plain_rec(
    v: &[usize],
    sizes: &[usize],
    tau: f64,
    slots: usize,
    pos: usize,
    memo: &mut PlainMemo,
) -> Rc<Vec<Vec<usize>>> {
    if tau < 1.0 {
        return Rc::new(Vec::new());
    }
    if pos == v.len() || slots == 0 {
        return Rc::new(vec![Vec::new()]);
    }
    let key = (pos, slots, tau.to_bits());
    if let Some(hit) = memo.get(&key) {
        return Rc::clone(hit);
    }

    let x = v[pos];
    // Without x.
    let mut s: Vec<Vec<usize>> = plain_rec(v, sizes, tau, slots, pos + 1, memo).as_ref().clone();
    // With x: recurse under the tightened budget, then merge.
    let with_x = plain_rec(v, sizes, tau / sizes[x] as f64, slots - 1, pos + 1, memo);
    if !with_x.is_empty() {
        let to_remove: std::collections::HashSet<&Vec<usize>> = with_x.iter().collect();
        s.retain(|z| !to_remove.contains(z));
        for z in with_x.iter() {
            let mut zx = Vec::with_capacity(z.len() + 1);
            zx.push(x);
            zx.extend_from_slice(z);
            s.push(zx);
        }
    }
    let rc = Rc::new(s);
    memo.insert(key, Rc::clone(&rc));
    rc
}

/// Enumerates maximal *generalised* subsets of `v` (Algorithm 6): each
/// attribute may participate at any taxonomy level, and maximality also
/// forbids lowering any member's generalisation level.
///
/// `level_sizes[a]` lists the domain size of attribute `a` at each level
/// (index 0 = raw); plain attributes have a single entry.
#[must_use]
pub fn maximal_parent_sets_generalized(
    v: &[usize],
    level_sizes: &[Vec<usize>],
    tau: f64,
    max_size: usize,
) -> Vec<Vec<Axis>> {
    let mut sorted: Vec<usize> = v.to_vec();
    sorted.sort_unstable();
    let mut memo = HashMap::new();
    gen_rec(&sorted, level_sizes, tau, max_size, 0, &mut memo).as_ref().clone()
}

type GenMemo = HashMap<(usize, usize, u64), Rc<Vec<Vec<Axis>>>>;

fn gen_rec(
    v: &[usize],
    level_sizes: &[Vec<usize>],
    tau: f64,
    slots: usize,
    pos: usize,
    memo: &mut GenMemo,
) -> Rc<Vec<Vec<Axis>>> {
    if tau < 1.0 {
        return Rc::new(Vec::new());
    }
    if pos == v.len() || slots == 0 {
        return Rc::new(vec![Vec::new()]);
    }
    let key = (pos, slots, tau.to_bits());
    if let Some(hit) = memo.get(&key) {
        return Rc::clone(hit);
    }

    let x = v[pos];
    let mut s: Vec<Vec<Axis>> = Vec::new();
    // `U` of Algorithm 6: bases already extended with a less-generalised x.
    let mut used: std::collections::HashSet<Vec<Axis>> = std::collections::HashSet::new();
    // Levels from least generalised (level 0, largest domain) upwards, so the
    // U-check keeps the most informative extension of each base.
    for (level, &size) in level_sizes[x].iter().enumerate() {
        let with_x = gen_rec(v, level_sizes, tau / size as f64, slots - 1, pos + 1, memo);
        for z in with_x.iter() {
            if used.contains(z) {
                continue;
            }
            used.insert(z.clone());
            let mut zx = Vec::with_capacity(z.len() + 1);
            zx.push(Axis { attr: x, level });
            zx.extend_from_slice(z);
            s.push(zx);
        }
    }
    // Bases with x excluded entirely (Algorithm 6 lines 9–11).
    for z in gen_rec(v, level_sizes, tau, slots, pos + 1, memo).iter() {
        if !used.contains(z) {
            s.push(z.clone());
        }
    }
    let rc = Rc::new(s);
    memo.insert(key, Rc::clone(&rc));
    rc
}

/// Joint domain size of a plain subset.
#[must_use]
pub fn subset_domain(set: &[usize], domain_sizes: &[usize]) -> f64 {
    set.iter().map(|&a| domain_sizes[a] as f64).product()
}

/// Joint domain size of a generalised subset.
#[must_use]
pub fn generalized_subset_domain(set: &[Axis], level_sizes: &[Vec<usize>]) -> f64 {
    set.iter().map(|ax| level_sizes[ax.attr][ax.level] as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const NO_CAP: usize = usize::MAX;

    #[test]
    fn binary_domains_yield_fixed_size_subsets() {
        // All-binary attributes with τ = 2^j: maximal sets are exactly the
        // size-j subsets (the bridge between Algorithm 4 and Lemma 4.8).
        let sizes = vec![2usize; 6];
        let v: Vec<usize> = (0..5).collect();
        let sets = maximal_parent_sets(&v, &sizes, 8.0, NO_CAP);
        assert_eq!(sets.len(), 10, "C(5,3) = 10");
        for s in &sets {
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn tau_below_one_returns_nothing() {
        let sizes = vec![2usize; 3];
        assert!(maximal_parent_sets(&[0, 1, 2], &sizes, 0.5, NO_CAP).is_empty());
    }

    #[test]
    fn tau_below_two_allows_only_empty_set() {
        let sizes = vec![2usize; 3];
        let sets = maximal_parent_sets(&[0, 1, 2], &sizes, 1.5, NO_CAP);
        assert_eq!(sets, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn whole_v_when_tau_is_large() {
        let sizes = vec![2usize, 3, 4];
        let sets = maximal_parent_sets(&[0, 1, 2], &sizes, 1000.0, NO_CAP);
        assert_eq!(sets, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn mixed_domains_respect_tau() {
        // sizes: a=2, b=8, c=3; τ=10: maximal sets are {a,c} (6), {b} (8).
        let sizes = vec![2usize, 8, 3];
        let mut sets = maximal_parent_sets(&[0, 1, 2], &sizes, 10.0, NO_CAP);
        sets.sort();
        assert_eq!(sets, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn max_size_cap_applies() {
        let sizes = vec![2usize; 5];
        let v: Vec<usize> = (0..5).collect();
        let sets = maximal_parent_sets(&v, &sizes, 1000.0, 2);
        assert_eq!(sets.len(), 10, "C(5,2) subsets at the cap");
        for s in &sets {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn generalized_reduces_to_plain_for_flat_attributes() {
        let level_sizes = vec![vec![2], vec![8], vec![3]];
        let sizes = vec![2usize, 8, 3];
        let plain = maximal_parent_sets(&[0, 1, 2], &sizes, 10.0, NO_CAP);
        let gen = maximal_parent_sets_generalized(&[0, 1, 2], &level_sizes, 10.0, NO_CAP);
        let gen_as_plain: Vec<Vec<usize>> = gen
            .iter()
            .map(|s| {
                assert!(s.iter().all(|ax| ax.level == 0));
                s.iter().map(|ax| ax.attr).collect()
            })
            .collect();
        let mut a = plain;
        let mut b = gen_as_plain;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn generalized_uses_coarser_levels_to_fit() {
        // Attribute 0 has levels (16, 4, 2); attribute 1 is binary. τ = 10:
        // {0@level1, 1} fits (4·2=8); {0@level0} alone does not (16 > 10);
        // maximal sets: {0(1), 1}. ({0(0)} violates τ; {0(2),1} is dominated
        // by {0(1),1}.)
        let level_sizes = vec![vec![16, 4, 2], vec![2]];
        let sets = maximal_parent_sets_generalized(&[0, 1], &level_sizes, 10.0, NO_CAP);
        assert_eq!(sets.len(), 1, "{sets:?}");
        let s = &sets[0];
        assert!(s.contains(&Axis { attr: 0, level: 1 }));
        assert!(s.contains(&Axis { attr: 1, level: 0 }));
    }

    #[test]
    fn generalized_prefers_finer_levels_when_both_fit() {
        let level_sizes = vec![vec![4, 2]];
        // τ = 5: level 0 (size 4) fits, so {0@0} is the unique maximal set.
        let sets = maximal_parent_sets_generalized(&[0], &level_sizes, 5.0, NO_CAP);
        assert_eq!(sets, vec![vec![Axis { attr: 0, level: 0 }]]);
    }

    #[test]
    fn generalized_mixes_levels_across_attributes() {
        // Two attributes with levels (8, 2) each, τ = 17:
        // candidates: {0@0,1@1} (16), {0@1,1@0} (16), {0@0} (8) dominated,
        // {0@1,1@1} (4) dominated. Expect exactly the two 16-cell sets.
        let level_sizes = vec![vec![8, 2], vec![8, 2]];
        let sets = maximal_parent_sets_generalized(&[0, 1], &level_sizes, 17.0, NO_CAP);
        assert_eq!(sets.len(), 2, "{sets:?}");
        for s in &sets {
            let dom = generalized_subset_domain(s, &level_sizes);
            assert!((dom - 16.0).abs() < 1e-9);
        }
    }

    /// Checks maximality semantics directly: every returned set fits, no
    /// returned set is contained in another, and no single-attribute
    /// extension fits.
    fn assert_maximal(v: &[usize], sizes: &[usize], tau: f64, cap: usize, sets: &[Vec<usize>]) {
        for (i, s) in sets.iter().enumerate() {
            assert!(subset_domain(s, sizes) <= tau + 1e-9, "set {s:?} violates tau");
            assert!(s.len() <= cap);
            for (j, t) in sets.iter().enumerate() {
                if i != j {
                    assert!(!s.iter().all(|a| t.contains(a)), "set {s:?} is contained in {t:?}");
                }
            }
            if s.len() < cap {
                for &a in v {
                    if !s.contains(&a) {
                        assert!(
                            subset_domain(s, sizes) * sizes[a] as f64 > tau,
                            "set {s:?} can absorb {a} without violating tau"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        /// Maximality invariants hold for random domain-size profiles.
        #[test]
        fn prop_maximality(
            sizes in proptest::collection::vec(2usize..12, 2..7),
            tau in 1.0f64..200.0,
        ) {
            let v: Vec<usize> = (0..sizes.len()).collect();
            let sets = maximal_parent_sets(&v, &sizes, tau, NO_CAP);
            prop_assert!(!sets.is_empty(), "tau ≥ 1 admits at least the empty set");
            assert_maximal(&v, &sizes, tau, usize::MAX, &sets);
        }

        /// All sets are distinct and sorted.
        #[test]
        fn prop_distinct_sorted(
            sizes in proptest::collection::vec(2usize..8, 2..7),
            tau in 1.0f64..100.0,
        ) {
            let v: Vec<usize> = (0..sizes.len()).collect();
            let sets = maximal_parent_sets(&v, &sizes, tau, NO_CAP);
            let mut seen = std::collections::HashSet::new();
            for s in &sets {
                prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(seen.insert(s.clone()));
            }
        }

        /// Generalised sets always fit τ and never repeat an attribute.
        #[test]
        fn prop_generalized_fits(
            heights in proptest::collection::vec(1usize..4, 2..5),
            tau in 1.0f64..100.0,
        ) {
            // Attribute a has level sizes 2^(h), 2^(h-1), ..., 2.
            let level_sizes: Vec<Vec<usize>> = heights
                .iter()
                .map(|&h| (0..h).map(|l| 1usize << (h - l)).collect())
                .collect();
            let v: Vec<usize> = (0..level_sizes.len()).collect();
            let sets = maximal_parent_sets_generalized(&v, &level_sizes, tau, NO_CAP);
            for s in &sets {
                prop_assert!(generalized_subset_domain(s, &level_sizes) <= tau + 1e-9);
                let mut attrs: Vec<usize> = s.iter().map(|ax| ax.attr).collect();
                attrs.sort_unstable();
                attrs.dedup();
                prop_assert_eq!(attrs.len(), s.len(), "attribute repeated in {:?}", s);
            }
        }
    }
}
