//! Direct inference from the noisy model — the paper's concluding-remarks
//! extension (§7): *"one direction for exploration is whether certain
//! questions could be answered directly from the materialized model and its
//! parameters, rather than via random sampling."*
//!
//! [`model_marginal`] computes the **exact** marginal distribution of the
//! model `Pr*_N[·]` over any attribute subset by variable elimination: the
//! query's non-ancestors are pruned (their conditionals integrate to one),
//! each remaining AP pair becomes a CPT factor, and the non-query variables
//! are summed out in a greedy smallest-intermediate-factor order. This
//! removes the sampling error from query answers; the privacy cost is
//! unchanged because the model is already differentially private
//! (post-processing).

use privbayes_data::Schema;
use privbayes_marginals::{Axis, ContingencyTable};

use crate::conditionals::NoisyModel;
use crate::error::PrivBayesError;

/// Default cap on the intermediate factor size (cells).
pub const DEFAULT_CELL_CAP: usize = 1 << 22;

/// Computes the exact model marginal `Pr*_N[attrs]`.
///
/// Attributes appear in the returned table in the order given. Only the
/// query's **ancestral closure** is materialised: a pair whose child is
/// neither queried nor an ancestor of a queried attribute integrates to one
/// (its conditional is normalised per parent configuration) and is skipped
/// exactly. The closure's variables are then eliminated greedily, smallest
/// intermediate factor first; if any intermediate factor would exceed
/// `cell_cap` cells, an error suggests falling back to sampling.
///
/// # Errors
/// Returns [`PrivBayesError::InvalidConfig`] for an empty/duplicated/out-of-
/// range query or when `cell_cap` is exceeded, and
/// [`PrivBayesError::InvalidNetwork`] if the model does not cover the schema.
pub fn model_marginal(
    model: &NoisyModel,
    schema: &Schema,
    attrs: &[usize],
    cell_cap: usize,
) -> Result<ContingencyTable, PrivBayesError> {
    let d = schema.len();
    if model.conditionals.len() != d {
        return Err(PrivBayesError::InvalidNetwork(format!(
            "model covers {} attributes, schema has {d}",
            model.conditionals.len()
        )));
    }
    if attrs.is_empty() {
        return Err(PrivBayesError::InvalidConfig("empty query".into()));
    }
    for (i, &a) in attrs.iter().enumerate() {
        if a >= d {
            return Err(PrivBayesError::InvalidConfig(format!("attribute {a} out of range")));
        }
        if attrs[..i].contains(&a) {
            return Err(PrivBayesError::InvalidConfig(format!("attribute {a} repeated")));
        }
    }

    // Ancestral closure of the query. Parents precede their children in the
    // conditional list, so one reverse sweep marks every ancestor.
    let mut needed = vec![false; d];
    for &a in attrs {
        needed[a] = true;
    }
    for cond in model.conditionals.iter().rev() {
        if needed[cond.child] {
            for axis in &cond.parents {
                needed[axis.attr] = true;
            }
        }
    }

    // One factor per needed pair, expanded over RAW parent domains so that
    // factors mentioning an attribute at different generalisation levels
    // still join on the raw code.
    let mut factors: Vec<Factor> = Vec::new();
    for cond in model.conditionals.iter().filter(|c| needed[c.child]) {
        factors.push(Factor::from_conditional(cond, schema, cell_cap)?);
    }

    // Greedy min-size variable elimination of every non-query attribute in
    // the closure: repeatedly eliminate the variable whose bucket join
    // produces the smallest intermediate factor.
    let mut to_eliminate: Vec<usize> =
        (0..d).filter(|&a| needed[a] && !attrs.contains(&a)).collect();
    while !to_eliminate.is_empty() {
        let best = to_eliminate
            .iter()
            .enumerate()
            .min_by(|a, b| {
                elimination_cost(&factors, *a.1).total_cmp(&elimination_cost(&factors, *b.1))
            })
            .map(|(i, _)| i)
            .expect("nonempty elimination set");
        let var = to_eliminate.swap_remove(best);
        eliminate(&mut factors, var, cell_cap)?;
    }

    // Join the survivors (all scoped within the query attributes).
    let mut result = Factor::unit();
    for f in factors {
        result = result.join(&f, cell_cap)?;
    }
    let axes: Vec<Axis> = result.scope.iter().map(|&a| Axis::raw(a)).collect();
    let table = ContingencyTable::from_parts(axes, result.dims, result.values);
    Ok(table.project_attrs(attrs))
}

/// Computes the exact model conditional `Pr*_N[targets | evidence]`.
///
/// Evidence is a list of `(attribute, observed code)` pairs; the result is a
/// distribution over the target attributes in the order given, normalised
/// within the evidence slice. Computation is the same pruned variable
/// elimination as [`model_marginal`] with the evidence variables *reduced*
/// (their factors sliced at the observed code) instead of eliminated — so
/// conditioning on evidence is never more expensive than the corresponding
/// marginal. Like everything computed from the released model, this is
/// post-processing: no privacy budget is consumed.
///
/// # Errors
/// Returns [`PrivBayesError::InvalidConfig`] for an empty/duplicated/out-of-
/// range query, evidence codes outside their domains, overlap between
/// targets and evidence, evidence with probability zero under the model, or
/// when `cell_cap` is exceeded; [`PrivBayesError::InvalidNetwork`] if the
/// model does not cover the schema.
pub fn model_conditional(
    model: &NoisyModel,
    schema: &Schema,
    targets: &[usize],
    evidence: &[(usize, u32)],
    cell_cap: usize,
) -> Result<ContingencyTable, PrivBayesError> {
    let d = schema.len();
    if model.conditionals.len() != d {
        return Err(PrivBayesError::InvalidNetwork(format!(
            "model covers {} attributes, schema has {d}",
            model.conditionals.len()
        )));
    }
    if targets.is_empty() {
        return Err(PrivBayesError::InvalidConfig("empty target set".into()));
    }
    for (i, &a) in targets.iter().enumerate() {
        if a >= d {
            return Err(PrivBayesError::InvalidConfig(format!("target {a} out of range")));
        }
        if targets[..i].contains(&a) {
            return Err(PrivBayesError::InvalidConfig(format!("target {a} repeated")));
        }
    }
    for (i, &(a, code)) in evidence.iter().enumerate() {
        if a >= d {
            return Err(PrivBayesError::InvalidConfig(format!(
                "evidence attribute {a} out of range"
            )));
        }
        if !schema.attribute(a).domain().contains(code) {
            return Err(PrivBayesError::InvalidConfig(format!(
                "evidence code {code} outside the domain of attribute {a}"
            )));
        }
        if targets.contains(&a) {
            return Err(PrivBayesError::InvalidConfig(format!(
                "attribute {a} is both target and evidence"
            )));
        }
        if evidence[..i].iter().any(|&(b, _)| b == a) {
            return Err(PrivBayesError::InvalidConfig(format!("evidence attribute {a} repeated")));
        }
    }

    // Closure of targets ∪ evidence.
    let mut needed = vec![false; d];
    for &a in targets {
        needed[a] = true;
    }
    for &(a, _) in evidence {
        needed[a] = true;
    }
    for cond in model.conditionals.iter().rev() {
        if needed[cond.child] {
            for axis in &cond.parents {
                needed[axis.attr] = true;
            }
        }
    }

    // Build factors and slice out the evidence immediately: reducing shrinks
    // every factor before any join happens.
    let mut factors: Vec<Factor> = Vec::new();
    for cond in model.conditionals.iter().filter(|c| needed[c.child]) {
        let mut factor = Factor::from_conditional(cond, schema, cell_cap)?;
        for &(a, code) in evidence {
            if factor.scope.contains(&a) {
                factor = factor.reduce(a, code as usize);
            }
        }
        factors.push(factor);
    }

    // Eliminate everything that is neither target nor evidence (evidence is
    // already gone from every scope).
    let mut to_eliminate: Vec<usize> = (0..d)
        .filter(|&a| needed[a] && !targets.contains(&a) && !evidence.iter().any(|&(e, _)| e == a))
        .collect();
    while !to_eliminate.is_empty() {
        let best = to_eliminate
            .iter()
            .enumerate()
            .min_by(|a, b| {
                elimination_cost(&factors, *a.1).total_cmp(&elimination_cost(&factors, *b.1))
            })
            .map(|(i, _)| i)
            .expect("nonempty elimination set");
        let var = to_eliminate.swap_remove(best);
        eliminate(&mut factors, var, cell_cap)?;
    }

    let mut result = Factor::unit();
    for f in factors {
        result = result.join(&f, cell_cap)?;
    }
    // `result` carries the unnormalised Pr*[targets, evidence]; normalise by
    // the evidence probability.
    let total: f64 = result.values.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return Err(PrivBayesError::InvalidConfig(
            "evidence has probability zero under the model".into(),
        ));
    }
    for v in &mut result.values {
        *v /= total;
    }
    let axes: Vec<Axis> = result.scope.iter().map(|&a| Axis::raw(a)).collect();
    let table = ContingencyTable::from_parts(axes, result.dims, result.values);
    Ok(table.project_attrs(targets))
}

/// Computes the exact model marginal `Pr*_N[attrs]` by **θ-projection**: a
/// direct, deterministic enumeration of the query's ancestral closure. This
/// is the canonical algorithm behind the query API's `/v1/models/{id}/query`
/// endpoint; [`model_marginal`] computes the same distribution faster via
/// variable elimination but with an elimination-order-dependent floating-
/// point summation, so only θ-projection answers are **bit-reproducible**
/// across releases and against the independent oracle in
/// `privbayes_bench::reference`.
///
/// The operation order is part of the contract (two independent
/// implementations following it produce bit-identical tables):
///
/// 1. Prune to the query's **ancestral closure** (non-ancestors integrate to
///    one and are skipped exactly).
/// 2. Enumerate the closure's raw configurations in row-major order over the
///    closure attributes sorted ascending by index (last attribute fastest).
/// 3. Per configuration, multiply the conditionals `Pr*[child | parents]` in
///    **network order** (the model's conditional list order), generalised
///    parents resolved through their taxonomies.
/// 4. Accumulate each configuration's probability into the output cell
///    (query coordinates in the order given) in enumeration order.
///
/// # Errors
/// Returns [`PrivBayesError::InvalidConfig`] for an empty/duplicated/out-of-
/// range query or when the closure (or output) would exceed `cell_cap`
/// cells, and [`PrivBayesError::InvalidNetwork`] if the model does not cover
/// the schema.
pub fn theta_projection(
    model: &NoisyModel,
    schema: &Schema,
    attrs: &[usize],
    cell_cap: usize,
) -> Result<ContingencyTable, PrivBayesError> {
    let d = schema.len();
    if model.conditionals.len() != d {
        return Err(PrivBayesError::InvalidNetwork(format!(
            "model covers {} attributes, schema has {d}",
            model.conditionals.len()
        )));
    }
    if attrs.is_empty() {
        return Err(PrivBayesError::InvalidConfig("empty query".into()));
    }
    for (i, &a) in attrs.iter().enumerate() {
        if a >= d {
            return Err(PrivBayesError::InvalidConfig(format!("attribute {a} out of range")));
        }
        if attrs[..i].contains(&a) {
            return Err(PrivBayesError::InvalidConfig(format!("attribute {a} repeated")));
        }
    }

    // Step 1: ancestral closure (parents precede children, so one reverse
    // sweep marks every ancestor).
    let mut needed = vec![false; d];
    for &a in attrs {
        needed[a] = true;
    }
    for cond in model.conditionals.iter().rev() {
        if needed[cond.child] {
            for axis in &cond.parents {
                needed[axis.attr] = true;
            }
        }
    }
    let closure: Vec<usize> = (0..d).filter(|&a| needed[a]).collect();
    let closure_dims: Vec<usize> =
        closure.iter().map(|&a| schema.attribute(a).domain_size()).collect();
    let mut closure_cells = 1usize;
    for &dim in &closure_dims {
        closure_cells = closure_cells.saturating_mul(dim);
        if closure_cells > cell_cap {
            return Err(PrivBayesError::InvalidConfig(format!(
                "theta projection would enumerate more than {cell_cap} closure cells; \
                 use model_marginal or sampling for this query"
            )));
        }
    }

    let out_dims: Vec<usize> = attrs.iter().map(|&a| schema.attribute(a).domain_size()).collect();
    let out_cells: usize = out_dims.iter().product();
    // The query is a subset of the closure, so its cells can't exceed the
    // (already checked) closure cells; guard anyway for clarity.
    if out_cells > cell_cap {
        return Err(cap_error(out_cells, cell_cap));
    }
    let mut out_strides = vec![1usize; attrs.len()];
    for i in (0..attrs.len().saturating_sub(1)).rev() {
        out_strides[i] = out_strides[i + 1] * out_dims[i + 1];
    }

    // Conditionals participating in the product, in network order.
    let conds: Vec<&crate::conditionals::Conditional> =
        model.conditionals.iter().filter(|c| needed[c.child]).collect();

    // Steps 2–4: row-major mixed-radix enumeration of the closure.
    let mut values = vec![0.0f64; out_cells];
    let mut tuple = vec![0u32; d]; // raw codes of the current configuration
    let mut codes: Vec<usize> = Vec::new();
    loop {
        // Step 3: the configuration's probability, conditionals in network
        // order, generalised parents resolved per configuration.
        let mut p = 1.0f64;
        for cond in &conds {
            codes.clear();
            for axis in &cond.parents {
                let raw = tuple[axis.attr];
                let code = if axis.level == 0 {
                    raw
                } else {
                    schema
                        .attribute(axis.attr)
                        .taxonomy()
                        .expect("validated by BayesianNetwork::new")
                        .generalize(raw, axis.level)
                };
                codes.push(code as usize);
            }
            let slice = cond.child_distribution(cond.parent_index(&codes));
            p *= slice[tuple[cond.child] as usize];
        }
        // Step 4: accumulate into the output cell.
        let mut out_idx = 0usize;
        for (&a, &stride) in attrs.iter().zip(&out_strides) {
            out_idx += tuple[a] as usize * stride;
        }
        values[out_idx] += p;

        // Step 2's increment: last closure attribute fastest.
        let mut carry = true;
        for (&a, &dim) in closure.iter().zip(&closure_dims).rev() {
            tuple[a] += 1;
            if (tuple[a] as usize) < dim {
                carry = false;
                break;
            }
            tuple[a] = 0;
        }
        if carry {
            break;
        }
    }

    let axes: Vec<Axis> = attrs.iter().map(|&a| Axis::raw(a)).collect();
    Ok(ContingencyTable::from_parts(axes, out_dims, values))
}

/// A dense factor over raw attributes (row-major, last axis fastest).
#[derive(Debug, Clone)]
struct Factor {
    scope: Vec<usize>,
    dims: Vec<usize>,
    values: Vec<f64>,
}

fn cap_error(cells: usize, cap: usize) -> PrivBayesError {
    PrivBayesError::InvalidConfig(format!(
        "inference factor would need {cells} cells (cap {cap}); use sampling for this query"
    ))
}

impl Factor {
    /// The multiplicative identity: a single cell of mass 1.
    fn unit() -> Self {
        Self { scope: Vec::new(), dims: Vec::new(), values: vec![1.0] }
    }

    /// Builds the CPT factor of one AP pair over raw domains. Generalised
    /// parents are resolved through the taxonomy per raw configuration.
    fn from_conditional(
        cond: &crate::conditionals::Conditional,
        schema: &Schema,
        cell_cap: usize,
    ) -> Result<Self, PrivBayesError> {
        let mut scope: Vec<usize> = cond.parents.iter().map(|axis| axis.attr).collect();
        let mut dims: Vec<usize> =
            scope.iter().map(|&a| schema.attribute(a).domain_size()).collect();
        scope.push(cond.child);
        dims.push(cond.child_dim);
        let cells: usize = dims.iter().product();
        if cells > cell_cap {
            return Err(cap_error(cells, cell_cap));
        }
        let mut values = vec![0.0f64; cells];
        let parent_dims = &dims[..dims.len() - 1];
        let mut raw = vec![0usize; cond.parents.len()];
        let mut codes = vec![0usize; cond.parents.len()];
        let mut base = 0usize;
        loop {
            for (slot, axis) in cond.parents.iter().enumerate() {
                codes[slot] = if axis.level == 0 {
                    raw[slot]
                } else {
                    schema
                        .attribute(axis.attr)
                        .taxonomy()
                        .expect("validated by BayesianNetwork::new")
                        .generalize(raw[slot] as u32, axis.level) as usize
                };
            }
            let slice = cond.child_distribution(cond.parent_index(&codes));
            values[base..base + cond.child_dim].copy_from_slice(slice);
            base += cond.child_dim;
            // Mixed-radix increment over the raw parent configuration.
            let mut carry = true;
            for slot in (0..raw.len()).rev() {
                raw[slot] += 1;
                if raw[slot] < parent_dims[slot] {
                    carry = false;
                    break;
                }
                raw[slot] = 0;
            }
            if carry {
                break;
            }
        }
        Ok(Self { scope, dims, values })
    }

    /// Pointwise product over the union scope (self's order, then other's
    /// new variables).
    fn join(&self, other: &Factor, cell_cap: usize) -> Result<Factor, PrivBayesError> {
        let mut scope = self.scope.clone();
        let mut dims = self.dims.clone();
        for (&v, &dim) in other.scope.iter().zip(&other.dims) {
            if !scope.contains(&v) {
                scope.push(v);
                dims.push(dim);
            }
        }
        let cells: usize = dims.iter().product();
        if cells > cell_cap {
            return Err(cap_error(cells, cell_cap));
        }
        // Per union coordinate, the stride into each operand (0 if absent).
        let stride_of = |f: &Factor| -> Vec<usize> {
            let mut strides = vec![1usize; f.scope.len()];
            for j in (0..f.scope.len().saturating_sub(1)).rev() {
                strides[j] = strides[j + 1] * f.dims[j + 1];
            }
            scope
                .iter()
                .map(|v| f.scope.iter().position(|s| s == v).map_or(0, |p| strides[p]))
                .collect()
        };
        let stride_a = stride_of(self);
        let stride_b = stride_of(other);

        let mut values = vec![0.0f64; cells];
        let mut coords = vec![0usize; scope.len()];
        let mut ia = 0usize;
        let mut ib = 0usize;
        for slot in values.iter_mut() {
            *slot = self.values[ia] * other.values[ib];
            // Mixed-radix increment with incremental index maintenance.
            for j in (0..coords.len()).rev() {
                coords[j] += 1;
                ia += stride_a[j];
                ib += stride_b[j];
                if coords[j] < dims[j] {
                    break;
                }
                coords[j] = 0;
                ia -= stride_a[j] * dims[j];
                ib -= stride_b[j] * dims[j];
            }
        }
        Ok(Factor { scope, dims, values })
    }

    /// Slices the factor at `var = code`, removing `var` from the scope.
    fn reduce(&self, var: usize, code: usize) -> Factor {
        let pos = self.scope.iter().position(|&v| v == var).expect("var in scope");
        assert!(code < self.dims[pos], "evidence code validated by caller");
        let scope: Vec<usize> =
            self.scope.iter().enumerate().filter(|&(j, _)| j != pos).map(|(_, &v)| v).collect();
        let dims: Vec<usize> =
            self.dims.iter().enumerate().filter(|&(j, _)| j != pos).map(|(_, &d)| d).collect();
        let inner: usize = self.dims[pos + 1..].iter().product();
        let var_dim = self.dims[pos];
        let cells: usize = dims.iter().product();
        let mut values = Vec::with_capacity(cells);
        let block = inner * var_dim;
        for outer in 0..self.values.len() / block {
            let start = outer * block + code * inner;
            values.extend_from_slice(&self.values[start..start + inner]);
        }
        Factor { scope, dims, values }
    }

    /// Sums out one variable.
    fn sum_out(&self, var: usize) -> Factor {
        let pos = self.scope.iter().position(|&v| v == var).expect("var in scope");
        let scope: Vec<usize> =
            self.scope.iter().enumerate().filter(|&(j, _)| j != pos).map(|(_, &v)| v).collect();
        let dims: Vec<usize> =
            self.dims.iter().enumerate().filter(|&(j, _)| j != pos).map(|(_, &d)| d).collect();
        let cells: usize = dims.iter().product();
        let inner: usize = self.dims[pos + 1..].iter().product();
        let var_dim = self.dims[pos];
        let mut values = vec![0.0f64; cells];
        for (idx, &v) in self.values.iter().enumerate() {
            let outer = idx / (inner * var_dim);
            let rest = idx % inner;
            values[outer * inner + rest] += v;
        }
        Factor { scope, dims, values }
    }
}

/// Size (cells) of the factor produced by eliminating `var`, as f64 to avoid
/// overflow while comparing candidate orders.
fn elimination_cost(factors: &[Factor], var: usize) -> f64 {
    let mut scope: Vec<usize> = Vec::new();
    let mut cost = 1.0f64;
    for f in factors {
        if !f.scope.contains(&var) {
            continue;
        }
        for (&v, &dim) in f.scope.iter().zip(&f.dims) {
            if v != var && !scope.contains(&v) {
                scope.push(v);
                cost *= dim as f64;
            }
        }
    }
    cost
}

/// Joins every factor mentioning `var`, sums `var` out, and pushes the
/// result back.
fn eliminate(factors: &mut Vec<Factor>, var: usize, cell_cap: usize) -> Result<(), PrivBayesError> {
    let mut bucket = Factor::unit();
    let mut rest = Vec::with_capacity(factors.len());
    for f in factors.drain(..) {
        if f.scope.contains(&var) {
            bucket = bucket.join(&f, cell_cap)?;
        } else {
            rest.push(f);
        }
    }
    *factors = rest;
    if bucket.scope.contains(&var) {
        factors.push(bucket.sum_out(var));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditionals::noisy_conditionals_general;
    use crate::network::{ApPair, BayesianNetwork};
    use crate::sampler::sample_synthetic;
    use privbayes_data::{Attribute, Dataset, TaxonomyTree};
    use privbayes_marginals::total_variation;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn chain_model() -> (Dataset, NoisyModel) {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::categorical("c", 3).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<u32>> = (0..2000)
            .map(|_| {
                let a = rng.random_range(0..2u32);
                let b = if rng.random::<f64>() < 0.85 { a } else { 1 - a };
                let c = (a + b + u32::from(rng.random::<f64>() < 0.3)) % 3;
                vec![a, b, c]
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![0, 1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        (data, model)
    }

    #[test]
    fn exact_marginal_matches_empirical_data_when_noise_free() {
        let (data, model) = chain_model();
        for attrs in [vec![0usize], vec![1], vec![2], vec![0, 2], vec![1, 2], vec![0, 1, 2]] {
            let inferred = model_marginal(&model, data.schema(), &attrs, DEFAULT_CELL_CAP).unwrap();
            let axes: Vec<Axis> = attrs.iter().map(|&a| Axis::raw(a)).collect();
            let empirical = ContingencyTable::from_dataset(&data, &axes);
            let tvd = total_variation(inferred.values(), empirical.values());
            assert!(tvd < 1e-9, "attrs {attrs:?}: tvd {tvd}");
        }
    }

    #[test]
    fn inference_agrees_with_large_sample_monte_carlo() {
        let (data, model) = chain_model();
        let mut rng = StdRng::seed_from_u64(3);
        let sample = sample_synthetic(&model, data.schema(), 100_000, &mut rng).unwrap();
        let inferred = model_marginal(&model, data.schema(), &[1, 2], DEFAULT_CELL_CAP).unwrap();
        let empirical = ContingencyTable::from_dataset(&sample, &[Axis::raw(1), Axis::raw(2)]);
        let tvd = total_variation(inferred.values(), empirical.values());
        assert!(tvd < 0.01, "sampling must converge to the exact answer, tvd {tvd}");
    }

    #[test]
    fn output_is_a_distribution_in_query_order() {
        let (data, model) = chain_model();
        let t = model_marginal(&model, data.schema(), &[2, 0], DEFAULT_CELL_CAP).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.axes()[0].attr, 2);
        assert!((t.total() - 1.0).abs() < 1e-9);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn generalized_parents_are_handled() {
        let schema = Schema::new(vec![
            Attribute::categorical("g", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::binary("y"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..400u32).map(|i| vec![i % 4, u32::from(i % 4 >= 2)]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::generalized(1, vec![Axis { attr: 0, level: 1 }])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let t = model_marginal(&model, data.schema(), &[0, 1], DEFAULT_CELL_CAP).unwrap();
        let empirical = ContingencyTable::from_dataset(&data, &[Axis::raw(0), Axis::raw(1)]);
        assert!(total_variation(t.values(), empirical.values()) < 1e-9);
    }

    #[test]
    fn rejects_bad_queries_and_caps() {
        let (data, model) = chain_model();
        assert!(model_marginal(&model, data.schema(), &[], DEFAULT_CELL_CAP).is_err());
        assert!(model_marginal(&model, data.schema(), &[0, 0], DEFAULT_CELL_CAP).is_err());
        assert!(model_marginal(&model, data.schema(), &[9], DEFAULT_CELL_CAP).is_err());
        let r = model_marginal(&model, data.schema(), &[0, 1, 2], 2);
        assert!(matches!(r, Err(PrivBayesError::InvalidConfig(_))), "cap must trigger");
    }

    #[test]
    fn non_ancestors_are_pruned_before_materialisation() {
        // A huge-domain attribute that is neither queried nor an ancestor of
        // the query must not count against the cell cap at all.
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("huge", 1000).unwrap(),
            Attribute::binary("b"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> =
            (0..500u32).map(|i| vec![i % 2, i % 1000, (i % 2) ^ u32::from(i % 7 == 0)]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![0])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        // Cap of 8 cells: materialising `huge` (2 × 1000 cells) would fail,
        // but the pruned query {a, b} needs only 4 cells.
        let t = model_marginal(&model, data.schema(), &[0, 2], 8).unwrap();
        let empirical = ContingencyTable::from_dataset(&data, &[Axis::raw(0), Axis::raw(2)]);
        assert!(total_variation(t.values(), empirical.values()) < 1e-9);
        // Querying `huge` itself still trips the cap, as it must.
        assert!(model_marginal(&model, data.schema(), &[1], 8).is_err());
    }

    #[test]
    fn isolated_roots_collapse_the_frontier() {
        // Attribute `a` is a root that is never a parent and not queried:
        // right after its pair the frontier holds only dead attributes and
        // must collapse to a scalar — the regression that once panicked in
        // `project(&[])`.
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::categorical("c", 3).unwrap(),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..300u32)
            .map(|i| vec![i % 2, (i / 2) % 2, ((i / 2) % 2) + (i % 3 == 0) as u32])
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        for attrs in [vec![2usize], vec![1, 2], vec![2, 1]] {
            let t = model_marginal(&model, data.schema(), &attrs, DEFAULT_CELL_CAP).unwrap();
            let axes: Vec<Axis> = attrs.iter().map(|&a| Axis::raw(a)).collect();
            let empirical = ContingencyTable::from_dataset(&data, &axes);
            assert!(total_variation(t.values(), empirical.values()) < 1e-9, "attrs {attrs:?}");
        }
    }

    #[test]
    fn theta_projection_agrees_with_variable_elimination() {
        let (data, model) = chain_model();
        for attrs in [vec![0usize], vec![2], vec![2, 0], vec![0, 1, 2]] {
            let ve = model_marginal(&model, data.schema(), &attrs, DEFAULT_CELL_CAP).unwrap();
            let proj = theta_projection(&model, data.schema(), &attrs, DEFAULT_CELL_CAP).unwrap();
            assert_eq!(proj.axes(), ve.axes(), "attrs {attrs:?}");
            assert_eq!(proj.dims(), ve.dims(), "attrs {attrs:?}");
            let tvd = total_variation(proj.values(), ve.values());
            assert!(tvd < 1e-12, "attrs {attrs:?}: tvd {tvd}");
        }
    }

    #[test]
    fn theta_projection_is_bitwise_deterministic() {
        let (data, model) = chain_model();
        let a = theta_projection(&model, data.schema(), &[2, 0], DEFAULT_CELL_CAP).unwrap();
        let b = theta_projection(&model, data.schema(), &[2, 0], DEFAULT_CELL_CAP).unwrap();
        for (x, y) in a.values().iter().zip(b.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn theta_projection_prunes_and_caps() {
        let (data, model) = chain_model();
        assert!(theta_projection(&model, data.schema(), &[], DEFAULT_CELL_CAP).is_err());
        assert!(theta_projection(&model, data.schema(), &[0, 0], DEFAULT_CELL_CAP).is_err());
        assert!(theta_projection(&model, data.schema(), &[9], DEFAULT_CELL_CAP).is_err());
        // The closure of {0} is just {0} (a is a root): 2 cells pass a cap
        // of 2, while the full joint (12 cells) would not.
        assert!(theta_projection(&model, data.schema(), &[0], 2).is_ok());
        assert!(theta_projection(&model, data.schema(), &[0, 1, 2], 2).is_err());
    }

    #[test]
    fn answers_are_deterministic() {
        // Unlike sampling, inference has no randomness at all.
        let (data, model) = chain_model();
        let a = model_marginal(&model, data.schema(), &[0, 2], DEFAULT_CELL_CAP).unwrap();
        let b = model_marginal(&model, data.schema(), &[0, 2], DEFAULT_CELL_CAP).unwrap();
        assert_eq!(a, b);
    }

    /// Empirical conditional Pr[target | evidence] from the data, for
    /// comparison with `model_conditional` on a noise-free model.
    fn empirical_conditional(data: &Dataset, target: usize, evidence: &[(usize, u32)]) -> Vec<f64> {
        let dim = data.schema().attribute(target).domain_size();
        let mut counts = vec![0.0f64; dim];
        for row in 0..data.n() {
            if evidence.iter().all(|&(a, code)| data.value(row, a) == code) {
                counts[data.value(row, target) as usize] += 1.0;
            }
        }
        let total: f64 = counts.iter().sum();
        counts.iter().map(|c| c / total).collect()
    }

    #[test]
    fn conditional_matches_empirical_when_noise_free() {
        let (data, model) = chain_model();
        for evidence in [vec![(0usize, 1u32)], vec![(0, 0)], vec![(0, 1), (1, 0)]] {
            let got = model_conditional(&model, data.schema(), &[2], &evidence, DEFAULT_CELL_CAP)
                .unwrap();
            let want = empirical_conditional(&data, 2, &evidence);
            let tvd = total_variation(got.values(), &want);
            assert!(tvd < 1e-9, "evidence {evidence:?}: tvd {tvd}");
        }
    }

    #[test]
    fn conditional_on_descendant_inverts_the_chain() {
        // Evidence on a *descendant* (c) conditions its ancestor (a) — the
        // Bayes-inversion direction ancestral sampling cannot answer.
        let (data, model) = chain_model();
        let got =
            model_conditional(&model, data.schema(), &[0], &[(2, 2)], DEFAULT_CELL_CAP).unwrap();
        let want = empirical_conditional(&data, 0, &[(2, 2)]);
        assert!(total_variation(got.values(), &want) < 1e-9);
    }

    #[test]
    fn conditional_with_no_effective_evidence_equals_marginal() {
        // Evidence on an attribute independent of the target must not change
        // the answer; also conditioning with empty evidence IS the marginal.
        let (data, model) = chain_model();
        let marginal = model_marginal(&model, data.schema(), &[1], DEFAULT_CELL_CAP).unwrap();
        let cond = model_conditional(&model, data.schema(), &[1], &[], DEFAULT_CELL_CAP).unwrap();
        assert!(total_variation(marginal.values(), cond.values()) < 1e-12);
    }

    #[test]
    fn conditional_output_is_a_distribution_in_target_order() {
        let (data, model) = chain_model();
        let t =
            model_conditional(&model, data.schema(), &[2, 1], &[(0, 1)], DEFAULT_CELL_CAP).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.axes()[0].attr, 2);
        assert!((t.total() - 1.0).abs() < 1e-9);
        assert!(t.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn conditional_rejects_bad_inputs() {
        let (data, model) = chain_model();
        let cap = DEFAULT_CELL_CAP;
        assert!(model_conditional(&model, data.schema(), &[], &[(0, 0)], cap).is_err());
        assert!(model_conditional(&model, data.schema(), &[0], &[(0, 0)], cap).is_err());
        assert!(model_conditional(&model, data.schema(), &[1], &[(0, 9)], cap).is_err());
        assert!(model_conditional(&model, data.schema(), &[1], &[(9, 0)], cap).is_err());
        assert!(model_conditional(&model, data.schema(), &[9], &[(0, 0)], cap).is_err());
        assert!(
            model_conditional(&model, data.schema(), &[1], &[(0, 0), (0, 1)], cap).is_err(),
            "contradictory duplicate evidence"
        );
    }

    #[test]
    fn zero_probability_evidence_is_an_error() {
        // Build a model where Pr[a = 1] = 0 exactly.
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let rows: Vec<Vec<u32>> = (0..50u32).map(|i| vec![0, i % 2]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let r = model_conditional(&model, data.schema(), &[1], &[(0, 1)], DEFAULT_CELL_CAP);
        assert!(matches!(r, Err(PrivBayesError::InvalidConfig(_))), "{r:?}");
    }
}
