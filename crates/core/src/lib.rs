//! **PrivBayes**: differentially private synthetic data release via Bayesian
//! networks — a from-scratch reproduction of Zhang, Cormode, Procopiuc,
//! Srivastava & Xiao (SIGMOD 2014 / TODS 2017).
//!
//! The method runs in three phases (§3):
//!
//! 1. **Network learning** ([`greedy`]): build a low-degree Bayesian network
//!    `N` with the exponential mechanism, consuming ε₁ = βε. Candidate
//!    attribute–parent pairs are scored by one of three functions
//!    ([`score`]): mutual information `I`, the low-sensitivity surrogate `F`
//!    (§4.3–4.4, binary domains), or `R` (§5.3, general domains). Parent-set
//!    candidates are bounded by θ-usefulness ([`theta`], [`parent_sets`]).
//! 2. **Distribution learning** ([`conditionals`]): materialise the joint of
//!    every AP pair and privatise it with the Laplace mechanism, consuming
//!    ε₂ = (1−β)ε (Algorithms 1 and 3).
//! 3. **Data synthesis** ([`sampler`]): ancestral sampling from the noisy
//!    conditionals — no access to the input, hence no further budget.
//!
//! [`pipeline`] wires the phases together for all four attribute encodings
//! (§5.1) and exposes the `BestNetwork` / `BestMarginal` ablations of §6.4.
//!
//! # Quickstart
//!
//! ```
//! use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
//! use privbayes_data::{Attribute, Dataset, Schema};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A toy binary dataset (use `privbayes-datasets` for realistic ones).
//! let schema = Schema::new(vec![
//!     Attribute::binary("smoker"),
//!     Attribute::binary("cough"),
//!     Attribute::binary("flu"),
//! ]).unwrap();
//! let rows: Vec<Vec<u32>> = (0..200)
//!     .map(|i| {
//!         let s = (i % 3 == 0) as u32;
//!         vec![s, s, (i % 7 == 0) as u32]
//!     })
//!     .collect();
//! let data = Dataset::from_rows(schema, &rows).unwrap();
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let options = PrivBayesOptions::new(1.0);
//! let result = PrivBayes::new(options).synthesize(&data, &mut rng).unwrap();
//! assert_eq!(result.synthetic.n(), data.n());
//! assert_eq!(result.synthetic.d(), data.d());
//! ```

pub mod conditionals;
pub mod error;
pub mod greedy;
pub mod inference;
pub mod network;
pub mod nonprivate;
pub mod parent_sets;
pub mod pipeline;
pub mod sampler;
pub mod score;
pub mod theta;

pub use error::PrivBayesError;
pub use network::{ApPair, BayesianNetwork};
pub use pipeline::{PrivBayes, PrivBayesOptions, SynthesisResult};
pub use sampler::{
    sample_synthetic, sample_synthetic_with_threads, CompiledSampler, RowStream, SampleSpec,
    CHUNK_ROWS, LW_CANDIDATES,
};
pub use score::ScoreKind;
