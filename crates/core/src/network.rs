//! Bayesian networks as ordered lists of attribute–parent (AP) pairs (§2.2).

use privbayes_data::Schema;
use privbayes_marginals::Axis;

use crate::error::PrivBayesError;

/// One attribute–parent pair `(Xᵢ, Πᵢ)`.
///
/// Parents are [`Axis`]es — attribute indices with a generalisation level, so
/// the hierarchical encoding's generalised parent sets (§5.2) are represented
/// uniformly (level 0 everywhere for the other encodings). The child is
/// always at level 0: the paper only generalises parents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApPair {
    /// Child attribute index.
    pub child: usize,
    /// Parent set (possibly empty; possibly generalised).
    pub parents: Vec<Axis>,
}

impl ApPair {
    /// Creates an AP pair with raw (level-0) parents.
    #[must_use]
    pub fn new(child: usize, parents: Vec<usize>) -> Self {
        Self { child, parents: parents.into_iter().map(Axis::raw).collect() }
    }

    /// Creates an AP pair with generalised parents.
    #[must_use]
    pub fn generalized(child: usize, parents: Vec<Axis>) -> Self {
        Self { child, parents }
    }
}

/// A Bayesian network: `d` AP pairs in construction order.
///
/// The structural invariant (paper §2.2, condition 3) is that every parent of
/// `Xᵢ` appears as a child earlier in the list — this guarantees acyclicity
/// and enables ancestral sampling in list order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BayesianNetwork {
    pairs: Vec<ApPair>,
}

impl BayesianNetwork {
    /// Builds a network from AP pairs, validating the structural invariants
    /// against `schema`.
    ///
    /// # Errors
    /// Returns [`PrivBayesError::InvalidNetwork`] if a child repeats, an
    /// attribute index is out of range, a parent is not an earlier child, or
    /// a generalisation level is invalid for the attribute.
    pub fn new(pairs: Vec<ApPair>, schema: &Schema) -> Result<Self, PrivBayesError> {
        let d = schema.len();
        let mut seen = vec![false; d];
        for (i, pair) in pairs.iter().enumerate() {
            if pair.child >= d {
                return Err(PrivBayesError::InvalidNetwork(format!(
                    "pair {i}: child index {} out of range",
                    pair.child
                )));
            }
            if seen[pair.child] {
                return Err(PrivBayesError::InvalidNetwork(format!(
                    "attribute {} appears as child twice",
                    pair.child
                )));
            }
            for p in &pair.parents {
                if p.attr >= d {
                    return Err(PrivBayesError::InvalidNetwork(format!(
                        "pair {i}: parent index {} out of range",
                        p.attr
                    )));
                }
                if !seen[p.attr] {
                    return Err(PrivBayesError::InvalidNetwork(format!(
                        "pair {i}: parent {} is not an earlier child (DAG order violated)",
                        p.attr
                    )));
                }
                if p.level > 0 {
                    let attr = schema.attribute(p.attr);
                    let height = attr.taxonomy().map_or(1, |t| t.height());
                    if p.level >= height {
                        return Err(PrivBayesError::InvalidNetwork(format!(
                            "pair {i}: level {} out of range for attribute `{}`",
                            p.level,
                            attr.name()
                        )));
                    }
                }
            }
            seen[pair.child] = true;
        }
        Ok(Self { pairs })
    }

    /// The AP pairs in construction (ancestral) order.
    #[must_use]
    pub fn pairs(&self) -> &[ApPair] {
        &self.pairs
    }

    /// Number of pairs (equals `d` for a complete network).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the network has no pairs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Degree: the maximum parent-set size (§2.2).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.pairs.iter().map(|p| p.parents.len()).max().unwrap_or(0)
    }

    /// Directed edges `(parent, child)` at the attribute level.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.pairs.iter().flat_map(|p| p.parents.iter().map(move |q| (q.attr, p.child))).collect()
    }

    /// Renders the network like the paper's Table 1 (attribute names).
    #[must_use]
    pub fn describe(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (i, pair) in self.pairs.iter().enumerate() {
            let child = schema.attribute(pair.child).name();
            let parents: Vec<String> = pair
                .parents
                .iter()
                .map(|p| {
                    let name = schema.attribute(p.attr).name();
                    if p.level == 0 {
                        name.to_string()
                    } else {
                        format!("{name}({})", p.level)
                    }
                })
                .collect();
            let parents = if parents.is_empty() {
                "∅".to_string()
            } else {
                format!("{{{}}}", parents.join(", "))
            };
            out.push_str(&format!("{:>3}  {:<16} {parents}\n", i + 1, child));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::Attribute;

    fn schema5() -> Schema {
        // Figure 1's example: age, education, workclass, title, income.
        Schema::new(vec![
            Attribute::binary("age"),
            Attribute::binary("education"),
            Attribute::binary("workclass"),
            Attribute::binary("title"),
            Attribute::binary("income"),
        ])
        .unwrap()
    }

    /// Table 1's network N₁.
    fn n1() -> Vec<ApPair> {
        vec![
            ApPair::new(0, vec![]),
            ApPair::new(1, vec![0]),
            ApPair::new(2, vec![0, 1]),
            ApPair::new(3, vec![0, 2]),
            ApPair::new(4, vec![2, 3]),
        ]
    }

    #[test]
    fn table_1_network_is_valid_with_degree_2() {
        let net = BayesianNetwork::new(n1(), &schema5()).unwrap();
        assert_eq!(net.len(), 5);
        assert_eq!(net.degree(), 2);
        assert_eq!(net.edges().len(), 7);
    }

    #[test]
    fn describe_lists_ap_pairs() {
        let net = BayesianNetwork::new(n1(), &schema5()).unwrap();
        let s = net.describe(&schema5());
        assert!(s.contains("age"));
        assert!(s.contains('∅'));
        assert!(s.contains("{workclass, title}"));
    }

    #[test]
    fn rejects_forward_edges() {
        // income's parent `title` is declared after it.
        let pairs = vec![ApPair::new(4, vec![3]), ApPair::new(3, vec![])];
        assert!(matches!(
            BayesianNetwork::new(pairs, &schema5()),
            Err(PrivBayesError::InvalidNetwork(_))
        ));
    }

    #[test]
    fn rejects_duplicate_children() {
        let pairs = vec![ApPair::new(0, vec![]), ApPair::new(0, vec![])];
        assert!(BayesianNetwork::new(pairs, &schema5()).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(BayesianNetwork::new(vec![ApPair::new(9, vec![])], &schema5()).is_err());
        let pairs = vec![ApPair::new(0, vec![]), ApPair::new(1, vec![9])];
        assert!(BayesianNetwork::new(pairs, &schema5()).is_err());
    }

    #[test]
    fn rejects_self_loop() {
        // A self-loop is a parent that is not an earlier child.
        let pairs = vec![ApPair::new(0, vec![0])];
        assert!(BayesianNetwork::new(pairs, &schema5()).is_err());
    }

    #[test]
    fn rejects_invalid_level() {
        let pairs =
            vec![ApPair::new(0, vec![]), ApPair::generalized(1, vec![Axis { attr: 0, level: 3 }])];
        assert!(BayesianNetwork::new(pairs, &schema5()).is_err());
    }

    #[test]
    fn empty_parentless_network_degree_zero() {
        let pairs = (0..5).map(|i| ApPair::new(i, vec![])).collect();
        let net = BayesianNetwork::new(pairs, &schema5()).unwrap();
        assert_eq!(net.degree(), 0);
        assert!(net.edges().is_empty());
    }
}
