//! NoisyConditionals: the distribution-learning phase (Algorithms 1 and 3).
//!
//! For each AP pair the joint `Pr[Xᵢ, Πᵢ]` is materialised, perturbed with
//! Laplace noise (sensitivity 2/n in probability scale), post-processed to a
//! valid distribution, and conditioned on the parents. Algorithm 1 (binary
//! encodings, fixed degree `k`) additionally derives the first `k`
//! conditionals from the noisy joint of pair `k+1` at no extra privacy cost;
//! Algorithm 3 (general domains) materialises all `d` joints directly.
//!
//! All joints are served by a [`CountEngine`]: the `*_engine` entry points
//! take a caller-owned engine (the pipeline shares one across structure and
//! distribution learning, so AP-pair joints already counted during scoring
//! are answered from the cache), while the `&Dataset` forms build a
//! throwaway engine. Engine joints are bit-identical to a fresh
//! `ContingencyTable::from_dataset` scan, so which form is used never
//! changes the output.

use privbayes_data::Dataset;
use privbayes_dp::laplace::sample_laplace;
use privbayes_marginals::{
    clamp_and_normalize, mutual_consistency, Axis, ContingencyTable, CountEngine,
};
use rand::Rng;

use crate::error::PrivBayesError;
use crate::network::BayesianNetwork;

/// A noisy conditional distribution `Pr*[X | Π]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Conditional {
    /// Child attribute.
    pub child: usize,
    /// Parent axes (attribute + generalisation level).
    pub parents: Vec<Axis>,
    /// Parent domain sizes, same order as `parents`.
    pub parent_dims: Vec<usize>,
    /// Child domain size.
    pub child_dim: usize,
    /// Parent-major, child-fastest probabilities; each parent slice sums to 1.
    pub probs: Vec<f64>,
}

impl Conditional {
    /// Flat parent index for concrete (generalised) parent codes.
    ///
    /// # Panics
    /// Panics if arity or a code is out of range.
    #[must_use]
    pub fn parent_index(&self, codes: &[usize]) -> usize {
        assert_eq!(codes.len(), self.parent_dims.len(), "parent arity mismatch");
        let mut idx = 0usize;
        for (&c, &dim) in codes.iter().zip(&self.parent_dims) {
            assert!(c < dim, "parent code {c} out of dim {dim}");
            idx = idx * dim + c;
        }
        idx
    }

    /// The child distribution slice for a flat parent index.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    #[must_use]
    pub fn child_distribution(&self, parent_index: usize) -> &[f64] {
        let start = parent_index * self.child_dim;
        &self.probs[start..start + self.child_dim]
    }
}

/// The result of distribution learning: network plus noisy conditionals in
/// network order — everything data synthesis needs (no further data access).
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyModel {
    /// The Bayesian network.
    pub network: BayesianNetwork,
    /// One conditional per AP pair, in network order.
    pub conditionals: Vec<Conditional>,
}

/// Builds a conditional from a joint table whose **last axis is the child**:
/// clamps negatives, renormalises, and conditions each parent slice (zero
/// slices become uniform). This is *the* post-processing step between a
/// (noisy) joint and a sampling-ready CPT, shared by every layer that
/// assembles models — the core's distribution learning, the relational fact
/// model, and the synthesizer layer's artifact constructions.
#[must_use]
pub fn conditional_from_joint(table: &ContingencyTable, child: usize) -> Conditional {
    let dims = table.dims();
    let child_dim = *dims.last().expect("table has axes");
    let parent_dims: Vec<usize> = dims[..dims.len() - 1].to_vec();
    let parents: Vec<Axis> = table.axes()[..dims.len() - 1].to_vec();

    let mut probs = table.values().to_vec();
    clamp_and_normalize(&mut probs, 1.0);
    for slice in probs.chunks_exact_mut(child_dim) {
        let total: f64 = slice.iter().sum();
        if total > 0.0 {
            for v in slice.iter_mut() {
                *v /= total;
            }
        } else {
            let u = 1.0 / child_dim as f64;
            slice.fill(u);
        }
    }
    Conditional { child, parents, parent_dims, child_dim, probs }
}

/// Materialises the noisy joint of one AP pair: axes `[parents…, child]`,
/// `Lap(scale)` noise per cell (skipped when `scale` is `None`), then
/// non-negativity + renormalisation (Algorithm 1 line 5).
fn noisy_joint<R: Rng + ?Sized>(
    engine: &CountEngine,
    child: usize,
    parents: &[Axis],
    scale: Option<f64>,
    rng: &mut R,
) -> ContingencyTable {
    let mut axes: Vec<Axis> = parents.to_vec();
    axes.push(Axis::raw(child));
    let mut table = engine.joint_table(&axes);
    if let Some(scale) = scale {
        for v in table.values_mut() {
            *v += sample_laplace(scale, rng);
        }
        clamp_and_normalize(table.values_mut(), 1.0);
    }
    table
}

/// Algorithm 3: all `d` joints materialised with `Lap(2d/nε₂)` noise.
/// `epsilon2 = None` skips the noise entirely (the BestMarginal ablation).
///
/// # Errors
/// Returns [`PrivBayesError::InvalidConfig`] for a non-positive ε₂ or empty data.
pub fn noisy_conditionals_general<R: Rng + ?Sized>(
    data: &Dataset,
    network: &BayesianNetwork,
    epsilon2: Option<f64>,
    rng: &mut R,
) -> Result<NoisyModel, PrivBayesError> {
    noisy_conditionals_general_engine(&CountEngine::new(data), network, epsilon2, rng)
}

/// [`noisy_conditionals_general`] over a caller-owned engine (joints already
/// counted during structure learning come straight from the cache).
///
/// # Errors
/// As [`noisy_conditionals_general`].
pub fn noisy_conditionals_general_engine<R: Rng + ?Sized>(
    engine: &CountEngine,
    network: &BayesianNetwork,
    epsilon2: Option<f64>,
    rng: &mut R,
) -> Result<NoisyModel, PrivBayesError> {
    let n = engine.n();
    if n == 0 {
        return Err(PrivBayesError::InvalidConfig("empty dataset".into()));
    }
    let d = network.len() as f64;
    let scale = match epsilon2 {
        Some(e) if e > 0.0 => Some(2.0 * d / (n as f64 * e)),
        Some(e) => {
            return Err(PrivBayesError::InvalidConfig(format!(
                "epsilon2 must be positive, got {e}"
            )))
        }
        None => None,
    };
    let conditionals = network
        .pairs()
        .iter()
        .map(|pair| {
            let joint = noisy_joint(engine, pair.child, &pair.parents, scale, rng);
            conditional_from_joint(&joint, pair.child)
        })
        .collect();
    Ok(NoisyModel { network: network.clone(), conditionals })
}

/// Algorithm 3 plus the §3 footnote-1 optimisation: after all `d` noisy
/// joints are materialised, overlapping joints are reconciled with
/// [`mutual_consistency`] *before* clamping and conditioning, so that shared
/// sub-marginals agree across the model. Consistency is pure post-processing
/// of the Laplace output — the privacy guarantee is exactly that of
/// [`noisy_conditionals_general`].
///
/// With `rounds == 0` this is equivalent to [`noisy_conditionals_general`]
/// (modulo RNG call order). Reconciliation averages independent noise draws
/// of the same sub-marginal, which reduces its variance — the ablation bench
/// `ablation_consistency` quantifies the effect.
///
/// # Errors
/// Returns [`PrivBayesError::InvalidConfig`] for a non-positive ε₂ or empty
/// data.
pub fn noisy_conditionals_consistent<R: Rng + ?Sized>(
    data: &Dataset,
    network: &BayesianNetwork,
    epsilon2: Option<f64>,
    rounds: usize,
    rng: &mut R,
) -> Result<NoisyModel, PrivBayesError> {
    noisy_conditionals_consistent_engine(&CountEngine::new(data), network, epsilon2, rounds, rng)
}

/// [`noisy_conditionals_consistent`] over a caller-owned engine.
///
/// # Errors
/// As [`noisy_conditionals_consistent`].
pub fn noisy_conditionals_consistent_engine<R: Rng + ?Sized>(
    engine: &CountEngine,
    network: &BayesianNetwork,
    epsilon2: Option<f64>,
    rounds: usize,
    rng: &mut R,
) -> Result<NoisyModel, PrivBayesError> {
    let n = engine.n();
    if n == 0 {
        return Err(PrivBayesError::InvalidConfig("empty dataset".into()));
    }
    let d = network.len() as f64;
    let scale = match epsilon2 {
        Some(e) if e > 0.0 => Some(2.0 * d / (n as f64 * e)),
        Some(e) => {
            return Err(PrivBayesError::InvalidConfig(format!(
                "epsilon2 must be positive, got {e}"
            )))
        }
        None => None,
    };
    // Materialise the raw noisy joints *without* clamping: least-squares
    // reconciliation assumes zero-mean noise, which clamping would bias.
    let mut tables: Vec<ContingencyTable> = network
        .pairs()
        .iter()
        .map(|pair| {
            let mut axes: Vec<Axis> = pair.parents.clone();
            axes.push(Axis::raw(pair.child));
            let mut table = engine.joint_table(&axes);
            if let Some(scale) = scale {
                for v in table.values_mut() {
                    *v += sample_laplace(scale, rng);
                }
            }
            table
        })
        .collect();
    if rounds > 0 {
        let variances = vec![1.0; tables.len()];
        mutual_consistency(&mut tables, &variances, rounds);
    } else if scale.is_some() {
        // No reconciliation requested: replay Algorithm 3's per-joint
        // clamp+renormalise so rounds=0 is bit-identical to
        // `noisy_conditionals_general`.
        for table in &mut tables {
            clamp_and_normalize(table.values_mut(), 1.0);
        }
    }
    let conditionals = tables
        .iter()
        .zip(network.pairs())
        .map(|(table, pair)| conditional_from_joint(table, pair.child))
        .collect();
    Ok(NoisyModel { network: network.clone(), conditionals })
}

/// Algorithm 1: fixed-degree variant for binary encodings. Materialises the
/// `d−k` joints of pairs `k+1..d` with `Lap(2(d−k)/nε₂)` noise and derives
/// the first `k` conditionals from the noisy joint of pair `k+1` — no
/// additional privacy cost.
///
/// # Errors
/// Returns [`PrivBayesError::InvalidConfig`] if `k ≥ d`, ε₂ ≤ 0, or the
/// network violates the structural invariant the derivation relies on
/// (`Xᵢ ∈ Π_{k+1}` and `Πᵢ ⊂ Π_{k+1}` for `i ≤ k`, §3).
pub fn noisy_conditionals_binary_k<R: Rng + ?Sized>(
    data: &Dataset,
    network: &BayesianNetwork,
    k: usize,
    epsilon2: Option<f64>,
    rng: &mut R,
) -> Result<NoisyModel, PrivBayesError> {
    noisy_conditionals_binary_k_engine(&CountEngine::new(data), network, k, epsilon2, rng)
}

/// [`noisy_conditionals_binary_k`] over a caller-owned engine.
///
/// # Errors
/// As [`noisy_conditionals_binary_k`].
pub fn noisy_conditionals_binary_k_engine<R: Rng + ?Sized>(
    engine: &CountEngine,
    network: &BayesianNetwork,
    k: usize,
    epsilon2: Option<f64>,
    rng: &mut R,
) -> Result<NoisyModel, PrivBayesError> {
    let n = engine.n();
    if n == 0 {
        return Err(PrivBayesError::InvalidConfig("empty dataset".into()));
    }
    let d = network.len();
    if k >= d {
        return Err(PrivBayesError::InvalidConfig(format!("k={k} must be below d={d}")));
    }
    let scale = match epsilon2 {
        Some(e) if e > 0.0 => Some(2.0 * (d - k) as f64 / (n as f64 * e)),
        Some(e) => {
            return Err(PrivBayesError::InvalidConfig(format!(
                "epsilon2 must be positive, got {e}"
            )))
        }
        None => None,
    };
    let pairs = network.pairs();

    // Pairs k+1..d (0-based k..d): direct noisy materialisation.
    let mut tail: Vec<(ContingencyTable, usize)> = Vec::with_capacity(d - k);
    for pair in &pairs[k..] {
        tail.push((noisy_joint(engine, pair.child, &pair.parents, scale, rng), pair.child));
    }

    // Pairs 1..k (0-based 0..k): derived from the noisy joint of pair k+1.
    let anchor = &tail[0].0;
    let mut conditionals: Vec<Conditional> = Vec::with_capacity(d);
    for (i, pair) in pairs[..k].iter().enumerate() {
        // Locate Πᵢ ∪ {Xᵢ} among the anchor's axes.
        let mut keep: Vec<usize> = Vec::with_capacity(pair.parents.len() + 1);
        for parent in &pair.parents {
            let pos = anchor
                .axes()
                .iter()
                .position(|ax| ax.attr == parent.attr && ax.level == parent.level)
                .ok_or_else(|| {
                    PrivBayesError::InvalidNetwork(format!(
                        "pair {i}: parent {} not inside pair k+1's joint (Algorithm 1 invariant)",
                        parent.attr
                    ))
                })?;
            keep.push(pos);
        }
        let child_pos =
            anchor.axes().iter().position(|ax| ax.attr == pair.child).ok_or_else(|| {
                PrivBayesError::InvalidNetwork(format!(
                    "pair {i}: child {} not inside pair k+1's joint (Algorithm 1 invariant)",
                    pair.child
                ))
            })?;
        keep.push(child_pos);
        let projected = anchor.project(&keep);
        conditionals.push(conditional_from_joint(&projected, pair.child));
    }
    for (table, child) in &tail {
        conditionals.push(conditional_from_joint(table, *child));
    }
    Ok(NoisyModel { network: network.clone(), conditionals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ApPair;
    use privbayes_data::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data_and_network() -> (Dataset, BayesianNetwork) {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        // b copies a; c is independent-ish.
        let rows: Vec<Vec<u32>> = (0..400u32)
            .map(|i| {
                let a = i % 2;
                vec![a, a, u32::from(i % 5 == 0)]
            })
            .collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![0, 1])],
            data.schema(),
        )
        .unwrap();
        (data, net)
    }

    #[test]
    fn conditionals_are_valid_distributions() {
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(1);
        let model = noisy_conditionals_general(&data, &net, Some(1.0), &mut rng).unwrap();
        assert_eq!(model.conditionals.len(), 3);
        for cond in &model.conditionals {
            for slice in cond.probs.chunks_exact(cond.child_dim) {
                assert!((slice.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(slice.iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn noise_free_matches_empirical_conditionals() {
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(2);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        // Pr[b=1 | a=1] = 1 in the data.
        let cond_b = &model.conditionals[1];
        let slice = cond_b.child_distribution(cond_b.parent_index(&[1]));
        assert!((slice[1] - 1.0).abs() < 1e-9, "b copies a: {slice:?}");
        let slice = cond_b.child_distribution(cond_b.parent_index(&[0]));
        assert!((slice[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_epsilon_recovers_truth_approximately() {
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(3);
        let model = noisy_conditionals_general(&data, &net, Some(100.0), &mut rng).unwrap();
        let cond_b = &model.conditionals[1];
        let slice = cond_b.child_distribution(cond_b.parent_index(&[1]));
        assert!(slice[1] > 0.95, "high ε₂ should barely perturb: {slice:?}");
    }

    #[test]
    fn binary_k_derives_prefix_without_recounting() {
        // Network with prefix structure: (a,∅), (b,{a}), (c,{a,b}); k = 2.
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(4);
        let model = noisy_conditionals_binary_k(&data, &net, 2, None, &mut rng).unwrap();
        assert_eq!(model.conditionals.len(), 3);
        // With no noise, the derived Pr[b|a] must equal the empirical one.
        let cond_b = &model.conditionals[1];
        let slice = cond_b.child_distribution(cond_b.parent_index(&[1]));
        assert!((slice[1] - 1.0).abs() < 1e-9, "derived conditional: {slice:?}");
        // And the root marginal Pr[a] is (.5, .5).
        let cond_a = &model.conditionals[0];
        let slice = cond_a.child_distribution(0);
        assert!((slice[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn binary_k_rejects_violated_invariant() {
        // Network where pair 1's parent is NOT inside pair 2's joint:
        // (a,∅), (b,{a}), (c,{b}) with k=1 works (b ∈ Π₂... actually Π₂={b}
        // must contain X₁=a — it does not).
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..10u32).map(|i| vec![i % 2, i % 2, 0]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // k=1: pair 2 (0-based 1) is the anchor, its joint is {a}∪{b} ∋ a. OK.
        assert!(noisy_conditionals_binary_k(&data, &net, 1, None, &mut rng).is_ok());
        // k=2: anchor is pair 3 with joint {b, c}; pair 1's child a ∉ joint.
        assert!(noisy_conditionals_binary_k(&data, &net, 2, None, &mut rng).is_err());
    }

    #[test]
    fn rejects_bad_parameters() {
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(noisy_conditionals_general(&data, &net, Some(0.0), &mut rng).is_err());
        assert!(noisy_conditionals_binary_k(&data, &net, 3, Some(1.0), &mut rng).is_err());
        assert!(noisy_conditionals_binary_k(&data, &net, 0, Some(-1.0), &mut rng).is_err());
    }

    #[test]
    fn k_zero_equals_general_with_matching_scale() {
        // With k=0, Algorithm 1's noise scale 2(d−0)/nε₂ equals Algorithm 3's
        // 2d/nε₂ and no derivation happens: same code path semantics.
        let (data, net) = data_and_network();
        let model_a = {
            let mut rng = StdRng::seed_from_u64(7);
            noisy_conditionals_binary_k(&data, &net, 0, Some(0.5), &mut rng).unwrap()
        };
        let model_b = {
            let mut rng = StdRng::seed_from_u64(7);
            noisy_conditionals_general(&data, &net, Some(0.5), &mut rng).unwrap()
        };
        assert_eq!(model_a, model_b);
    }

    #[test]
    fn consistent_with_zero_rounds_matches_general() {
        let (data, net) = data_and_network();
        let model_a = {
            let mut rng = StdRng::seed_from_u64(8);
            noisy_conditionals_consistent(&data, &net, Some(0.8), 0, &mut rng).unwrap()
        };
        let model_b = {
            let mut rng = StdRng::seed_from_u64(8);
            noisy_conditionals_general(&data, &net, Some(0.8), &mut rng).unwrap()
        };
        assert_eq!(model_a, model_b, "rounds=0 must be a no-op relative to Algorithm 3");
    }

    #[test]
    fn consistent_noise_free_is_exact() {
        // With no noise the joints are already mutually consistent (they are
        // all projections of the same empirical distribution), so
        // reconciliation must not disturb them.
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(9);
        let with = noisy_conditionals_consistent(&data, &net, None, 3, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let without = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        for (a, b) in with.conditionals.iter().zip(&without.conditionals) {
            for (x, y) in a.probs.iter().zip(&b.probs) {
                assert!((x - y).abs() < 1e-9, "noise-free consistency must be a fixed point");
            }
        }
    }

    #[test]
    fn consistent_conditionals_are_valid_distributions() {
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(10);
        let model = noisy_conditionals_consistent(&data, &net, Some(0.2), 2, &mut rng).unwrap();
        for cond in &model.conditionals {
            for slice in cond.probs.chunks_exact(cond.child_dim) {
                assert!((slice.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(slice.iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn consistency_reduces_marginal_error_on_average() {
        // Shared sub-marginals are estimated twice with independent noise;
        // averaging them must reduce squared error on the shared margin.
        // Measured over repetitions to smooth the randomness.
        let (data, net) = data_and_network();
        let truth = ContingencyTable::from_dataset(&data, &[Axis::raw(0)]);
        let mut err_with = 0.0;
        let mut err_without = 0.0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let with = noisy_conditionals_consistent(&data, &net, Some(0.05), 2, &mut rng).unwrap();
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let without = noisy_conditionals_general(&data, &net, Some(0.05), &mut rng).unwrap();
            // Root marginal Pr*[a] from each model's first conditional.
            let pa_with = with.conditionals[0].child_distribution(0);
            let pa_without = without.conditionals[0].child_distribution(0);
            err_with += (pa_with[0] - truth.values()[0]).abs();
            err_without += (pa_without[0] - truth.values()[0]).abs();
        }
        assert!(
            err_with < err_without,
            "consistency should shrink root-marginal error: {err_with} vs {err_without}"
        );
    }

    #[test]
    fn consistent_rejects_bad_epsilon() {
        let (data, net) = data_and_network();
        let mut rng = StdRng::seed_from_u64(11);
        assert!(noisy_conditionals_consistent(&data, &net, Some(0.0), 1, &mut rng).is_err());
    }

    #[test]
    fn parent_index_math() {
        let cond = Conditional {
            child: 0,
            parents: vec![Axis::raw(1), Axis::raw(2)],
            parent_dims: vec![3, 4],
            child_dim: 2,
            probs: vec![0.5; 24],
        };
        assert_eq!(cond.parent_index(&[0, 0]), 0);
        assert_eq!(cond.parent_index(&[1, 2]), 6);
        assert_eq!(cond.parent_index(&[2, 3]), 11);
        assert_eq!(cond.child_distribution(11).len(), 2);
    }
}
