//! Non-private reference quantities: the quality metric of Figure 4 and the
//! NoPrivacy / BestNetwork helpers.

use privbayes_data::Dataset;
use privbayes_marginals::{Axis, CountEngine};

use crate::network::BayesianNetwork;
use crate::score::mi::mutual_information;

/// Sum of mutual information `Σᵢ I(Xᵢ, Πᵢ)` of a network measured on `data`
/// — the network-quality metric plotted in Figure 4 (maximising it minimises
/// the KL divergence of Equation 6). Joints come from a [`CountEngine`], so
/// sub-marginals shared between AP pairs are counted once.
#[must_use]
pub fn sum_mutual_information(data: &Dataset, network: &BayesianNetwork) -> f64 {
    let engine = CountEngine::new(data);
    network
        .pairs()
        .iter()
        .map(|pair| {
            if pair.parents.is_empty() {
                return 0.0;
            }
            let mut axes: Vec<Axis> = pair.parents.clone();
            axes.push(Axis::raw(pair.child));
            let table = engine.joint_table(&axes);
            let child_dim = data.schema().attribute(pair.child).domain_size();
            mutual_information(table.values(), child_dim)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_bayes_fixed_k, GreedySettings};
    use crate::network::ApPair;
    use crate::score::ScoreKind;
    use privbayes_data::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn chain_data(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i % 2, i % 2, (i / 2) % 2]).collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn copy_edge_contributes_one_bit() {
        let data = chain_data(400);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![])],
            data.schema(),
        )
        .unwrap();
        let q = sum_mutual_information(&data, &net);
        assert!((q - 1.0).abs() < 1e-9, "I(a;b)=1 and roots contribute 0, got {q}");
    }

    #[test]
    fn independent_network_scores_zero() {
        let data = chain_data(100);
        let net =
            BayesianNetwork::new((0..3).map(|i| ApPair::new(i, vec![])).collect(), data.schema())
                .unwrap();
        assert_eq!(sum_mutual_information(&data, &net), 0.0);
    }

    #[test]
    fn non_private_network_dominates_noisy_ones_on_average() {
        // The argmax network's quality upper-bounds heavily-noised selections.
        let data = {
            let schema = Schema::new(vec![
                Attribute::binary("a"),
                Attribute::binary("b"),
                Attribute::binary("c"),
                Attribute::binary("d"),
            ])
            .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let rows: Vec<Vec<u32>> = (0..800)
                .map(|_| {
                    let a = rng.random_range(0..2u32);
                    let c = rng.random_range(0..2u32);
                    vec![a, a, c, c]
                })
                .collect();
            Dataset::from_rows(schema, &rows).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let best = greedy_bayes_fixed_k(
            &data,
            1,
            &GreedySettings::non_private(ScoreKind::MutualInformation),
            &mut rng,
        )
        .unwrap();
        let q_best = sum_mutual_information(&data, &best);
        let mut q_noisy_sum = 0.0;
        let reps = 10;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let noisy = greedy_bayes_fixed_k(
                &data,
                1,
                &GreedySettings::private(ScoreKind::MutualInformation, 0.01),
                &mut rng,
            )
            .unwrap();
            q_noisy_sum += sum_mutual_information(&data, &noisy);
        }
        assert!(
            q_best >= q_noisy_sum / reps as f64 - 1e-9,
            "argmax quality {q_best} must dominate the noisy average"
        );
    }
}
