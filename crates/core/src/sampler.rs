//! Data synthesis: ancestral sampling from the noisy model (§3).
//!
//! Attributes are sampled in network order; by the structural invariant every
//! parent is sampled before its child, so the full-dimensional distribution
//! `Pr*_N[A]` is never materialised — the step that lets PrivBayes sidestep
//! the output-scalability problem.

use privbayes_data::{Dataset, Schema};
use privbayes_dp::stats::sample_discrete;
use rand::Rng;

use crate::conditionals::NoisyModel;
use crate::error::PrivBayesError;

/// Samples `rows` synthetic tuples from `model`.
///
/// Generalised parents are handled by generalising the already-sampled raw
/// parent value through the attribute's taxonomy at sampling time (§5.2).
///
/// # Errors
/// Returns [`PrivBayesError::InvalidNetwork`] if the model does not cover all
/// attributes of `schema`.
pub fn sample_synthetic<R: Rng + ?Sized>(
    model: &NoisyModel,
    schema: &Schema,
    rows: usize,
    rng: &mut R,
) -> Result<Dataset, PrivBayesError> {
    let d = schema.len();
    if model.conditionals.len() != d {
        return Err(PrivBayesError::InvalidNetwork(format!(
            "model covers {} attributes, schema has {d}",
            model.conditionals.len()
        )));
    }

    let mut columns: Vec<Vec<u32>> = vec![vec![0u32; rows]; d];
    let mut tuple = vec![0u32; d];
    let mut parent_codes: Vec<usize> = Vec::with_capacity(8);

    #[allow(clippy::needless_range_loop)] // `row` indexes every column
    for row in 0..rows {
        for cond in &model.conditionals {
            parent_codes.clear();
            for axis in &cond.parents {
                let raw = tuple[axis.attr];
                let code = if axis.level == 0 {
                    raw
                } else {
                    schema
                        .attribute(axis.attr)
                        .taxonomy()
                        .expect("validated by BayesianNetwork::new")
                        .generalize(raw, axis.level)
                };
                parent_codes.push(code as usize);
            }
            let slice = cond.child_distribution(cond.parent_index(&parent_codes));
            let value = sample_discrete(slice, rng) as u32;
            tuple[cond.child] = value;
            columns[cond.child][row] = value;
        }
    }
    Ok(Dataset::from_columns(schema.clone(), columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditionals::noisy_conditionals_general;
    use crate::network::{ApPair, BayesianNetwork};
    use privbayes_data::{Attribute, TaxonomyTree};
    use privbayes_marginals::{Axis, ContingencyTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn copy_chain_data(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i % 2, i % 2, i % 2]).collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn noise_free_model_reproduces_deterministic_chain() {
        let data = copy_chain_data(100);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 500, &mut rng).unwrap();
        assert_eq!(synth.n(), 500);
        // Every sampled row must satisfy a == b == c (the chain is a copy).
        for row in 0..synth.n() {
            let r = synth.row(row);
            assert_eq!(r[0], r[1]);
            assert_eq!(r[1], r[2]);
        }
        // And a should be roughly uniform.
        let ones = synth.column(0).iter().filter(|&&v| v == 1).count();
        assert!((ones as f64 / 500.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn sampled_marginals_approach_model_marginals() {
        let data = copy_chain_data(1000);
        let net = BayesianNetwork::new(
            vec![ApPair::new(2, vec![]), ApPair::new(0, vec![2]), ApPair::new(1, vec![2])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 20_000, &mut rng).unwrap();
        let truth = ContingencyTable::from_dataset(&data, &[Axis::raw(0), Axis::raw(1)]);
        let got = ContingencyTable::from_dataset(&synth, &[Axis::raw(0), Axis::raw(1)]);
        let tvd = privbayes_marginals::total_variation(truth.values(), got.values());
        assert!(tvd < 0.03, "sampling should match the model, tvd = {tvd}");
    }

    #[test]
    fn generalized_parent_sampling_uses_taxonomy() {
        // Attribute c has 4 values with a binary taxonomy; child b depends on
        // c's level-1 generalisation (c < 2 vs c >= 2).
        let schema = Schema::new(vec![
            Attribute::categorical("c", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::binary("b"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..200u32).map(|i| vec![i % 4, u32::from(i % 4 >= 2)]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::generalized(1, vec![Axis { attr: 0, level: 1 }])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 2000, &mut rng).unwrap();
        for row in 0..synth.n() {
            let r = synth.row(row);
            assert_eq!(r[1], u32::from(r[0] >= 2), "b must track c's level-1 group");
        }
    }

    #[test]
    fn zero_rows_allowed() {
        let data = copy_chain_data(10);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 0, &mut rng).unwrap();
        assert_eq!(synth.n(), 0);
    }

    #[test]
    fn incomplete_model_rejected() {
        let data = copy_chain_data(10);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        assert!(sample_synthetic(&model, data.schema(), 10, &mut rng).is_err());
    }
}
