//! Data synthesis: ancestral sampling from the noisy model (§3).
//!
//! Attributes are sampled in network order; by the structural invariant every
//! parent is sampled before its child, so the full-dimensional distribution
//! `Pr*_N[A]` is never materialised — the step that lets PrivBayes sidestep
//! the output-scalability problem.
//!
//! The model is first **compiled** ([`NoisyModel::compile`]): every
//! conditional slice becomes an [`AliasTable`] (O(1) draws instead of a
//! linear scan) and generalised parents become flat leaf→code lookups. Rows
//! are then generated in fixed-size chunks, each chunk from its own RNG
//! stream derived from the caller's seed, so the output is **identical for
//! every worker count** — including the sequential path.

use privbayes_data::{Dataset, Schema};
use privbayes_dp::AliasTable;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

use crate::conditionals::NoisyModel;
use crate::error::PrivBayesError;
use crate::greedy::resolve_threads;

/// Rows per sampling chunk. Each chunk owns an RNG stream seeded from
/// `(base, chunk index)` only, which makes the output independent of how
/// chunks are distributed over workers — and of whether chunks are
/// materialised at once ([`CompiledSampler::sample_dataset`]) or streamed
/// one by one ([`CompiledSampler::stream_rows`]). Fixed: changing it changes
/// which stream generates which row.
pub const CHUNK_ROWS: usize = 1024;

/// Candidate rows drawn per output row in likelihood-weighted conditional
/// sampling (evidence with non-evidence ancestors). Fixed: part of the
/// determinism contract — changing it changes which rows a given seed
/// produces.
pub const LW_CANDIDATES: usize = 64;

/// Rounds of [`LW_CANDIDATES`] retried when every candidate weight is zero
/// before giving up on the row and emitting the last clamped candidate.
const LW_MAX_ROUNDS: usize = 16;

/// A sampling request against a [`CompiledSampler`]: how many rows of the
/// underlying stream exist, which attributes are clamped as evidence, which
/// columns the caller wants back, and where in the stream to resume.
///
/// The spec is the single determinism anchor of the query API: for a fixed
/// `(model, seed, spec)` the produced rows are identical no matter how they
/// are consumed (batch or stream), where the stream is resumed, or which
/// columns are projected — resuming at `start_row = r` yields exactly rows
/// `r..rows` of the `start_row = 0` stream, and projection drops columns
/// from otherwise identical tuples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleSpec {
    /// Total rows of the (unresumed) stream.
    pub rows: usize,
    /// Clamped `(attribute, code)` evidence; sampled rows all carry these
    /// values and the remaining attributes follow the model conditioned on
    /// them (exactly for ancestrally-closed evidence, by likelihood-weighted
    /// resampling otherwise — see [`CompiledSampler::stream_spec`]).
    pub evidence: Vec<(usize, u32)>,
    /// Columns to yield, in order (`None` = every attribute in schema
    /// order). Sampling always computes full tuples — ancestors are needed —
    /// but only projected columns are copied out.
    pub projection: Option<Vec<usize>>,
    /// First row (of the `rows`-row stream) to yield; rows before it are
    /// never generated except for the resumed chunk's skipped prefix.
    pub start_row: usize,
}

impl SampleSpec {
    /// A spec for `rows` unconditional full-width rows from the start.
    #[must_use]
    pub fn rows(rows: usize) -> Self {
        Self { rows, ..Self::default() }
    }

    /// Sets the evidence list.
    #[must_use]
    pub fn with_evidence(mut self, evidence: Vec<(usize, u32)>) -> Self {
        self.evidence = evidence;
        self
    }

    /// Sets the projection.
    #[must_use]
    pub fn with_projection(mut self, projection: Vec<usize>) -> Self {
        self.projection = Some(projection);
        self
    }

    /// Sets the resume offset.
    #[must_use]
    pub fn with_start_row(mut self, start_row: usize) -> Self {
        self.start_row = start_row;
        self
    }
}

/// One conditional compiled for the sampling hot loop.
#[derive(Debug, Clone)]
struct CompiledConditional {
    child: usize,
    /// Parent attribute indices (raw values come from the tuple).
    parent_attrs: Vec<usize>,
    /// Per parent: leaf→generalised-code lookup (`None` for level-0 parents).
    generalisers: Vec<Option<Vec<u32>>>,
    /// Per parent: domain size at its generalisation level.
    parent_dims: Vec<usize>,
    /// One alias table per flat parent index. `None` marks a degenerate
    /// slice (zero-sum / negative / non-finite weights): compilation
    /// tolerates it — a hand-built model may contain structurally
    /// unreachable parent combinations — and sampling panics only if the
    /// slice is actually drawn from, matching the lazy `sample_discrete`
    /// behaviour.
    tables: Vec<Option<AliasTable>>,
    /// Domain size of the child.
    child_dim: usize,
    /// The raw conditional probabilities (row-major over parent slices),
    /// kept alongside the alias tables so conditional sampling can read
    /// `Pr[child = v | parents]` for evidence weights without a table walk.
    probs: Vec<f64>,
}

/// A [`NoisyModel`] compiled into alias tables, reusable across sampling
/// calls and shareable across sampling workers.
#[derive(Debug, Clone)]
pub struct CompiledSampler {
    schema: Schema,
    conditionals: Vec<CompiledConditional>,
}

impl NoisyModel {
    /// Compiles the model for `schema`: one [`AliasTable`] per conditional
    /// slice plus flattened parent-generalisation lookups.
    ///
    /// # Errors
    /// Returns [`PrivBayesError::InvalidNetwork`] if the model does not cover
    /// all attributes of `schema`.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledSampler, PrivBayesError> {
        let d = schema.len();
        if self.conditionals.len() != d {
            return Err(PrivBayesError::InvalidNetwork(format!(
                "model covers {} attributes, schema has {d}",
                self.conditionals.len()
            )));
        }
        let conditionals = self
            .conditionals
            .iter()
            .map(|cond| CompiledConditional {
                child: cond.child,
                parent_attrs: cond.parents.iter().map(|a| a.attr).collect(),
                generalisers: cond
                    .parents
                    .iter()
                    .map(|axis| {
                        (axis.level > 0).then(|| {
                            schema
                                .attribute(axis.attr)
                                .taxonomy()
                                .expect("validated by BayesianNetwork::new")
                                .level_lookup(axis.level)
                                .to_vec()
                        })
                    })
                    .collect(),
                parent_dims: cond.parent_dims.clone(),
                tables: cond.probs.chunks_exact(cond.child_dim).map(AliasTable::try_new).collect(),
                child_dim: cond.child_dim,
                probs: cond.probs.clone(),
            })
            .collect();
        Ok(CompiledSampler { schema: schema.clone(), conditionals })
    }
}

impl CompiledConditional {
    /// Flat parent-slice index for the parent values currently in `tuple`
    /// (raw values generalised through the compiled lookups).
    #[inline]
    fn slice_index(&self, tuple: &[u32]) -> usize {
        let mut idx = 0usize;
        for ((&attr, generaliser), &dim) in
            self.parent_attrs.iter().zip(&self.generalisers).zip(&self.parent_dims)
        {
            let raw = tuple[attr];
            let code = match generaliser {
                Some(lookup) => lookup[raw as usize],
                None => raw,
            };
            idx = idx * dim + code as usize;
        }
        idx
    }
}

impl CompiledSampler {
    /// The schema the sampler was compiled against.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Fills `tuple` with one synthetic row (network order).
    #[inline]
    fn sample_row<R: Rng + ?Sized>(&self, tuple: &mut [u32], rng: &mut R) {
        for cond in &self.conditionals {
            let idx = cond.slice_index(tuple);
            let table = cond.tables[idx]
                .as_ref()
                .expect("sampled a degenerate conditional slice (invalid weights)");
            tuple[cond.child] = table.sample(rng) as u32;
        }
    }

    /// Fills `tuple` with one row where every evidence attribute is clamped
    /// to its observed code, and returns the row's likelihood weight — the
    /// product of `Pr[eᵢ = vᵢ | parents(eᵢ)]` over the evidence attributes
    /// under the sampled parent values. Free attributes draw from their
    /// conditionals exactly as [`CompiledSampler::sample_row`] does.
    #[inline]
    fn sample_row_clamped<R: Rng + ?Sized>(
        &self,
        tuple: &mut [u32],
        evidence: &[Option<u32>],
        rng: &mut R,
    ) -> f64 {
        let mut weight = 1.0f64;
        for cond in &self.conditionals {
            let idx = cond.slice_index(tuple);
            match evidence[cond.child] {
                Some(code) => {
                    tuple[cond.child] = code;
                    weight *= cond.probs[idx * cond.child_dim + code as usize];
                }
                None => {
                    let table = cond.tables[idx]
                        .as_ref()
                        .expect("sampled a degenerate conditional slice (invalid weights)");
                    tuple[cond.child] = table.sample(rng) as u32;
                }
            }
        }
        weight
    }

    /// Samples `rows` synthetic tuples. `threads = None` uses
    /// [`std::thread::available_parallelism`]; the output depends only on
    /// `rng`'s state, never on the worker count.
    ///
    /// # Errors
    /// Returns [`PrivBayesError`] if the assembled columns violate the schema
    /// (cannot happen for a model compiled against the same schema).
    pub fn sample_dataset<R: Rng + ?Sized>(
        &self,
        rows: usize,
        threads: Option<usize>,
        rng: &mut R,
    ) -> Result<Dataset, PrivBayesError> {
        let d = self.schema.len();
        // One draw fixes every chunk stream; the caller's generator advances
        // by exactly one step regardless of `rows`.
        let base = rng.next_u64();
        let mut columns: Vec<Vec<u32>> = vec![vec![0u32; rows]; d];

        if rows > 0 && d > 0 {
            let chunk_count = rows.div_ceil(CHUNK_ROWS);
            // Regroup the column-major output into per-chunk slice bundles so
            // each chunk owns a disjoint row range of every column.
            let mut chunk_slices: Vec<Vec<&mut [u32]>> =
                (0..chunk_count).map(|_| Vec::with_capacity(d)).collect();
            for column in &mut columns {
                for (c, slice) in column.chunks_mut(CHUNK_ROWS).enumerate() {
                    chunk_slices[c].push(slice);
                }
            }
            let mut tasks: Vec<(usize, Vec<&mut [u32]>)> =
                chunk_slices.into_iter().enumerate().collect();
            let workers = resolve_threads(threads).min(chunk_count).max(1);
            let per_worker = tasks.len().div_ceil(workers);
            std::thread::scope(|scope| {
                while !tasks.is_empty() {
                    let batch: Vec<_> = tasks.drain(..per_worker.min(tasks.len())).collect();
                    scope.spawn(move || {
                        for (c, mut slices) in batch {
                            // Fresh per chunk: attributes a (hand-built)
                            // model never writes must hold the same value —
                            // zero — in every chunk, regardless of which
                            // worker batch the chunk landed in.
                            let mut tuple = vec![0u32; d];
                            let mut rng = StdRng::seed_from_u64(chunk_seed(base, c));
                            for row in 0..slices[0].len() {
                                self.sample_row(&mut tuple, &mut rng);
                                for (col, &value) in slices.iter_mut().zip(tuple.iter()) {
                                    col[row] = value;
                                }
                            }
                        }
                    });
                }
            });
        }
        Ok(Dataset::from_columns(self.schema.clone(), columns)?)
    }

    /// Streams `rows` synthetic tuples as row-major chunks of (at most)
    /// [`CHUNK_ROWS`] rows each, without materialising the full dataset.
    ///
    /// The stream consumes exactly one `next_u64` from `rng` — the same base
    /// draw as [`CompiledSampler::sample_dataset`] — and derives every chunk's
    /// RNG stream from `(base, chunk index)`, so for a given `rng` state the
    /// concatenated chunks hold exactly the rows `sample_dataset` would
    /// return, in the same order. This is the contract the serving layer
    /// relies on: a streamed response is byte-identical to the batch path for
    /// a fixed seed, regardless of how many requests run concurrently.
    ///
    /// Equivalent to [`CompiledSampler::stream_spec`] with
    /// [`SampleSpec::rows`]`(rows)` (which can additionally clamp evidence,
    /// project columns, and resume mid-stream).
    pub fn stream_rows<R: Rng + ?Sized>(&self, rows: usize, rng: &mut R) -> RowStream<'_> {
        RowStream {
            sampler: self,
            base: rng.next_u64(),
            rows,
            next_row: 0,
            evidence: Vec::new(),
            weighted: false,
            projection: None,
        }
    }

    /// Streams rows according to `spec`: evidence-conditioned, column-
    /// projected, resumable. Consumes exactly one `next_u64` from `rng`
    /// (like [`CompiledSampler::stream_rows`]) — resuming with the same
    /// `rng` state and a nonzero [`SampleSpec::start_row`] therefore yields
    /// exactly the suffix of the unresumed stream, byte for byte once
    /// rendered.
    ///
    /// # Conditioning semantics
    ///
    /// Evidence attributes are clamped to their observed codes in every row.
    /// When the evidence set is **ancestrally closed** (every ancestor of an
    /// evidence attribute is itself evidence — e.g. evidence on network
    /// roots), clamped ancestral sampling draws *exactly* from
    /// `Pr*[free | evidence]`. Otherwise the sampler falls back to
    /// likelihood-weighted resampling: per output row it draws
    /// [`LW_CANDIDATES`] clamped candidates, weights each by
    /// `∏ Pr[eᵢ = vᵢ | parents]`, and picks one proportionally — an exact
    /// scheme in the limit, with O(1/[`LW_CANDIDATES`]) resampling bias. Both
    /// modes are deterministic for a fixed `(model, seed, spec)` and use the
    /// same per-chunk RNG streams, so resumed conditional streams are also
    /// suffix-identical.
    ///
    /// # Errors
    /// Returns [`PrivBayesError::InvalidConfig`] for evidence or projection
    /// attributes out of range or repeated, evidence codes outside their
    /// domains, an empty projection list, or (in the ancestrally-closed
    /// mode, where it is exactly computable) evidence with probability zero
    /// under the model.
    pub fn stream_spec<R: Rng + ?Sized>(
        &self,
        spec: &SampleSpec,
        rng: &mut R,
    ) -> Result<RowStream<'_>, PrivBayesError> {
        let d = self.schema.len();
        let mut evidence: Vec<Option<u32>> = vec![None; d];
        for (i, &(attr, code)) in spec.evidence.iter().enumerate() {
            if attr >= d {
                return Err(PrivBayesError::InvalidConfig(format!(
                    "evidence attribute {attr} out of range"
                )));
            }
            if !self.schema.attribute(attr).domain().contains(code) {
                return Err(PrivBayesError::InvalidConfig(format!(
                    "evidence code {code} outside the domain of attribute {attr}"
                )));
            }
            if spec.evidence[..i].iter().any(|&(a, _)| a == attr) {
                return Err(PrivBayesError::InvalidConfig(format!(
                    "evidence attribute {attr} repeated"
                )));
            }
            evidence[attr] = Some(code);
        }
        if let Some(projection) = &spec.projection {
            if projection.is_empty() {
                return Err(PrivBayesError::InvalidConfig(
                    "projection must keep at least one attribute".into(),
                ));
            }
            for (i, &attr) in projection.iter().enumerate() {
                if attr >= d {
                    return Err(PrivBayesError::InvalidConfig(format!(
                        "projected attribute {attr} out of range"
                    )));
                }
                if projection[..i].contains(&attr) {
                    return Err(PrivBayesError::InvalidConfig(format!(
                        "projected attribute {attr} repeated"
                    )));
                }
            }
        }

        // Classify the evidence: `free[a]` marks attributes that are
        // non-evidence or have a non-evidence ancestor. Evidence whose
        // parents are all non-free is fully determined by other evidence, so
        // clamping is exact; any evidence with a free ancestor forces the
        // likelihood-weighted mode. Parents precede children in the
        // conditional list, so one forward sweep settles every attribute.
        let mut weighted = false;
        if !spec.evidence.is_empty() {
            let mut free = vec![false; d];
            for cond in &self.conditionals {
                let parents_free = cond.parent_attrs.iter().any(|&p| free[p]);
                if evidence[cond.child].is_none() {
                    free[cond.child] = true;
                } else {
                    free[cond.child] = parents_free;
                    weighted = weighted || parents_free;
                }
            }
            if !weighted {
                // Ancestrally closed: every evidence parent value is itself
                // evidence, so the evidence probability is an exact product —
                // reject impossible evidence up front.
                let mut tuple = vec![0u32; d];
                for &(attr, code) in &spec.evidence {
                    tuple[attr] = code;
                }
                let mut mass = 1.0f64;
                for cond in &self.conditionals {
                    if let Some(code) = evidence[cond.child] {
                        let idx = cond.slice_index(&tuple);
                        mass *= cond.probs[idx * cond.child_dim + code as usize];
                    }
                }
                if !mass.is_finite() || mass <= 0.0 {
                    return Err(PrivBayesError::InvalidConfig(
                        "evidence has probability zero under the model".into(),
                    ));
                }
            }
        }

        Ok(RowStream {
            sampler: self,
            base: rng.next_u64(),
            rows: spec.rows,
            next_row: spec.start_row,
            evidence: if spec.evidence.is_empty() { Vec::new() } else { evidence },
            weighted,
            projection: spec.projection.clone(),
        })
    }

    /// Samples `rows` synthetic tuples conditioned on `evidence` — the
    /// batch form of [`CompiledSampler::stream_spec`]: the returned dataset
    /// holds exactly the concatenated chunks the stream would yield for the
    /// same `rng` state (full schema width; project afterwards if needed).
    ///
    /// # Errors
    /// As [`CompiledSampler::stream_spec`].
    pub fn sample_conditional<R: Rng + ?Sized>(
        &self,
        rows: usize,
        evidence: &[(usize, u32)],
        rng: &mut R,
    ) -> Result<Dataset, PrivBayesError> {
        let spec = SampleSpec::rows(rows).with_evidence(evidence.to_vec());
        let stream = self.stream_spec(&spec, rng)?;
        let d = self.schema.len();
        let mut columns: Vec<Vec<u32>> = vec![Vec::with_capacity(rows); d];
        for chunk in stream {
            for tuple in &chunk {
                for (col, &value) in columns.iter_mut().zip(tuple) {
                    col.push(value);
                }
            }
        }
        Ok(Dataset::from_columns(self.schema.clone(), columns)?)
    }
}

/// Iterator over row-major chunks of synthetic tuples; see
/// [`CompiledSampler::stream_rows`] and [`CompiledSampler::stream_spec`].
#[derive(Debug)]
pub struct RowStream<'a> {
    sampler: &'a CompiledSampler,
    base: u64,
    rows: usize,
    next_row: usize,
    /// Per-attribute clamped codes; empty for unconditional streams.
    evidence: Vec<Option<u32>>,
    /// Whether conditioning needs likelihood-weighted resampling (evidence
    /// with a non-evidence ancestor) instead of exact clamping.
    weighted: bool,
    /// Columns each yielded tuple carries, in order (`None` = all).
    projection: Option<Vec<usize>>,
}

impl RowStream<'_> {
    /// Total rows of the unresumed stream (resumed streams yield
    /// [`RowStream::remaining_rows`] of them).
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.rows
    }

    /// Rows still to be yielded.
    #[must_use]
    pub fn remaining_rows(&self) -> usize {
        self.rows.saturating_sub(self.next_row)
    }

    /// Whether this stream conditions by likelihood-weighted resampling
    /// (evidence with a non-evidence ancestor) rather than exact clamping.
    /// In this mode impossible evidence is not detectable up front — the
    /// serving layer uses this to decide when to run the exact
    /// evidence-mass guard.
    #[must_use]
    pub fn is_likelihood_weighted(&self) -> bool {
        self.weighted
    }

    /// Copies the projected columns of `tuple` into an owned row.
    fn project(&self, tuple: &[u32]) -> Vec<u32> {
        match &self.projection {
            Some(keep) => keep.iter().map(|&attr| tuple[attr]).collect(),
            None => tuple.to_vec(),
        }
    }

    /// One likelihood-weighted output row: draws [`LW_CANDIDATES`] clamped
    /// candidates into `cand`/`weights`, then copies one — picked with
    /// probability proportional to its weight — into `out`. Retries up to
    /// [`LW_MAX_ROUNDS`] rounds when every weight is zero (or non-finite),
    /// then falls back to the last clamped candidate so a stream over
    /// (near-)impossible evidence degrades to clamped rows instead of
    /// panicking a serving worker mid-response.
    fn weighted_row<R: Rng + ?Sized>(
        &self,
        tuple: &mut [u32],
        cand: &mut [u32],
        weights: &mut [f64],
        out: &mut [u32],
        rng: &mut R,
    ) {
        let d = tuple.len();
        for _ in 0..LW_MAX_ROUNDS {
            for c in 0..LW_CANDIDATES {
                weights[c] = self.sampler.sample_row_clamped(tuple, &self.evidence, rng);
                cand[c * d..(c + 1) * d].copy_from_slice(tuple);
            }
            let total: f64 = weights.iter().sum();
            if total > 0.0 && total.is_finite() {
                let mut u = rng.random::<f64>() * total;
                let mut pick = LW_CANDIDATES - 1;
                for (c, &w) in weights.iter().enumerate() {
                    if u < w {
                        pick = c;
                        break;
                    }
                    u -= w;
                }
                out.copy_from_slice(&cand[pick * d..(pick + 1) * d]);
                return;
            }
        }
        out.copy_from_slice(&cand[(LW_CANDIDATES - 1) * d..]);
    }
}

impl Iterator for RowStream<'_> {
    /// One chunk: `len ≤ CHUNK_ROWS` rows, each of projection width (schema
    /// width when unprojected).
    type Item = Vec<Vec<u32>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_row >= self.rows {
            return None;
        }
        let d = self.sampler.schema.len();
        let chunk_index = self.next_row / CHUNK_ROWS;
        let chunk_start = chunk_index * CHUNK_ROWS;
        let len = CHUNK_ROWS.min(self.rows - chunk_start);
        // Rows of the resumed chunk that precede the resume point: generated
        // (they advance the chunk's RNG stream identically) but not yielded.
        let skip = self.next_row - chunk_start;
        // Identical per-chunk setup to `sample_dataset`: fresh zeroed tuple,
        // fresh RNG stream from (base, chunk index).
        let mut tuple = vec![0u32; d];
        let mut rng = StdRng::seed_from_u64(chunk_seed(self.base, chunk_index));
        let mut chunk = Vec::with_capacity(len - skip);
        if self.evidence.is_empty() {
            for i in 0..len {
                self.sampler.sample_row(&mut tuple, &mut rng);
                if i >= skip {
                    chunk.push(self.project(&tuple));
                }
            }
        } else if !self.weighted {
            for i in 0..len {
                let _ = self.sampler.sample_row_clamped(&mut tuple, &self.evidence, &mut rng);
                if i >= skip {
                    chunk.push(self.project(&tuple));
                }
            }
        } else {
            let mut cand = vec![0u32; LW_CANDIDATES * d];
            let mut weights = vec![0.0f64; LW_CANDIDATES];
            let mut out = vec![0u32; d];
            for i in 0..len {
                self.weighted_row(&mut tuple, &mut cand, &mut weights, &mut out, &mut rng);
                if i >= skip {
                    chunk.push(self.project(&out));
                }
            }
        }
        self.next_row = chunk_start + len;
        Some(chunk)
    }
}

/// The RNG seed of chunk `c`: SplitMix-style spacing under the base seed,
/// then expanded by `StdRng::seed_from_u64`'s own SplitMix64 pass.
fn chunk_seed(base: u64, c: usize) -> u64 {
    base.wrapping_add((c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Samples `rows` synthetic tuples from `model`.
///
/// Generalised parents are handled by generalising the already-sampled raw
/// parent value through the attribute's taxonomy at sampling time (§5.2).
/// Sampling is chunk-parallel; see [`sample_synthetic_with_threads`] to pin
/// the worker count. Given a fixed `rng` state the output is identical for
/// every worker count.
///
/// # Errors
/// Returns [`PrivBayesError::InvalidNetwork`] if the model does not cover all
/// attributes of `schema`.
pub fn sample_synthetic<R: Rng + ?Sized>(
    model: &NoisyModel,
    schema: &Schema,
    rows: usize,
    rng: &mut R,
) -> Result<Dataset, PrivBayesError> {
    sample_synthetic_with_threads(model, schema, rows, None, rng)
}

/// As [`sample_synthetic`], with an explicit worker count (`None` uses
/// [`std::thread::available_parallelism`]).
///
/// # Errors
/// As [`sample_synthetic`].
pub fn sample_synthetic_with_threads<R: Rng + ?Sized>(
    model: &NoisyModel,
    schema: &Schema,
    rows: usize,
    threads: Option<usize>,
    rng: &mut R,
) -> Result<Dataset, PrivBayesError> {
    model.compile(schema)?.sample_dataset(rows, threads, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditionals::noisy_conditionals_general;
    use crate::network::{ApPair, BayesianNetwork};
    use privbayes_data::{Attribute, TaxonomyTree};
    use privbayes_marginals::{Axis, ContingencyTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn copy_chain_data(n: usize) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::binary("b"),
            Attribute::binary("c"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i % 2, i % 2, i % 2]).collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn noise_free_model_reproduces_deterministic_chain() {
        let data = copy_chain_data(100);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 500, &mut rng).unwrap();
        assert_eq!(synth.n(), 500);
        // Every sampled row must satisfy a == b == c (the chain is a copy).
        for row in 0..synth.n() {
            let r = synth.row(row);
            assert_eq!(r[0], r[1]);
            assert_eq!(r[1], r[2]);
        }
        // And a should be roughly uniform.
        let ones = synth.column(0).iter().filter(|&&v| v == 1).count();
        assert!((ones as f64 / 500.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn sampled_marginals_approach_model_marginals() {
        let data = copy_chain_data(1000);
        let net = BayesianNetwork::new(
            vec![ApPair::new(2, vec![]), ApPair::new(0, vec![2]), ApPair::new(1, vec![2])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 20_000, &mut rng).unwrap();
        let truth = ContingencyTable::from_dataset(&data, &[Axis::raw(0), Axis::raw(1)]);
        let got = ContingencyTable::from_dataset(&synth, &[Axis::raw(0), Axis::raw(1)]);
        let tvd = privbayes_marginals::total_variation(truth.values(), got.values());
        assert!(tvd < 0.03, "sampling should match the model, tvd = {tvd}");
    }

    #[test]
    fn output_is_invariant_to_worker_count() {
        let data = copy_chain_data(600);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let model = noisy_conditionals_general(&data, &net, Some(0.5), &mut rng).unwrap();
        // More rows than one chunk, not a multiple of the chunk size.
        let rows = 2 * CHUNK_ROWS + 137;
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(99);
            sample_synthetic_with_threads(&model, data.schema(), rows, Some(threads), &mut rng)
                .unwrap()
        };
        let reference = run(1);
        for threads in [2, 3, 7] {
            let got = run(threads);
            for attr in 0..data.d() {
                assert_eq!(got.column(attr), reference.column(attr), "threads={threads}");
            }
        }
    }

    #[test]
    fn generalized_parent_sampling_uses_taxonomy() {
        // Attribute c has 4 values with a binary taxonomy; child b depends on
        // c's level-1 generalisation (c < 2 vs c >= 2).
        let schema = Schema::new(vec![
            Attribute::categorical("c", 4)
                .unwrap()
                .with_taxonomy(TaxonomyTree::balanced_binary(4).unwrap())
                .unwrap(),
            Attribute::binary("b"),
        ])
        .unwrap();
        let rows: Vec<Vec<u32>> = (0..200u32).map(|i| vec![i % 4, u32::from(i % 4 >= 2)]).collect();
        let data = Dataset::from_rows(schema, &rows).unwrap();
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::generalized(1, vec![Axis { attr: 0, level: 1 }])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 2000, &mut rng).unwrap();
        for row in 0..synth.n() {
            let r = synth.row(row);
            assert_eq!(r[1], u32::from(r[0] >= 2), "b must track c's level-1 group");
        }
    }

    #[test]
    fn zero_rows_allowed() {
        let data = copy_chain_data(10);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let synth = sample_synthetic(&model, data.schema(), 0, &mut rng).unwrap();
        assert_eq!(synth.n(), 0);
    }

    #[test]
    fn incomplete_model_rejected() {
        let data = copy_chain_data(10);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        assert!(sample_synthetic(&model, data.schema(), 10, &mut rng).is_err());
        assert!(model.compile(data.schema()).is_err());
    }

    #[test]
    fn unreachable_degenerate_slice_does_not_break_compilation() {
        // A hand-built model (fields are public) where parent value a = 1 is
        // structurally impossible and its conditional slice is all-zero. The
        // lazy pre-compile sampler tolerated this; compilation must too.
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let net =
            BayesianNetwork::new(vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])], &schema)
                .unwrap();
        let model = crate::conditionals::NoisyModel {
            network: net,
            conditionals: vec![
                crate::conditionals::Conditional {
                    child: 0,
                    parents: vec![],
                    parent_dims: vec![],
                    child_dim: 2,
                    probs: vec![1.0, 0.0], // a is always 0
                },
                crate::conditionals::Conditional {
                    child: 1,
                    parents: vec![Axis::raw(0)],
                    parent_dims: vec![2],
                    child_dim: 2,
                    probs: vec![0.5, 0.5, 0.0, 0.0], // a = 1 slice is degenerate
                },
            ],
        };
        let mut rng = StdRng::seed_from_u64(8);
        let synth = sample_synthetic(&model, &schema, 300, &mut rng).unwrap();
        assert!(synth.column(0).iter().all(|&v| v == 0));
    }

    #[test]
    fn uncovered_attribute_is_zero_and_worker_invariant() {
        // A hand-built model whose conditionals never write attribute 1
        // (both cover child 0). The pre-compile sampler emitted zeros for
        // the uncovered column; the chunked sampler must do the same for
        // every worker count — the tuple buffer is reset per chunk.
        let schema = Schema::new(vec![Attribute::binary("a"), Attribute::binary("b")]).unwrap();
        let net =
            BayesianNetwork::new(vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0])], &schema)
                .unwrap();
        let root = crate::conditionals::Conditional {
            child: 0,
            parents: vec![],
            parent_dims: vec![],
            child_dim: 2,
            probs: vec![0.5, 0.5],
        };
        let model = crate::conditionals::NoisyModel {
            network: net,
            conditionals: vec![root.clone(), root],
        };
        let rows = 3 * CHUNK_ROWS + 17;
        let run = |threads: usize| {
            sample_synthetic_with_threads(
                &model,
                &schema,
                rows,
                Some(threads),
                &mut StdRng::seed_from_u64(9),
            )
            .unwrap()
        };
        let sequential = run(1);
        assert!(sequential.column(1).iter().all(|&v| v == 0), "uncovered column must be zero");
        for threads in [2usize, 5] {
            assert_eq!(run(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn stream_rows_matches_sample_dataset_exactly() {
        let data = copy_chain_data(400);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let model = noisy_conditionals_general(&data, &net, Some(0.8), &mut rng).unwrap();
        let compiled = model.compile(data.schema()).unwrap();
        // More rows than one chunk, not a multiple of the chunk size.
        let rows = 2 * CHUNK_ROWS + 311;
        let batch = compiled.sample_dataset(rows, Some(3), &mut StdRng::seed_from_u64(77)).unwrap();
        let stream = compiled.stream_rows(rows, &mut StdRng::seed_from_u64(77));
        assert_eq!(stream.total_rows(), rows);
        let mut row = 0;
        for chunk in stream {
            assert!(chunk.len() <= CHUNK_ROWS);
            for tuple in chunk {
                assert_eq!(tuple, batch.row(row), "row {row}");
                row += 1;
            }
        }
        assert_eq!(row, rows, "stream must yield every row exactly once");
        // Both paths consume exactly one base draw from the caller's RNG.
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let _ = compiled.sample_dataset(10, None, &mut a).unwrap();
        let _ = compiled.stream_rows(10, &mut b).count();
        assert_eq!(a.next_u64(), b.next_u64(), "RNG must advance identically");
    }

    #[test]
    fn stream_rows_zero_rows_is_empty() {
        let data = copy_chain_data(10);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let compiled = model.compile(data.schema()).unwrap();
        assert_eq!(compiled.stream_rows(0, &mut rng).count(), 0);
    }

    #[test]
    fn compiled_sampler_is_reusable() {
        let data = copy_chain_data(50);
        let net = BayesianNetwork::new(
            vec![ApPair::new(0, vec![]), ApPair::new(1, vec![0]), ApPair::new(2, vec![1])],
            data.schema(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let model = noisy_conditionals_general(&data, &net, None, &mut rng).unwrap();
        let compiled = model.compile(data.schema()).unwrap();
        let a = compiled.sample_dataset(100, Some(1), &mut StdRng::seed_from_u64(7)).unwrap();
        let b = compiled.sample_dataset(100, Some(4), &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a.n(), 100);
        for attr in 0..data.d() {
            assert_eq!(a.column(attr), b.column(attr));
        }
    }
}
