//! θ-usefulness (Definition 4.7, Lemma 4.8, §5.2): choosing how much marginal
//! structure the distribution-learning budget can support.
//!
//! A noisy distribution is θ-useful if its average information-to-noise ratio
//! is at least θ. For all-binary data this yields a closed-form choice of the
//! network degree `k`; for general domains it yields a per-child bound τ on
//! the domain size of candidate parent sets.

/// Usefulness of the (k+1)-dimensional binary marginals released by
/// Algorithm 1: `n·ε₂ / ((d−k)·2^{k+2})` (Lemma 4.8).
///
/// # Panics
/// Panics if `k >= d`.
#[must_use]
pub fn usefulness_binary(n: usize, d: usize, k: usize, epsilon2: f64) -> f64 {
    assert!(k < d, "degree k={k} must be below d={d}");
    (n as f64) * epsilon2 / (((d - k) as f64) * 2f64.powi(k as i32 + 2))
}

/// The paper's automatic degree choice (§4.5): the largest positive `k` such
/// that Algorithm 1's marginals are θ-useful, or 0 if none exists.
#[must_use]
pub fn choose_degree_binary(n: usize, d: usize, epsilon2: f64, theta: f64) -> usize {
    let mut best = 0usize;
    for k in 1..d {
        if usefulness_binary(n, d, k, epsilon2) >= theta {
            best = k;
        }
    }
    best
}

/// Usefulness of one `cells`-cell marginal under Algorithm 3's noise
/// (`Lap(2d/nε₂)` per cell): `n·ε₂ / (2·d·cells)` (§5.2).
#[must_use]
pub fn usefulness_general(n: usize, d: usize, epsilon2: f64, cells: usize) -> f64 {
    (n as f64) * epsilon2 / (2.0 * d as f64 * cells as f64)
}

/// Maximum θ-useful joint size for Algorithm 3: `m ≤ n·ε₂ / (2dθ)` (§5.2).
#[must_use]
pub fn max_joint_cells(n: usize, d: usize, epsilon2: f64, theta: f64) -> f64 {
    (n as f64) * epsilon2 / (2.0 * d as f64 * theta)
}

/// The per-child parent-domain bound τ passed to `MaximalParentSets`
/// (Algorithm 4 line 6): `n·ε₂ / (2dθ·|dom(X)|)`.
#[must_use]
pub fn tau_for_child(n: usize, d: usize, epsilon2: f64, theta: f64, child_domain: usize) -> f64 {
    max_joint_cells(n, d, epsilon2, theta) / child_domain as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lemma_4_8_formula() {
        // n=1000, d=10, k=2, ε₂=0.8: 1000·0.8 / (8·16) = 6.25.
        assert!((usefulness_binary(1000, 10, 2, 0.8) - 6.25).abs() < 1e-12);
    }

    #[test]
    fn degree_grows_with_epsilon() {
        let (n, d, theta) = (21_574, 16, 4.0);
        let degrees: Vec<usize> = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6]
            .iter()
            .map(|&e| choose_degree_binary(n, d, (1.0 - 0.3) * e, theta))
            .collect();
        for w in degrees.windows(2) {
            assert!(w[0] <= w[1], "degree must be monotone in ε: {degrees:?}");
        }
        assert!(degrees[5] >= 3, "NLTCS at ε=1.6 supports a multi-degree network");
    }

    #[test]
    fn tiny_epsilon_chooses_independence() {
        // §4.5: with very small ε the best choice is k = 0.
        let k = choose_degree_binary(1000, 16, 0.001, 4.0);
        assert_eq!(k, 0);
    }

    #[test]
    fn chosen_degree_is_theta_useful() {
        let (n, d, eps2, theta) = (47_461, 23, 1.12, 4.0);
        let k = choose_degree_binary(n, d, eps2, theta);
        assert!(k >= 1);
        assert!(usefulness_binary(n, d, k, eps2) >= theta);
        assert!(usefulness_binary(n, d, k + 1, eps2) < theta, "k is maximal");
    }

    #[test]
    fn general_domain_bound() {
        // m ≤ nε₂/(2dθ); a marginal with exactly that many cells is θ-useful.
        let (n, d, eps2, theta) = (38_000, 14, 1.12, 4.0);
        let m = max_joint_cells(n, d, eps2, theta);
        assert!(usefulness_general(n, d, eps2, m.floor() as usize) >= theta);
        assert!(usefulness_general(n, d, eps2, (m * 2.0) as usize) < theta);
    }

    #[test]
    fn tau_divides_by_child_domain() {
        let tau = tau_for_child(1000, 10, 1.0, 4.0, 16);
        assert!((tau - 1000.0 / (2.0 * 10.0 * 4.0 * 16.0)).abs() < 1e-12);
    }

    proptest! {
        /// Usefulness is non-increasing in k ((d−k)·2^{k+2} grows whenever
        /// d−k ≥ 2, with equality exactly at k = d−2) and θ-choice picks a
        /// k that satisfies the threshold.
        #[test]
        fn prop_usefulness_monotone(
            n in 100usize..100_000,
            d in 3usize..24,
            eps in 0.05f64..2.0,
        ) {
            for k in 1..d - 1 {
                prop_assert!(
                    usefulness_binary(n, d, k, eps) >= usefulness_binary(n, d, k + 1, eps)
                );
            }
            let k = choose_degree_binary(n, d, eps, 4.0);
            if k > 0 {
                prop_assert!(usefulness_binary(n, d, k, eps) >= 4.0);
            }
            prop_assert!(k < d);
        }
    }
}
