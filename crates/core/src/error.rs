//! Error type for the PrivBayes core crate.

use std::fmt;

use privbayes_data::DataError;
use privbayes_dp::DpError;

/// Errors raised by PrivBayes phases.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivBayesError {
    /// Underlying data-model error.
    Data(DataError),
    /// Underlying mechanism / budget error.
    Dp(DpError),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// The score function cannot be applied to this input (e.g. `F` on a
    /// non-binary child attribute — Theorem 5.1).
    UnsupportedScore(String),
    /// The network is structurally invalid (not a DAG in construction order,
    /// duplicate children, unknown attributes, ...).
    InvalidNetwork(String),
}

impl fmt::Display for PrivBayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivBayesError::Data(e) => write!(f, "data error: {e}"),
            PrivBayesError::Dp(e) => write!(f, "dp error: {e}"),
            PrivBayesError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            PrivBayesError::UnsupportedScore(m) => write!(f, "unsupported score: {m}"),
            PrivBayesError::InvalidNetwork(m) => write!(f, "invalid network: {m}"),
        }
    }
}

impl std::error::Error for PrivBayesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrivBayesError::Data(e) => Some(e),
            PrivBayesError::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for PrivBayesError {
    fn from(e: DataError) -> Self {
        PrivBayesError::Data(e)
    }
}

impl From<DpError> for PrivBayesError {
    fn from(e: DpError) -> Self {
        PrivBayesError::Dp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: PrivBayesError = DataError::UnknownAttribute("x".into()).into();
        assert!(matches!(e, PrivBayesError::Data(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: PrivBayesError = DpError::InvalidParameter("eps".into()).into();
        assert!(e.to_string().contains("eps"));

        let e = PrivBayesError::InvalidConfig("beta".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
