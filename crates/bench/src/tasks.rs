//! Shared task runners: count-query accuracy, network quality, and multi-SVM
//! classification — the three measurement families of §6.

use privbayes::greedy::{greedy_bayes_adaptive, greedy_bayes_fixed_k, GreedySettings};
use privbayes::nonprivate::sum_mutual_information;
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes::score::ScoreKind;
use privbayes::theta::choose_degree_binary;
use privbayes_baselines::{
    contingency_marginals, fourier_marginals, laplace_marginals, mwem_marginals, uniform_marginals,
    MwemOptions,
};
use privbayes_data::encoding::{binarize, EncodingKind};
use privbayes_data::Dataset;
use privbayes_datasets::ClassificationTarget;
use privbayes_marginals::metrics::average_workload_tvd_tables;
use privbayes_marginals::{average_workload_tvd, AlphaWayWorkload, CountEngine};
use privbayes_ml::{
    misclassification_rate, FeatureMatrix, LinearSvm, MajorityClassifier, PrivGene,
    PrivGeneOptions, PrivateErm, PrivateErmOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The harness degree cap (DESIGN.md §4); the paper's algorithm is unbounded.
pub const MAX_DEGREE: usize = 4;

/// The encoding the paper recommends per dataset class: plain binary data
/// needs no encoding machinery (Binary ≡ identity, score `F`); general
/// domains use Hierarchical-R (§6.3).
#[must_use]
pub fn default_encoding(data: &Dataset) -> EncodingKind {
    if data.schema().all_binary() {
        EncodingKind::Binary
    } else {
        EncodingKind::Hierarchical
    }
}

/// Paper-default PrivBayes options for a dataset at budget ε.
#[must_use]
pub fn privbayes_options(data: &Dataset, epsilon: f64) -> PrivBayesOptions {
    let mut o = PrivBayesOptions::new(epsilon).with_encoding(default_encoding(data));
    o.max_degree = MAX_DEGREE;
    o
}

/// Runs PrivBayes and measures the average α-way marginal TVD of the
/// synthetic output.
///
/// # Panics
/// Panics if synthesis fails (configuration errors are programming errors in
/// the harness).
#[must_use]
pub fn privbayes_count_error(
    data: &Dataset,
    alpha: usize,
    options: PrivBayesOptions,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options).synthesize(data, &mut rng).expect("synthesis");
    average_workload_tvd(data, &result.synthetic, alpha)
}

/// The count-query baselines of §6.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselineCount {
    /// Laplace noise on every marginal \[19\].
    Laplace,
    /// Fourier coefficients \[2\].
    Fourier,
    /// Noisy full contingency table.
    Contingency,
    /// MWEM \[26\] with the given options.
    Mwem(MwemOptions),
    /// The uniform distribution.
    Uniform,
}

impl BaselineCount {
    /// Method name for table columns.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BaselineCount::Laplace => "Laplace",
            BaselineCount::Fourier => "Fourier",
            BaselineCount::Contingency => "Contingency",
            BaselineCount::Mwem(_) => "MWEM",
            BaselineCount::Uniform => "Uniform",
        }
    }
}

/// Runs a count baseline and measures its average workload TVD.
#[must_use]
pub fn baseline_count_error(
    data: &Dataset,
    alpha: usize,
    method: BaselineCount,
    epsilon: f64,
    seed: u64,
) -> f64 {
    let workload = AlphaWayWorkload::new(data.d(), alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    let engine = CountEngine::new(data);
    let tables = match method {
        BaselineCount::Laplace => laplace_marginals(&engine, &workload, epsilon, &mut rng),
        BaselineCount::Fourier => fourier_marginals(data, &workload, epsilon, &mut rng),
        BaselineCount::Contingency => contingency_marginals(&engine, &workload, epsilon, &mut rng),
        BaselineCount::Mwem(opts) => mwem_marginals(&engine, &workload, epsilon, opts, &mut rng),
        BaselineCount::Uniform => uniform_marginals(data.schema(), &workload),
    };
    average_workload_tvd_tables(data, &tables, &workload)
}

/// Learns a network exactly as the pipeline would (θ = 4, β split) and
/// returns its Σ mutual-information quality — the Figure 4 metric.
/// `score = None` selects non-privately by argmax mutual information (the
/// NoPrivacy line).
///
/// # Panics
/// Panics on configuration errors.
#[must_use]
pub fn network_quality(data: &Dataset, epsilon: f64, score: Option<ScoreKind>, seed: u64) -> f64 {
    let beta = 0.3;
    let theta = 4.0;
    let (eps1, eps2) = (beta * epsilon, (1.0 - beta) * epsilon);
    let mut rng = StdRng::seed_from_u64(seed);
    let settings = match score {
        Some(s) => GreedySettings::private(s, eps1).with_max_degree(MAX_DEGREE),
        None => {
            GreedySettings::non_private(ScoreKind::MutualInformation).with_max_degree(MAX_DEGREE)
        }
    };
    if data.schema().all_binary() {
        let k = choose_degree_binary(data.n(), data.d(), eps2, theta).min(MAX_DEGREE);
        let net = greedy_bayes_fixed_k(data, k, &settings, &mut rng).expect("greedy");
        sum_mutual_information(data, &net)
    } else {
        let net =
            greedy_bayes_adaptive(data, theta, eps2, false, &settings, &mut rng).expect("greedy");
        sum_mutual_information(data, &net)
    }
}

/// SVM training epochs used throughout the harness.
pub const SVM_EPOCHS: usize = 10;

/// Trains a hinge-loss SVM (C = 1) on `train_source` and evaluates it on
/// `test` for one classification target.
#[must_use]
pub fn svm_error(
    train_source: &Dataset,
    test: &Dataset,
    target: &ClassificationTarget,
    seed: u64,
) -> f64 {
    let train_m = FeatureMatrix::build(train_source, target.attr, &target.positive);
    let test_m = FeatureMatrix::build(test, target.attr, &target.positive);
    let mut rng = StdRng::seed_from_u64(seed);
    let svm = LinearSvm::train_hinge(&train_m, 1.0, SVM_EPOCHS, &mut rng);
    misclassification_rate(&svm, &test_m)
}

/// Runs PrivBayes once on the training data, then trains all `targets`'
/// SVMs on the *synthetic* output (the whole point of §6.6: one ε-DP release
/// serves every downstream task).
///
/// # Panics
/// Panics on synthesis failure.
#[must_use]
pub fn privbayes_svm_errors(
    train: &Dataset,
    test: &Dataset,
    targets: &[ClassificationTarget],
    options: PrivBayesOptions,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options).synthesize(train, &mut rng).expect("synthesis");
    targets
        .iter()
        .enumerate()
        .map(|(i, t)| svm_error(&result.synthetic, test, t, seed.wrapping_add(i as u64)))
        .collect()
}

/// The classification baselines of §6.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmBaseline {
    /// PrivateERM at ε/4 per classifier \[8\].
    PrivateErm,
    /// PrivateERM with the full ε for a single classifier.
    PrivateErmSingle,
    /// PrivGene at ε/4 per classifier \[50\].
    PrivGene,
    /// Noisy-majority constant prediction at ε/4 per classifier.
    Majority,
    /// Non-private SVM trained on the real data.
    NoPrivacy,
}

impl SvmBaseline {
    /// Method name for table columns.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SvmBaseline::PrivateErm => "PrivateERM",
            SvmBaseline::PrivateErmSingle => "PrivateERM(Single)",
            SvmBaseline::PrivGene => "PrivGene",
            SvmBaseline::Majority => "Majority",
            SvmBaseline::NoPrivacy => "NoPrivacy",
        }
    }

    /// The budget this method spends on one classifier given the overall ε
    /// (§6.6: methods that train per-classifier split ε four ways).
    #[must_use]
    pub fn per_classifier_epsilon(&self, epsilon: f64) -> Option<f64> {
        match self {
            SvmBaseline::PrivateErm | SvmBaseline::PrivGene | SvmBaseline::Majority => {
                Some(epsilon / 4.0)
            }
            SvmBaseline::PrivateErmSingle => Some(epsilon),
            SvmBaseline::NoPrivacy => None,
        }
    }
}

/// Trains one baseline classifier and returns its test misclassification
/// rate. `epsilon` is the *overall* budget; the per-classifier split is
/// applied internally.
#[must_use]
pub fn baseline_svm_error(
    train: &Dataset,
    test: &Dataset,
    target: &ClassificationTarget,
    method: SvmBaseline,
    epsilon: f64,
    seed: u64,
) -> f64 {
    let train_m = FeatureMatrix::build(train, target.attr, &target.positive);
    let test_m = FeatureMatrix::build(test, target.attr, &target.positive);
    let mut rng = StdRng::seed_from_u64(seed);
    let eps = method.per_classifier_epsilon(epsilon);
    match method {
        SvmBaseline::PrivateErm | SvmBaseline::PrivateErmSingle => {
            let model =
                PrivateErm::new(PrivateErmOptions::default()).train(&train_m, eps, &mut rng);
            misclassification_rate(&model, &test_m)
        }
        SvmBaseline::PrivGene => {
            let model = PrivGene::new(PrivGeneOptions::default()).train(
                &train_m,
                eps.expect("PrivGene is private"),
                &mut rng,
            );
            misclassification_rate(&model, &test_m)
        }
        SvmBaseline::Majority => {
            let c =
                MajorityClassifier::train(&train_m, eps.expect("Majority is private"), &mut rng);
            c.misclassification_rate(&test_m)
        }
        SvmBaseline::NoPrivacy => {
            let svm = LinearSvm::train_hinge(&train_m, 1.0, SVM_EPOCHS, &mut rng);
            misclassification_rate(&svm, &test_m)
        }
    }
}

/// Binarised dimensionality of a dataset (used to label Figure 4 panels).
#[must_use]
pub fn binarized_dims(data: &Dataset) -> usize {
    let (bin, _) = binarize(data, EncodingKind::Binary).expect("binarise");
    bin.d()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_datasets::nltcs::nltcs_sized;

    #[test]
    fn privbayes_count_error_is_bounded() {
        let ds = nltcs_sized(1, 400);
        let err = privbayes_count_error(&ds.data, 2, privbayes_options(&ds.data, 1.0), 7);
        assert!((0.0..=1.0).contains(&err));
    }

    #[test]
    fn baselines_run_on_small_binary_data() {
        let ds = nltcs_sized(2, 300);
        for method in [
            BaselineCount::Laplace,
            BaselineCount::Fourier,
            BaselineCount::Contingency,
            BaselineCount::Mwem(MwemOptions {
                iterations: 3,
                max_candidates: Some(10),
                update_passes: 2,
            }),
            BaselineCount::Uniform,
        ] {
            let err = baseline_count_error(&ds.data, 2, method, 0.5, 11);
            assert!((0.0..=1.0).contains(&err), "{}: {err}", method.name());
        }
    }

    #[test]
    fn network_quality_nonprivate_dominates_noisy() {
        let ds = nltcs_sized(3, 1500);
        let best = network_quality(&ds.data, 1.6, None, 5);
        let mut noisy_sum = 0.0;
        let reps = 3;
        for s in 0..reps {
            noisy_sum += network_quality(&ds.data, 0.05, Some(ScoreKind::F), 50 + s);
        }
        assert!(best >= noisy_sum / reps as f64 - 0.15, "argmax should be at least as good");
    }

    #[test]
    fn svm_flow_runs_end_to_end() {
        let ds = nltcs_sized(4, 800);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = ds.data.split_train_test(0.8, &mut rng);
        let errs =
            privbayes_svm_errors(&train, &test, &ds.targets, privbayes_options(&train, 1.0), 13);
        assert_eq!(errs.len(), 4);
        assert!(errs.iter().all(|e| (0.0..=1.0).contains(e)));
        for method in [
            SvmBaseline::PrivateErm,
            SvmBaseline::PrivateErmSingle,
            SvmBaseline::PrivGene,
            SvmBaseline::Majority,
            SvmBaseline::NoPrivacy,
        ] {
            let e = baseline_svm_error(&train, &test, &ds.targets[0], method, 0.8, 17);
            assert!((0.0..=1.0).contains(&e), "{}: {e}", method.name());
        }
    }

    #[test]
    fn per_classifier_split() {
        assert_eq!(SvmBaseline::PrivateErm.per_classifier_epsilon(0.8), Some(0.2));
        assert_eq!(SvmBaseline::PrivateErmSingle.per_classifier_epsilon(0.8), Some(0.8));
        assert_eq!(SvmBaseline::NoPrivacy.per_classifier_epsilon(0.8), None);
    }
}
