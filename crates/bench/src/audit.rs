//! Empirical privacy audit: membership-inference attacks against every
//! [`Method`], with the measured attacker advantage gated on the analytic
//! ε-DP bound.
//!
//! The suite *proves* ε-DP analytically (mechanism calibration, composition
//! accounting) — this module *measures* it. The audit follows the standard
//! shadow-model membership-inference template specialised to the
//! replace-one-tuple neighbourhood the noise scales are calibrated for
//! (`2d/(nε₂)` in `privbayes::conditionals`):
//!
//! 1. **Neighbour worlds.** From a base dataset `D` build the *exclude*
//!    world (`D` unchanged) and the *include* world (`D` with row 0
//!    replaced by an outlier **target** tuple — per attribute, the least
//!    frequent value). The two differ in exactly one tuple, so any ε-DP fit
//!    bounds what an attacker can learn about the swap.
//! 2. **Shadow fits.** For each seeded repetition, fit the method once on
//!    each world with the *same* seed (so a data-independent method like
//!    `uniform` yields bit-identical models and the attack reads exactly
//!    zero signal — the null-calibration control).
//! 3. **Likelihood-ratio score.** The attacker observes a released model
//!    and scores membership by the model's log-probability of the target
//!    tuple, computed through the bit-reproducible
//!    [`privbayes::inference::theta_projection`] joint when the domain fits
//!    under the cell cap (and the cell is positive), and through the
//!    equivalent product of network conditionals — floored per factor, see
//!    [`log_model_prob`] — otherwise.
//! 4. **Calibrate, then evaluate.** Repetitions are split in half. The
//!    first half *calibrates* the attack — threshold and direction chosen
//!    to maximise TPR − FPR — and the frozen rule is *evaluated* on the
//!    held-out half. Because the evaluation reps never influenced the rule,
//!    the measured advantage is an unbiased estimate of the rule's true
//!    advantage, which ε-DP bounds by `(e^ε − 1)/(e^ε + 1)`.
//! 5. **Gate.** A point passes iff
//!    `advantage ≤ bound + slack`, where `slack` is the two-sided Hoeffding
//!    confidence width of the (TPR − FPR) estimate at the configured
//!    failure probability δ: each rate is estimated from `m` i.i.d.
//!    Bernoulli reps, so `P(|rate − p| ≥ t) ≤ 2e^{−2mt²}`; splitting δ over
//!    the two rates gives `t = sqrt(ln(4/δ)/(2m))` and the advantage is off
//!    by at most `2t` with probability ≥ 1 − δ. A breach therefore means a
//!    real privacy bug (at confidence 1 − δ), not estimator noise.
//!
//! Utility (α = 2 workload TVD, the `methods` bench's metric) is measured
//! side by side so the audit table reads as the privacy column of the
//! method-vs-ε comparison.

use privbayes::inference::{theta_projection, DEFAULT_CELL_CAP};
use privbayes_data::Dataset;
use privbayes_marginals::average_workload_tvd;
use privbayes_model::ReleasedModel;
use privbayes_synth::{fit_method, FitSettings, Method};

/// Per-conditional probability floor for log-likelihood scores. Released
/// conditionals contain exact zeros (negative noisy cells clamp to 0), and
/// on high-dimensional schemas *some* factor of an outlier tuple is zero in
/// both worlds almost surely — an unfloored product would collapse every
/// score to −∞ and blind the attacker. Flooring per factor keeps the
/// remaining factors' evidence (standard log-likelihood smoothing).
const FACTOR_FLOOR: f64 = 1e-12;

/// An audit failure: a shadow fit or scoring step errored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError(pub String);

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit failed: {}", self.0)
    }
}

impl std::error::Error for AuditError {}

/// Audit hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// Seeded world-pair repetitions; the first half calibrates the attack
    /// rule, the second half evaluates it. Must be even and ≥ 4.
    pub reps: usize,
    /// Base seed; repetition seeds derive from it splitmix-style.
    pub base_seed: u64,
    /// Failure-probability budget δ of the gate's confidence slack.
    pub delta: f64,
    /// Cell cap for the θ-projection scorer (falls back to the direct
    /// conditional product above it).
    pub cell_cap: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self { reps: 40, base_seed: 0xA0D1_7000, delta: 1e-2, cell_cap: DEFAULT_CELL_CAP }
    }
}

impl AuditConfig {
    /// Evaluation repetitions (the held-out half).
    #[must_use]
    pub fn eval_reps(&self) -> usize {
        self.reps / 2
    }
}

/// One audited (method, ε) point: the measurement, the bound, the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOutcome {
    /// Method (or fitter) label.
    pub method: String,
    /// Requested total budget of each shadow fit.
    pub epsilon: f64,
    /// Budget the fits actually consumed (0 for `uniform`).
    pub epsilon_spent: f64,
    /// Measured attacker advantage TPR − FPR on the evaluation half.
    pub advantage: f64,
    /// True-positive rate of the frozen rule on held-out include worlds.
    pub tpr: f64,
    /// False-positive rate of the frozen rule on held-out exclude worlds.
    pub fpr: f64,
    /// Analytic ε-DP ceiling `(e^ε − 1)/(e^ε + 1)` at `epsilon_spent`.
    pub bound: f64,
    /// Hoeffding confidence width of the advantage estimate.
    pub slack: f64,
    /// Evaluation repetitions behind `tpr`/`fpr`.
    pub eval_reps: usize,
    /// α = 2 workload TVD of one representative fit's samples (utility,
    /// printed side by side with the leakage).
    pub avg_tvd_alpha2: f64,
}

impl AuditOutcome {
    /// The hard gate: measured advantage must sit under the analytic bound
    /// plus the estimate's confidence slack.
    #[must_use]
    pub fn passes_gate(&self) -> bool {
        self.advantage <= self.bound + self.slack
    }
}

/// The analytic ε-DP ceiling on membership advantage for one neighbouring
/// pair: `(e^ε − 1)/(e^ε + 1)` (tight for the randomised-response attack).
#[must_use]
pub fn advantage_bound(epsilon_spent: f64) -> f64 {
    let e = epsilon_spent.exp();
    (e - 1.0) / (e + 1.0)
}

/// Two-sided Hoeffding width of a TPR − FPR estimate from `eval_reps`
/// repetitions per world at failure probability `delta` (see module docs).
#[must_use]
pub fn hoeffding_slack(eval_reps: usize, delta: f64) -> f64 {
    2.0 * ((4.0 / delta).ln() / (2.0 * eval_reps as f64)).sqrt()
}

/// The include/exclude neighbour pair around an outlier target tuple.
#[derive(Debug, Clone)]
pub struct AuditWorlds {
    /// Base data with row 0 replaced by the target (member world).
    pub include: Dataset,
    /// The base data unchanged (non-member world).
    pub exclude: Dataset,
    /// The audited tuple: per attribute, the least frequent value in the
    /// base data (ties to the lowest code). An outlier maximises the
    /// attacker's signal, making the audit an upper-probe, not a soft one.
    pub target: Vec<u32>,
}

/// Builds the replace-one neighbour worlds for `base`.
///
/// # Panics
/// Panics if `base` is empty.
#[must_use]
pub fn neighbor_worlds(base: &Dataset) -> AuditWorlds {
    assert!(base.n() > 0, "audit needs a non-empty base dataset");
    let schema = base.schema().clone();
    let target: Vec<u32> = (0..base.d())
        .map(|a| {
            let mut counts = vec![0usize; schema.attribute(a).domain_size()];
            for &v in base.column(a) {
                counts[v as usize] += 1;
            }
            let (code, _) =
                counts.iter().enumerate().min_by_key(|&(_, &c)| c).expect("non-empty domain");
            code as u32
        })
        .collect();
    let mut rows: Vec<Vec<u32>> = (0..base.n()).map(|r| base.row(r)).collect();
    let exclude = Dataset::from_rows(schema.clone(), &rows).expect("base rows are in-domain");
    rows[0].clone_from(&target);
    let include = Dataset::from_rows(schema, &rows).expect("target is in-domain");
    AuditWorlds { include, exclude, target }
}

/// The attacker's score: the released model's log-probability of the full
/// tuple `row`, floored per conditional factor.
///
/// When the total domain fits under `cell_cap` and the tuple's cell is
/// positive, the score goes through [`theta_projection`] over *all*
/// attributes — the audit exercises the same bit-reproducible inference
/// path the query API serves. Above the cap (or for a zero cell, where the
/// exact value carries no gradient) the same product of network
/// conditionals is taken directly with each factor floored at
/// [`FACTOR_FLOOR`] — a full tuple pins every factor, so no enumeration is
/// needed, and when no factor is floored the value matches the θ cell up to
/// float association order.
///
/// # Errors
/// Returns [`AuditError`] if the model does not cover the schema.
pub fn log_model_prob(
    model: &ReleasedModel,
    row: &[u32],
    cell_cap: usize,
) -> Result<f64, AuditError> {
    let schema = &model.schema;
    if row.len() != schema.len() {
        return Err(AuditError(format!(
            "target has {} attributes, schema has {}",
            row.len(),
            schema.len()
        )));
    }
    let mut total_cells = 1usize;
    for a in 0..schema.len() {
        total_cells = total_cells.saturating_mul(schema.attribute(a).domain_size());
    }
    if total_cells <= cell_cap {
        let attrs: Vec<usize> = (0..schema.len()).collect();
        let joint = theta_projection(&model.model, schema, &attrs, cell_cap)
            .map_err(|e| AuditError(e.to_string()))?;
        let coords: Vec<usize> = row.iter().map(|&v| v as usize).collect();
        let cell = joint.get(&coords);
        if cell > 0.0 {
            return Ok(cell.ln());
        }
    }
    let mut log_p = 0.0f64;
    for cond in &model.model.conditionals {
        let mut idx = 0usize;
        for (axis, &dim) in cond.parents.iter().zip(&cond.parent_dims) {
            let raw = row[axis.attr];
            let code = if axis.level == 0 {
                raw
            } else {
                schema
                    .attribute(axis.attr)
                    .taxonomy()
                    .ok_or_else(|| AuditError(format!("attribute {} has no taxonomy", axis.attr)))?
                    .generalize(raw, axis.level)
            };
            idx = idx * dim + code as usize;
        }
        log_p += cond.probs[idx * cond.child_dim + row[cond.child] as usize].max(FACTOR_FLOOR).ln();
    }
    Ok(log_p)
}

/// A calibrated attack rule: claim "member" when `(score > threshold)`,
/// direction-flipped if the calibration split preferred it.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AttackRule {
    threshold: f64,
    flip: bool,
}

impl AttackRule {
    fn is_member(&self, score: f64) -> bool {
        (score > self.threshold) != self.flip
    }

    fn rates(&self, scores_in: &[f64], scores_out: &[f64]) -> (f64, f64) {
        let frac = |scores: &[f64]| {
            scores.iter().filter(|&&s| self.is_member(s)).count() as f64 / scores.len() as f64
        };
        (frac(scores_in), frac(scores_out))
    }
}

/// Sweeps every midpoint between adjacent distinct pooled scores (plus the
/// two outer flanks) in both directions and returns the rule maximising
/// calibration advantage. Deterministic: ties keep the first candidate.
fn calibrate_rule(cal_in: &[f64], cal_out: &[f64]) -> AttackRule {
    let mut pooled: Vec<f64> = cal_in.iter().chain(cal_out).copied().collect();
    pooled.sort_by(f64::total_cmp);
    pooled.dedup();
    let mut candidates = vec![pooled[0] - 1.0];
    candidates.extend(pooled.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    let mut best = AttackRule { threshold: candidates[0], flip: false };
    let mut best_adv = f64::NEG_INFINITY;
    for flip in [false, true] {
        for &threshold in &candidates {
            let rule = AttackRule { threshold, flip };
            let (tpr, fpr) = rule.rates(cal_in, cal_out);
            if tpr - fpr > best_adv {
                best_adv = tpr - fpr;
                best = rule;
            }
        }
    }
    best
}

/// Derives the repetition seed `r` from the base seed (same splitmix-style
/// spread as [`crate::mean_over_reps`]).
fn seed_of(base_seed: u64, r: usize) -> u64 {
    base_seed.wrapping_add(r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Runs `f` once per repetition seed across scoped worker threads and
/// collects results in repetition order.
fn per_rep_scores<F>(reps: usize, base_seed: u64, f: F) -> Result<Vec<(f64, f64)>, AuditError>
where
    F: Fn(u64) -> Result<(f64, f64), AuditError> + Sync,
{
    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get).min(reps).max(1);
    let block = reps.div_ceil(workers);
    let per_worker: Vec<Vec<Result<(f64, f64), AuditError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .step_by(block)
            .map(|start| {
                let f = &f;
                scope.spawn(move || {
                    (start..(start + block).min(reps))
                        .map(|r| f(seed_of(base_seed, r)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("audit worker panicked")).collect()
    });
    per_worker.into_iter().flatten().collect()
}

/// Runs the full membership-inference audit for one fitter at one budget.
///
/// `fitter(data, seed)` must return the released model plus the budget it
/// actually spent; it is called twice per repetition (include/exclude world,
/// same seed) plus once for the utility measurement.
///
/// # Errors
/// Propagates the first fitter/scorer [`AuditError`].
///
/// # Panics
/// Panics if `cfg.reps` is odd or below 4.
pub fn run_audit<F>(
    label: &str,
    epsilon: f64,
    fitter: F,
    base: &Dataset,
    cfg: &AuditConfig,
) -> Result<AuditOutcome, AuditError>
where
    F: Fn(&Dataset, u64) -> Result<(ReleasedModel, f64), AuditError> + Sync,
{
    assert!(cfg.reps >= 4 && cfg.reps.is_multiple_of(2), "audit reps must be even and ≥ 4");
    let worlds = neighbor_worlds(base);
    let scores = per_rep_scores(cfg.reps, cfg.base_seed, |seed| {
        let (model_in, _) = fitter(&worlds.include, seed)?;
        let (model_out, _) = fitter(&worlds.exclude, seed)?;
        Ok((
            log_model_prob(&model_in, &worlds.target, cfg.cell_cap)?,
            log_model_prob(&model_out, &worlds.target, cfg.cell_cap)?,
        ))
    })?;

    let m = cfg.eval_reps();
    let (cal, eval) = scores.split_at(cfg.reps - m);
    let cal_in: Vec<f64> = cal.iter().map(|s| s.0).collect();
    let cal_out: Vec<f64> = cal.iter().map(|s| s.1).collect();
    let eval_in: Vec<f64> = eval.iter().map(|s| s.0).collect();
    let eval_out: Vec<f64> = eval.iter().map(|s| s.1).collect();
    let rule = calibrate_rule(&cal_in, &cal_out);
    let (tpr, fpr) = rule.rates(&eval_in, &eval_out);

    // Utility of the same configuration, measured once on the exclude world
    // at the first repetition seed.
    let (utility_model, epsilon_spent) = fitter(&worlds.exclude, seed_of(cfg.base_seed, 0))?;
    let synthetic = utility_model
        .sample(base.n(), &mut sample_rng(cfg.base_seed))
        .map_err(|e| AuditError(e.to_string()))?;
    let avg_tvd_alpha2 = average_workload_tvd(base, &synthetic, 2);

    Ok(AuditOutcome {
        method: label.to_string(),
        epsilon,
        epsilon_spent,
        advantage: tpr - fpr,
        tpr,
        fpr,
        bound: advantage_bound(epsilon_spent),
        slack: hoeffding_slack(m, cfg.delta),
        eval_reps: m,
        avg_tvd_alpha2,
    })
}

fn sample_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng as _;
    rand::rngs::StdRng::seed_from_u64(seed ^ 0x5AD0_11CE)
}

/// Audits one [`Method`] of the `Synthesizer` layer at one requested budget
/// via [`fit_method`].
///
/// Fits run single-threaded (the repetitions already fan out across cores);
/// `uniform` is fitted with a placeholder ε = 1 exactly as the `methods`
/// bench does — its recorded spend stays 0, so its bound is 0 too.
///
/// # Errors
/// Propagates fit/scoring failures as [`AuditError`].
pub fn audit_method(
    method: Method,
    base: &Dataset,
    epsilon: f64,
    settings: &FitSettings,
    cfg: &AuditConfig,
) -> Result<AuditOutcome, AuditError> {
    let fit_eps = if method.spends_budget() { epsilon } else { 1.0 };
    let settings = FitSettings { threads: Some(1), ..settings.clone() };
    run_audit(
        method.name(),
        epsilon,
        |data, seed| {
            let fitted = fit_method(method, data, fit_eps, seed, &settings)
                .map_err(|e| AuditError(format!("{method} fit: {e}")))?;
            Ok((fitted.artifact, fitted.epsilon_spent))
        },
        base,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema};
    use privbayes_datasets::GroundTruthNetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_data(n: usize) -> Dataset {
        let schema =
            Schema::new((0..4).map(|i| Attribute::binary(format!("x{i}"))).collect::<Vec<_>>())
                .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let net = GroundTruthNetwork::random(&schema, 2, 0.6, &mut rng);
        net.sample(n, &mut rng)
    }

    #[test]
    fn bound_matches_randomised_response_algebra() {
        assert!(advantage_bound(0.0).abs() < 1e-15);
        let b = advantage_bound(1.0);
        assert!((b - (1.0f64.exp() - 1.0) / (1.0f64.exp() + 1.0)).abs() < 1e-15);
        assert!(advantage_bound(8.0) > 0.99 && advantage_bound(8.0) < 1.0);
    }

    #[test]
    fn slack_shrinks_with_reps_and_grows_with_confidence() {
        assert!(hoeffding_slack(20, 1e-2) > hoeffding_slack(80, 1e-2));
        assert!(hoeffding_slack(20, 1e-4) > hoeffding_slack(20, 1e-2));
    }

    #[test]
    fn worlds_differ_in_exactly_the_target_row() {
        let base = small_data(200);
        let worlds = neighbor_worlds(&base);
        assert_eq!(worlds.include.row(0), worlds.target);
        assert_eq!(worlds.exclude.row(0), base.row(0));
        for r in 1..base.n() {
            assert_eq!(worlds.include.row(r), worlds.exclude.row(r), "row {r}");
        }
    }

    #[test]
    fn scorer_paths_agree_on_a_small_domain() {
        // The θ-projection path and the direct conditional product must give
        // the same probability; force the fallback with a tiny cell cap.
        let base = small_data(300);
        let fitted = fit_method(
            Method::PrivBayes,
            &base,
            2.0,
            9,
            &FitSettings { threads: Some(1), ..FitSettings::default() },
        )
        .unwrap();
        let row = base.row(3);
        let via_theta = log_model_prob(&fitted.artifact, &row, DEFAULT_CELL_CAP).unwrap();
        let via_product = log_model_prob(&fitted.artifact, &row, 1).unwrap();
        assert!(
            (via_theta - via_product).abs() < 1e-9,
            "θ-projection {via_theta} vs conditional product {via_product}"
        );
    }

    #[test]
    fn calibration_finds_a_separating_rule_in_either_direction() {
        let rule = calibrate_rule(&[1.0, 1.2, 1.1], &[0.0, 0.1, 0.2]);
        let (tpr, fpr) = rule.rates(&[1.05, 1.3], &[0.05, 0.15]);
        assert_eq!((tpr, fpr), (1.0, 0.0));
        // Inverted separation: members score *lower*.
        let rule = calibrate_rule(&[0.0, 0.1], &[1.0, 1.1]);
        let (tpr, fpr) = rule.rates(&[0.05], &[1.05]);
        assert_eq!((tpr, fpr), (1.0, 0.0));
    }

    #[test]
    fn uniform_audit_is_an_exact_null() {
        // `uniform` never reads the data, so with shared per-rep seeds both
        // worlds produce identical models and the attack has zero signal.
        let base = small_data(150);
        let cfg = AuditConfig { reps: 8, ..AuditConfig::default() };
        let out = audit_method(Method::Uniform, &base, 1.0, &FitSettings::default(), &cfg).unwrap();
        assert_eq!(out.epsilon_spent, 0.0);
        assert_eq!(out.bound, 0.0);
        assert!(out.advantage.abs() < 1e-12, "advantage {}", out.advantage);
        assert!(out.passes_gate());
    }
}
