//! Figure/table composition: one function per evaluation artefact, shared by
//! the `src/bin/fig*.rs` binaries (experiment index: DESIGN.md §3).

use privbayes::pipeline::PrivBayesOptions;
use privbayes::score::ScoreKind;
use privbayes_baselines::MwemOptions;
use privbayes_data::encoding::EncodingKind;
use privbayes_datasets::{acs, adult, br2000, nltcs, BenchmarkDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tasks::{
    baseline_count_error, baseline_svm_error, network_quality, privbayes_count_error,
    privbayes_options, privbayes_svm_errors, BaselineCount, SvmBaseline,
};
use crate::{mean_over_reps, HarnessConfig, ResultTable, BETAS, THETAS};

/// The four evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetPick {
    /// NLTCS (16 binary).
    Nltcs,
    /// ACS (23 binary).
    Acs,
    /// Adult (15 mixed).
    Adult,
    /// BR2000 (14 mixed).
    Br2000,
}

impl DatasetPick {
    /// Loads the dataset at the configured scale.
    #[must_use]
    pub fn load(self, cfg: &HarnessConfig, seed: u64) -> BenchmarkDataset {
        match self {
            DatasetPick::Nltcs => nltcs::nltcs_sized(seed, cfg.scaled(nltcs::CARDINALITY)),
            DatasetPick::Acs => acs::acs_sized(seed, cfg.scaled(acs::CARDINALITY)),
            DatasetPick::Adult => adult::adult_sized(seed, cfg.scaled(adult::CARDINALITY)),
            DatasetPick::Br2000 => br2000::br2000_sized(seed, cfg.scaled(br2000::CARDINALITY)),
        }
    }

    /// Dataset name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DatasetPick::Nltcs => "NLTCS",
            DatasetPick::Acs => "ACS",
            DatasetPick::Adult => "Adult",
            DatasetPick::Br2000 => "BR2000",
        }
    }

    /// The α values the paper evaluates on this dataset (Q₃/Q₄ for the
    /// binary datasets, Q₂/Q₃ for the others, §6.1).
    #[must_use]
    pub fn alphas(self) -> [usize; 2] {
        match self {
            DatasetPick::Nltcs | DatasetPick::Acs => [3, 4],
            DatasetPick::Adult | DatasetPick::Br2000 => [2, 3],
        }
    }

    /// The count-task α used in the parameter-tuning figures (9–11).
    #[must_use]
    pub fn tuning_alpha(self) -> usize {
        self.alphas()[1]
    }
}

/// Table 5: dataset characteristics.
#[must_use]
pub fn table5(cfg: &HarnessConfig) -> ResultTable {
    let mut t = ResultTable::new(
        "Table 5: dataset characteristics",
        "dataset",
        vec!["cardinality".into(), "dimensionality".into(), "log2(domain)".into()],
    );
    for pick in [DatasetPick::Nltcs, DatasetPick::Acs, DatasetPick::Adult, DatasetPick::Br2000] {
        let ds = pick.load(cfg, 0);
        t.push_row(
            ds.name,
            vec![ds.data.n() as f64, ds.data.d() as f64, ds.data.schema().total_domain_log2()],
        );
    }
    t
}

/// Figure 4: score functions I / F / R vs NoPrivacy, Σ mutual information.
/// `F` only applies to the binary datasets (§6.2).
#[must_use]
pub fn fig04_panel(cfg: &HarnessConfig, pick: DatasetPick) -> ResultTable {
    let ds = pick.load(cfg, 1);
    let binary = ds.data.schema().all_binary();
    let mut methods: Vec<(String, Option<ScoreKind>)> =
        vec![("I".into(), Some(ScoreKind::MutualInformation))];
    if binary {
        methods.push(("F".into(), Some(ScoreKind::F)));
    }
    methods.push(("R".into(), Some(ScoreKind::R)));
    methods.push(("NoPrivacy".into(), None));

    let mut t = ResultTable::new(
        format!("Fig 4 ({}): sum of mutual information", pick.name()),
        "epsilon",
        methods.iter().map(|(n, _)| n.clone()).collect(),
    );
    for &eps in &cfg.epsilons() {
        let row: Vec<f64> = methods
            .iter()
            .map(|(_, score)| {
                mean_over_reps(cfg.reps, seed_for("fig4", pick.name(), eps), |s| {
                    network_quality(&ds.data, eps, *score, s)
                })
            })
            .collect();
        t.push_row(format!("{eps}"), row);
    }
    t
}

/// Figures 5–6: encodings on the count task.
#[must_use]
pub fn fig_encodings_counts(cfg: &HarnessConfig, pick: DatasetPick, alpha: usize) -> ResultTable {
    let ds = pick.load(cfg, 2);
    let encodings = encoding_methods();
    let mut t = ResultTable::new(
        format!("Fig 5/6 ({}, Q{}): encodings, average variation distance", pick.name(), alpha),
        "epsilon",
        encodings.iter().map(|(n, _, _)| (*n).into()).collect(),
    );
    for &eps in &cfg.epsilons() {
        let row: Vec<f64> = encodings
            .iter()
            .map(|(name, enc, score)| {
                mean_over_reps(cfg.reps, seed_for(name, pick.name(), eps), |s| {
                    let opts = encoded_options(&ds.data, eps, *enc, *score);
                    privbayes_count_error(&ds.data, alpha, opts, s)
                })
            })
            .collect();
        t.push_row(format!("{eps}"), row);
    }
    t
}

/// Figures 7–8: encodings on the SVM task (one panel per target).
#[must_use]
pub fn fig_encodings_svm(cfg: &HarnessConfig, pick: DatasetPick) -> Vec<ResultTable> {
    let ds = pick.load(cfg, 3);
    let mut rng = StdRng::seed_from_u64(0x0513);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let encodings = encoding_methods();

    let mut tables: Vec<ResultTable> = ds
        .targets
        .iter()
        .map(|target| {
            ResultTable::new(
                format!(
                    "Fig 7/8 ({}, {}): encodings, misclassification rate",
                    pick.name(),
                    target.name
                ),
                "epsilon",
                encodings.iter().map(|(n, _, _)| (*n).into()).collect(),
            )
        })
        .collect();

    for &eps in &cfg.epsilons() {
        // rows[target][method]
        let mut rows = vec![Vec::new(); ds.targets.len()];
        for (name, enc, score) in &encodings {
            // One synthesis serves all four targets; average reps per target.
            let per_target: Vec<f64> = (0..ds.targets.len())
                .map(|ti| {
                    mean_over_reps(cfg.reps, seed_for(name, pick.name(), eps + ti as f64), |s| {
                        let opts = encoded_options(&train, eps, *enc, *score);
                        privbayes_svm_errors(&train, &test, &ds.targets, opts, s)[ti]
                    })
                })
                .collect();
            for (ti, v) in per_target.into_iter().enumerate() {
                rows[ti].push(v);
            }
        }
        for (ti, row) in rows.into_iter().enumerate() {
            tables[ti].push_row(format!("{eps}"), row);
        }
    }
    tables
}

/// Figure 9 (β sweep) or Figure 10 (θ sweep): one count panel and one SVM
/// panel for `pick`; `sweep_beta` selects which parameter varies.
#[must_use]
pub fn fig_parameter_sweep(
    cfg: &HarnessConfig,
    pick: DatasetPick,
    sweep_beta: bool,
) -> Vec<ResultTable> {
    let ds = pick.load(cfg, 4);
    let mut rng = StdRng::seed_from_u64(44);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let target = &ds.targets[0];
    let alpha = pick.tuning_alpha();
    let grid: &[f64] = if sweep_beta { &BETAS } else { &THETAS };
    let (fig, param) = if sweep_beta { ("Fig 9", "beta") } else { ("Fig 10", "theta") };

    let eps_cols: Vec<String> = cfg.epsilons().iter().map(|e| format!("eps={e}")).collect();
    let mut count_t = ResultTable::new(
        format!("{fig} ({}, Q{alpha}): average variation distance vs {param}", pick.name()),
        param,
        eps_cols.clone(),
    );
    let mut svm_t = ResultTable::new(
        format!("{fig} ({}, {}): misclassification rate vs {param}", pick.name(), target.name),
        param,
        eps_cols,
    );
    for &p in grid {
        let mut count_row = Vec::new();
        let mut svm_row = Vec::new();
        for &eps in &cfg.epsilons() {
            let opts = |data: &privbayes_data::Dataset| {
                let mut o = privbayes_options(data, eps);
                if sweep_beta {
                    o.beta = p;
                } else {
                    o.theta = p;
                }
                o
            };
            count_row.push(mean_over_reps(cfg.reps, seed_for(fig, pick.name(), p + eps), |s| {
                privbayes_count_error(&ds.data, alpha, opts(&ds.data), s)
            }));
            svm_row.push(mean_over_reps(
                cfg.reps,
                seed_for(fig, target.name.as_str(), p + eps),
                |s| {
                    privbayes_svm_errors(
                        &train,
                        &test,
                        std::slice::from_ref(target),
                        opts(&train),
                        s,
                    )[0]
                },
            ));
        }
        count_t.push_row(format!("{p}"), count_row);
        svm_t.push_row(format!("{p}"), svm_row);
    }
    vec![count_t, svm_t]
}

/// Figure 11: source-of-error ablations (PrivBayes vs BestNetwork vs
/// BestMarginal) on the same two tasks as Figures 9–10.
#[must_use]
pub fn fig11_panels(cfg: &HarnessConfig, pick: DatasetPick) -> Vec<ResultTable> {
    let ds = pick.load(cfg, 5);
    let mut rng = StdRng::seed_from_u64(45);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let target = &ds.targets[0];
    let alpha = pick.tuning_alpha();
    type Variant = (&'static str, fn(PrivBayesOptions) -> PrivBayesOptions);
    let variants: [Variant; 3] = [
        ("PrivBayes", |o| o),
        ("BestNetwork", PrivBayesOptions::best_network),
        ("BestMarginal", PrivBayesOptions::best_marginal),
    ];

    let mut count_t = ResultTable::new(
        format!("Fig 11 ({}, Q{alpha}): source of error (counts)", pick.name()),
        "epsilon",
        variants.iter().map(|(n, _)| (*n).into()).collect(),
    );
    let mut svm_t = ResultTable::new(
        format!("Fig 11 ({}, {}): source of error (SVM)", pick.name(), target.name),
        "epsilon",
        variants.iter().map(|(n, _)| (*n).into()).collect(),
    );
    for &eps in &cfg.epsilons() {
        let count_row: Vec<f64> = variants
            .iter()
            .map(|(name, wrap)| {
                mean_over_reps(cfg.reps, seed_for(name, pick.name(), eps), |s| {
                    privbayes_count_error(
                        &ds.data,
                        alpha,
                        wrap(privbayes_options(&ds.data, eps)),
                        s,
                    )
                })
            })
            .collect();
        let svm_row: Vec<f64> = variants
            .iter()
            .map(|(name, wrap)| {
                mean_over_reps(cfg.reps, seed_for(name, target.name.as_str(), eps), |s| {
                    privbayes_svm_errors(
                        &train,
                        &test,
                        std::slice::from_ref(target),
                        wrap(privbayes_options(&train, eps)),
                        s,
                    )[0]
                })
            })
            .collect();
        count_t.push_row(format!("{eps}"), count_row);
        svm_t.push_row(format!("{eps}"), svm_row);
    }
    vec![count_t, svm_t]
}

/// Figures 12–15: PrivBayes vs the count baselines on `Q_alpha`.
/// Contingency and MWEM only run on the binary datasets (§6.5).
#[must_use]
pub fn fig_marginals_panel(cfg: &HarnessConfig, pick: DatasetPick, alpha: usize) -> ResultTable {
    let ds = pick.load(cfg, 6);
    let binary = ds.data.schema().all_binary();
    let mut methods: Vec<(String, Option<BaselineCount>)> = vec![("PrivBayes".into(), None)];
    for b in [BaselineCount::Laplace, BaselineCount::Fourier] {
        methods.push((b.name().into(), Some(b)));
    }
    if binary {
        methods.push(("Contingency".into(), Some(BaselineCount::Contingency)));
        let mwem = MwemOptions {
            iterations: 10,
            // Scoring every candidate marginal over a 2²³-cell domain each
            // round is prohibitive for ACS; subsample (DESIGN.md §1).
            max_candidates: if pick == DatasetPick::Acs { Some(100) } else { None },
            update_passes: if pick == DatasetPick::Acs { 2 } else { 8 },
        };
        methods.push(("MWEM".into(), Some(BaselineCount::Mwem(mwem))));
    }
    methods.push(("Uniform".into(), Some(BaselineCount::Uniform)));

    let mut t = ResultTable::new(
        format!("Fig 12-15 ({}, Q{alpha}): average variation distance", pick.name()),
        "epsilon",
        methods.iter().map(|(n, _)| n.clone()).collect(),
    );
    for &eps in &cfg.epsilons() {
        let row: Vec<f64> = methods
            .iter()
            .map(|(name, method)| {
                mean_over_reps(cfg.reps, seed_for(name, pick.name(), eps), |s| match method {
                    None => {
                        privbayes_count_error(&ds.data, alpha, privbayes_options(&ds.data, eps), s)
                    }
                    Some(m) => baseline_count_error(&ds.data, alpha, *m, eps, s),
                })
            })
            .collect();
        t.push_row(format!("{eps}"), row);
    }
    t
}

/// Figures 16–19: PrivBayes vs the classification baselines, one panel per
/// target.
#[must_use]
pub fn fig_svm_panels(cfg: &HarnessConfig, pick: DatasetPick) -> Vec<ResultTable> {
    let ds = pick.load(cfg, 7);
    let mut rng = StdRng::seed_from_u64(46);
    let (train, test) = ds.data.split_train_test(0.8, &mut rng);
    let baselines = [
        SvmBaseline::PrivateErm,
        SvmBaseline::PrivateErmSingle,
        SvmBaseline::PrivGene,
        SvmBaseline::Majority,
        SvmBaseline::NoPrivacy,
    ];
    let mut columns: Vec<String> = vec!["PrivBayes".into()];
    columns.extend(baselines.iter().map(|b| b.name().to_string()));

    let mut tables: Vec<ResultTable> = ds
        .targets
        .iter()
        .map(|target| {
            ResultTable::new(
                format!("Fig 16-19 ({}, {}): misclassification rate", pick.name(), target.name),
                "epsilon",
                columns.clone(),
            )
        })
        .collect();

    for &eps in &cfg.epsilons() {
        for (ti, target) in ds.targets.iter().enumerate() {
            let mut row = Vec::with_capacity(columns.len());
            row.push(mean_over_reps(
                cfg.reps,
                seed_for("pb-svm", target.name.as_str(), eps),
                |s| {
                    privbayes_svm_errors(
                        &train,
                        &test,
                        &ds.targets,
                        privbayes_options(&train, eps),
                        s,
                    )[ti]
                },
            ));
            for b in &baselines {
                row.push(mean_over_reps(
                    cfg.reps,
                    seed_for(b.name(), target.name.as_str(), eps),
                    |s| baseline_svm_error(&train, &test, target, *b, eps, s),
                ));
            }
            tables[ti].push_row(format!("{eps}"), row);
        }
    }
    tables
}

/// The four encoding configurations of §6.3 with their score functions.
fn encoding_methods() -> Vec<(&'static str, EncodingKind, ScoreKind)> {
    vec![
        ("Binary-F", EncodingKind::Binary, ScoreKind::F),
        ("Gray-F", EncodingKind::Gray, ScoreKind::F),
        ("Vanilla-R", EncodingKind::Vanilla, ScoreKind::R),
        ("Hierarchical-R", EncodingKind::Hierarchical, ScoreKind::R),
    ]
}

/// Options for an explicit encoding; bitwise encodings on wide mixed data get
/// a tighter degree cap to keep the candidate space tractable (DESIGN.md §4).
fn encoded_options(
    data: &privbayes_data::Dataset,
    eps: f64,
    encoding: EncodingKind,
    score: ScoreKind,
) -> PrivBayesOptions {
    let mut o = PrivBayesOptions::new(eps).with_encoding(encoding).with_score(score);
    o.max_degree = if encoding.is_bitwise() && crate::tasks::binarized_dims(data) > 30 {
        2
    } else {
        crate::tasks::MAX_DEGREE
    };
    o
}

/// Deterministic seed derivation so reruns reproduce exactly.
fn seed_for(method: &str, dataset: &str, point: f64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in method.bytes().chain(dataset.bytes()).chain(point.to_bits().to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> HarnessConfig {
        HarnessConfig { reps: 1, scale: 0.01, quick: true, out_dir: None }
    }

    #[test]
    fn table5_has_four_rows() {
        let t = table5(&tiny_cfg());
        assert!(t.render().contains("NLTCS"));
        assert!(t.render().contains("BR2000"));
    }

    #[test]
    fn seeds_differ_by_point() {
        assert_ne!(seed_for("a", "b", 0.1), seed_for("a", "b", 0.2));
        assert_ne!(seed_for("a", "b", 0.1), seed_for("c", "b", 0.1));
        assert_eq!(seed_for("a", "b", 0.1), seed_for("a", "b", 0.1));
    }

    #[test]
    fn fig04_panel_smoke() {
        let t = fig04_panel(&tiny_cfg(), DatasetPick::Nltcs);
        let s = t.render();
        assert!(s.contains("NoPrivacy") && s.contains('F'));
    }

    #[test]
    fn marginals_panel_smoke_nonbinary() {
        let t = fig_marginals_panel(&tiny_cfg(), DatasetPick::Br2000, 2);
        let s = t.render();
        assert!(s.contains("PrivBayes") && s.contains("Uniform"));
        assert!(!s.contains("MWEM"), "MWEM only applies to binary datasets");
    }
}
