//! Result tables: aligned console output plus optional CSV files, one table
//! per figure panel.

use std::fmt::Write as _;
use std::path::Path;

/// A labelled table of measured values (rows = sweep points, columns =
/// methods).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    title: String,
    row_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl ResultTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        row_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self { title: title.into(), row_label: row_label.into(), columns, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the value count differs from the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table for the console.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.row_label.len()])
            .max()
            .unwrap_or(8)
            .max(6);
        let col_width = self.columns.iter().map(String::len).max().unwrap_or(8).max(9);
        let _ = write!(out, "{:>label_width$}", self.row_label);
        for c in &self.columns {
            let _ = write!(out, " {c:>col_width$}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:>label_width$}");
            for v in values {
                let _ = write!(out, " {v:>col_width$.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes the table as CSV to `dir/<slug>.csv`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
            .collect();
        let mut csv = String::new();
        let _ = write!(csv, "{}", self.row_label);
        for c in &self.columns {
            let _ = write!(csv, ",{c}");
        }
        let _ = writeln!(csv);
        for (label, values) in &self.rows {
            let _ = write!(csv, "{label}");
            for v in values {
                let _ = write!(csv, ",{v}");
            }
            let _ = writeln!(csv);
        }
        std::fs::write(dir.join(format!("{slug}.csv")), csv)
    }

    /// Prints and optionally persists the table per the harness config.
    pub fn emit(&self, cfg: &crate::HarnessConfig) {
        self.print();
        if let Some(dir) = &cfg.out_dir {
            if let Err(e) = self.write_csv(dir) {
                eprintln!("warning: could not write CSV for `{}`: {e}", self.title);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new(
            "Fig 12(a): NLTCS, Q3",
            "epsilon",
            vec!["PrivBayes".into(), "Laplace".into()],
        );
        t.push_row("0.05", vec![0.12, 0.55]);
        t.push_row("1.6", vec![0.03, 0.07]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Fig 12(a)"));
        assert!(s.contains("PrivBayes"));
        assert!(s.contains("0.1200"));
        assert!(s.contains("1.6"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("privbayes_table_test");
        sample().write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("fig_12_a___nltcs__q3.csv")).unwrap();
        assert!(text.starts_with("epsilon,PrivBayes,Laplace\n"));
        assert!(text.contains("0.05,0.12,0.55"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = sample();
        t.push_row("x", vec![1.0]);
    }
}
