//! Minimal CLI parsing shared by the figure binaries (no external deps).

use std::path::PathBuf;

/// Harness options common to every figure binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Repetitions per measured point (paper: 100).
    pub reps: usize,
    /// Dataset-size fraction in (0, 1].
    pub scale: f64,
    /// Thin the ε grid and reduce reps for a fast smoke run.
    pub quick: bool,
    /// Optional CSV output directory.
    pub out_dir: Option<PathBuf>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self { reps: 3, scale: 1.0, quick: false, out_dir: None }
    }
}

impl HarnessConfig {
    /// Parses `std::env::args()`-style arguments.
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => {
                    cfg.quick = true;
                    cfg.reps = 1;
                    cfg.scale = cfg.scale.min(0.25);
                }
                "--reps" => {
                    let v = it.next().expect("--reps needs a value");
                    cfg.reps = v.parse().expect("--reps needs an integer");
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    cfg.scale = v.parse().expect("--scale needs a float");
                    assert!(cfg.scale > 0.0 && cfg.scale <= 1.0, "--scale must be in (0, 1]");
                }
                "--out" => {
                    let v = it.next().expect("--out needs a directory");
                    cfg.out_dir = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    eprintln!("options: --quick | --reps N | --scale F (0,1] | --out DIR");
                    std::process::exit(0);
                }
                other => panic!("unknown argument `{other}` (try --help)"),
            }
        }
        cfg
    }

    /// Parses the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The ε grid for this run (thinned under `--quick`).
    #[must_use]
    pub fn epsilons(&self) -> Vec<f64> {
        if self.quick {
            vec![0.1, 0.4, 1.6]
        } else {
            crate::EPSILONS.to_vec()
        }
    }

    /// Scales a dataset cardinality.
    #[must_use]
    pub fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale) as usize).max(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessConfig {
        HarnessConfig::parse(args.iter().map(ToString::to_string))
    }

    #[test]
    fn defaults() {
        let cfg = parse(&[]);
        assert_eq!(cfg.reps, 3);
        assert_eq!(cfg.scale, 1.0);
        assert!(!cfg.quick);
        assert_eq!(cfg.epsilons().len(), 6);
    }

    #[test]
    fn quick_mode() {
        let cfg = parse(&["--quick"]);
        assert!(cfg.quick);
        assert_eq!(cfg.reps, 1);
        assert!(cfg.scale <= 0.25);
        assert_eq!(cfg.epsilons(), vec![0.1, 0.4, 1.6]);
        assert_eq!(cfg.scaled(40_000), 10_000);
    }

    #[test]
    fn explicit_values() {
        let cfg = parse(&["--reps", "7", "--scale", "0.5", "--out", "/tmp/r"]);
        assert_eq!(cfg.reps, 7);
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.out_dir, Some(PathBuf::from("/tmp/r")));
    }

    #[test]
    fn scaled_has_floor() {
        let cfg = parse(&["--scale", "0.001"]);
        assert_eq!(cfg.scaled(10_000), 100);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flags() {
        let _ = parse(&["--frobnicate"]);
    }
}
