//! Regenerates Figure 12: PrivBayes vs the count baselines on Nltcs's α-way
//! marginal workloads.

use privbayes_bench::figures::{fig_marginals_panel, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for alpha in DatasetPick::Nltcs.alphas() {
        fig_marginals_panel(&cfg, DatasetPick::Nltcs, alpha).emit(&cfg);
    }
}
