//! Ablation 4: the multi-table extension — accuracy vs fan-out cap.
//!
//! Group privacy scales the fact-phase noise by the fan-out cap `m`, so the
//! cross-table joint must degrade as `m` grows at fixed ε (the concluding
//! remarks' warning made quantitative). The fan-out histogram is learned by
//! the entity phase at unit sensitivity and should stay comparatively flat.

use privbayes_bench::ablations::{clinic_workload, multitable_errors};
use privbayes_bench::{mean_over_reps, HarnessConfig, ResultTable};

fn main() {
    let cfg = HarnessConfig::from_env();
    const FANOUTS: [usize; 4] = [1, 2, 4, 8];
    let n_entities = cfg.scaled(20_000);

    let mut joint = ResultTable::new(
        "Abl 4a: clinic — entity x fact joint TVD vs fan-out cap",
        "epsilon",
        FANOUTS.iter().map(|m| format!("m={m}")).collect(),
    );
    let mut fanout = ResultTable::new(
        "Abl 4b: clinic — fan-out histogram TVD vs fan-out cap",
        "epsilon",
        FANOUTS.iter().map(|m| format!("m={m}")).collect(),
    );
    for eps in cfg.epsilons() {
        let mut joint_row = Vec::with_capacity(FANOUTS.len());
        let mut fanout_row = Vec::with_capacity(FANOUTS.len());
        for &m in &FANOUTS {
            let data = clinic_workload(n_entities, m, 40 + m as u64);
            let joint_err = mean_over_reps(cfg.reps, 4000 + m as u64, |seed| {
                multitable_errors(&data, eps, seed).0
            });
            let fanout_err = mean_over_reps(cfg.reps, 5000 + m as u64, |seed| {
                multitable_errors(&data, eps, seed).1
            });
            joint_row.push(joint_err);
            fanout_row.push(fanout_err);
        }
        joint.push_row(format!("{eps}"), joint_row);
        fanout.push_row(format!("{eps}"), fanout_row);
    }
    joint.emit(&cfg);
    fanout.emit(&cfg);
}
