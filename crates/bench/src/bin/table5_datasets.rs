//! Regenerates Table 5 (dataset characteristics).

use privbayes_bench::figures::table5;
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    table5(&cfg).emit(&cfg);
}
