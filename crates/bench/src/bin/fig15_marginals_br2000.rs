//! Regenerates Figure 15: PrivBayes vs the count baselines on Br2000's α-way
//! marginal workloads.

use privbayes_bench::figures::{fig_marginals_panel, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for alpha in DatasetPick::Br2000.alphas() {
        fig_marginals_panel(&cfg, DatasetPick::Br2000, alpha).emit(&cfg);
    }
}
