//! Regenerates Figure 19: PrivBayes vs the classification baselines on Br2000's
//! four SVM targets.

use privbayes_bench::figures::{fig_svm_panels, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for t in fig_svm_panels(&cfg, DatasetPick::Br2000) {
        t.emit(&cfg);
    }
}
