//! Regenerates Figure 6(a–b): the four encodings on BR2000's Q2/Q3 count task.

use privbayes_bench::figures::{fig_encodings_counts, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for alpha in DatasetPick::Br2000.alphas() {
        fig_encodings_counts(&cfg, DatasetPick::Br2000, alpha).emit(&cfg);
    }
}
