//! Regenerates Figure 7(a–d): the four encodings on Adult's SVM tasks.

use privbayes_bench::figures::{fig_encodings_svm, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for t in fig_encodings_svm(&cfg, DatasetPick::Adult) {
        t.emit(&cfg);
    }
}
