//! Regenerates Figure 9(a–h): the effect of the budget-split parameter β on
//! one count task and one SVM task per dataset.

use privbayes_bench::figures::{fig_parameter_sweep, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for pick in [DatasetPick::Nltcs, DatasetPick::Acs, DatasetPick::Adult, DatasetPick::Br2000] {
        for t in fig_parameter_sweep(&cfg, pick, true) {
            t.emit(&cfg);
        }
    }
}
