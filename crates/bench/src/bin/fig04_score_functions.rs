//! Regenerates Figure 4(a–d): score functions I / F / R vs NoPrivacy,
//! measured by the learned network's sum of mutual information.

use privbayes_bench::figures::{fig04_panel, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for pick in [DatasetPick::Nltcs, DatasetPick::Acs, DatasetPick::Adult, DatasetPick::Br2000] {
        fig04_panel(&cfg, pick).emit(&cfg);
    }
}
