//! Regenerates Figure 11(a–h): PrivBayes vs the BestNetwork / BestMarginal
//! ablations, isolating the two phases' error contributions.

use privbayes_bench::figures::{fig11_panels, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for pick in [DatasetPick::Nltcs, DatasetPick::Acs, DatasetPick::Adult, DatasetPick::Br2000] {
        for t in fig11_panels(&cfg, pick) {
            t.emit(&cfg);
        }
    }
}
