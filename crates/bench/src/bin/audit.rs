//! `audit`: the empirical membership-inference audit of every synthesis
//! method, emitting machine-readable `BENCH_PR6.json`.
//!
//! For each method × ε point this fits shadow models on replace-one
//! neighbour worlds over seeded repetitions, runs the calibrated
//! likelihood-ratio attack of `privbayes_bench::audit`, and prints utility
//! (α = 2 workload TVD, the `methods` table's metric) **side by side** with
//! the measured leakage and its analytic ε-DP ceiling — the privacy column
//! the method-vs-ε comparison was missing.
//!
//! The run is a regression test, not just a report: any point whose
//! measured advantage exceeds `(e^ε − 1)/(e^ε + 1)` beyond the seeded
//! confidence slack makes the process **exit non-zero**. `uniform` spends
//! no budget, so its bound is exactly 0 — the null-attacker calibration
//! control that would catch a broken harness claiming leakage everywhere.
//!
//! Usage: `audit [--quick] [--reps N] [--methods a,b,...] [--out DIR]`.

use std::path::PathBuf;

use privbayes_bench::audit::{audit_method, AuditConfig, AuditOutcome};
use privbayes_data::{Attribute, Dataset, Schema};
use privbayes_datasets::GroundTruthNetwork;
use privbayes_synth::{FitSettings, Method};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    quick: bool,
    reps: usize,
    methods: Vec<Method>,
    out_dir: Option<PathBuf>,
}

/// The audit bin takes `--methods`, which `HarnessConfig` rejects, so it
/// parses its own flags (same style, same defaults).
fn parse_options() -> Options {
    let mut opts = Options { quick: false, reps: 40, methods: Method::ALL.to_vec(), out_dir: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                opts.quick = true;
                opts.reps = 12;
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                opts.reps = v.parse().expect("--reps needs an even integer ≥ 4");
            }
            "--methods" => {
                let v = it.next().expect("--methods needs a comma-separated list");
                opts.methods = v
                    .split(',')
                    .map(|name| {
                        Method::parse(name.trim()).unwrap_or_else(|| {
                            panic!("unknown method `{name}` (valid: {})", Method::names())
                        })
                    })
                    .collect();
            }
            "--out" => {
                let v = it.next().expect("--out needs a directory");
                opts.out_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                eprintln!("options: --quick | --reps N (even) | --methods a,b,... | --out DIR");
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}` (try --help)"),
        }
    }
    assert!(opts.reps >= 4 && opts.reps.is_multiple_of(2), "--reps must be even and ≥ 4");
    opts
}

/// The audit dataset: 6 correlated binary attributes (64-cell domain, so
/// the θ-projection scorer enumerates the exact joint) at a size small
/// enough that thousands of shadow fits stay interactive, large enough
/// that one tuple is not trivially visible without a privacy bug.
fn audit_data() -> Dataset {
    let schema =
        Schema::new((0..6).map(|i| Attribute::binary(format!("x{i}"))).collect::<Vec<_>>())
            .expect("valid schema");
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let net = GroundTruthNetwork::random(&schema, 2, 0.6, &mut rng);
    net.sample(400, &mut rng)
}

fn point_json(p: &AuditOutcome) -> String {
    format!(
        concat!(
            "    {{\"method\": \"{}\", \"epsilon\": {}, \"epsilon_spent\": {}, ",
            "\"avg_tvd_alpha2\": {:.6}, \"advantage\": {:.6}, \"tpr\": {:.4}, \"fpr\": {:.4}, ",
            "\"bound\": {:.6}, \"slack\": {:.6}, \"eval_reps\": {}, \"pass\": {}}}"
        ),
        p.method,
        p.epsilon,
        p.epsilon_spent,
        p.avg_tvd_alpha2,
        p.advantage,
        p.tpr,
        p.fpr,
        p.bound,
        p.slack,
        p.eval_reps,
        p.passes_gate()
    )
}

fn main() {
    let opts = parse_options();
    let data = audit_data();
    let cfg = AuditConfig { reps: opts.reps, ..AuditConfig::default() };
    let settings = FitSettings::default();
    let epsilons: Vec<f64> = if opts.quick { vec![0.1, 1.0] } else { vec![0.1, 0.4, 1.6, 8.0] };

    println!(
        "== privacy audit (n = {}, d = {}, reps = {} [{} cal / {} eval], δ = {}) ==",
        data.n(),
        data.d(),
        cfg.reps,
        cfg.reps - cfg.eval_reps(),
        cfg.eval_reps(),
        cfg.delta
    );
    println!(
        "  {:<12} {:>5}  {:>8}  {:>10}  {:>7}  {:>7}  verdict",
        "method", "eps", "Q2 tvd", "advantage", "bound", "slack"
    );

    let mut points: Vec<AuditOutcome> = Vec::new();
    for &method in &opts.methods {
        let eps_grid: &[f64] = if method.spends_budget() { &epsilons } else { &[0.0][..] };
        for &epsilon in eps_grid {
            let point = audit_method(method, &data, epsilon, &settings, &cfg)
                .unwrap_or_else(|e| panic!("{e}"));
            println!(
                "  {:<12} {:>5}  {:>8.4}  {:>10.4}  {:>7.4}  {:>7.4}  {}",
                point.method,
                point.epsilon,
                point.avg_tvd_alpha2,
                point.advantage,
                point.bound,
                point.slack,
                if point.passes_gate() { "ok" } else { "LEAK > BOUND" }
            );
            points.push(point);
        }
    }

    let failures: Vec<&AuditOutcome> = points.iter().filter(|p| !p.passes_gate()).collect();
    let method_names: Vec<String> =
        opts.methods.iter().map(|m| format!("\"{}\"", m.name())).collect();
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"quick\": {},\n  \"mode\": \"{}\",\n  \
         \"available_parallelism\": {},\n  \"workers\": 1,\n  \"reps\": {},\n  \"delta\": {},\n  \
         \"rows\": {},\n  \"attrs\": {},\n  \"neighborhood\": \"replace-one-tuple\",\n  \
         \"attack\": \"calibrated likelihood-ratio threshold on log Pr_model[target]\",\n  \
         \"bound\": \"(e^eps - 1)/(e^eps + 1) at the recorded epsilon_spent\",\n  \
         \"methods\": [{}],\n  \"points\": [\n{}\n  ],\n  \"all_pass\": {}\n}}\n",
        opts.quick,
        if opts.quick { "quick" } else { "full" },
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        cfg.reps,
        cfg.delta,
        data.n(),
        data.d(),
        method_names.join(", "),
        points.iter().map(point_json).collect::<Vec<_>>().join(",\n"),
        failures.is_empty()
    );
    let path =
        opts.out_dir.map_or_else(|| PathBuf::from("BENCH_PR6.json"), |d| d.join("BENCH_PR6.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, json).expect("write BENCH_PR6.json");
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for p in &failures {
            eprintln!(
                "PRIVACY GATE FAILED: {} at eps {} measured advantage {:.4} > bound {:.4} + slack {:.4}",
                p.method, p.epsilon, p.advantage, p.bound, p.slack
            );
        }
        std::process::exit(1);
    }
    println!("privacy gate: all {} points under the analytic bound", points.len());
}
