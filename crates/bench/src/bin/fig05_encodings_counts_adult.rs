//! Regenerates Figure 5(a–b): the four encodings on Adult's Q2/Q3 count task.

use privbayes_bench::figures::{fig_encodings_counts, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for alpha in DatasetPick::Adult.alphas() {
        fig_encodings_counts(&cfg, DatasetPick::Adult, alpha).emit(&cfg);
    }
}
