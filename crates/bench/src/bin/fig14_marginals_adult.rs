//! Regenerates Figure 14: PrivBayes vs the count baselines on Adult's α-way
//! marginal workloads.

use privbayes_bench::figures::{fig_marginals_panel, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for alpha in DatasetPick::Adult.alphas() {
        fig_marginals_panel(&cfg, DatasetPick::Adult, alpha).emit(&cfg);
    }
}
