//! Ablation 3: Laplace vs geometric (discrete Laplace) noise on direct
//! marginal release.
//!
//! Both run at identical ε on the same workload; the geometric mechanism's
//! integer noise has slightly lower variance at matched ε and is exact when
//! the sampled noise is 0. Expectation: near-identical curves, geometric
//! marginally ahead at large ε.

use privbayes_bench::ablations::noise_mechanism_error;
use privbayes_bench::{mean_over_reps, HarnessConfig, ResultTable};
use privbayes_datasets::adult::adult_sized;
use privbayes_datasets::nltcs::nltcs_sized;

fn main() {
    let cfg = HarnessConfig::from_env();
    for (name, data, alpha) in [
        ("NLTCS", nltcs_sized(31, cfg.scaled(21_574)).data, 3usize),
        ("Adult", adult_sized(32, cfg.scaled(45_222)).data, 2usize),
    ] {
        let mut table = ResultTable::new(
            format!("Abl 3: {name}, Q{alpha} — noise mechanism"),
            "epsilon",
            vec!["Laplace".into(), "Geometric".into()],
        );
        for eps in cfg.epsilons() {
            let lap = mean_over_reps(cfg.reps, 3000, |seed| {
                noise_mechanism_error(&data, alpha, eps, false, seed)
            });
            let geo = mean_over_reps(cfg.reps, 3000, |seed| {
                noise_mechanism_error(&data, alpha, eps, true, seed)
            });
            table.push_row(format!("{eps}"), vec![lap, geo]);
        }
        table.emit(&cfg);
    }
}
