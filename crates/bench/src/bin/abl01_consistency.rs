//! Ablation 1: cross-marginal consistency (§3 footnote 1) on vs off.
//!
//! Columns are consistency round counts; the paper's PrivBayes corresponds
//! to `rounds=0`. Expectation: reconciliation averages independent noise on
//! shared sub-marginals, so a round or two shaves the count error, with
//! diminishing returns.

use privbayes_bench::ablations::consistency_count_error;
use privbayes_bench::{mean_over_reps, HarnessConfig, ResultTable};
use privbayes_datasets::adult::adult_sized;
use privbayes_datasets::br2000::br2000_sized;

fn main() {
    let cfg = HarnessConfig::from_env();
    const ROUNDS: [usize; 3] = [0, 1, 3];
    for (name, data, alpha) in [
        ("Adult", adult_sized(11, cfg.scaled(45_222)).data, 2usize),
        ("BR2000", br2000_sized(12, cfg.scaled(38_000)).data, 2usize),
    ] {
        let mut table = ResultTable::new(
            format!("Abl 1: {name}, Q{alpha} — consistency rounds"),
            "epsilon",
            ROUNDS.iter().map(|r| format!("rounds={r}")).collect(),
        );
        for eps in cfg.epsilons() {
            let row: Vec<f64> = ROUNDS
                .iter()
                .map(|&rounds| {
                    mean_over_reps(cfg.reps, 1000 + rounds as u64, |seed| {
                        consistency_count_error(&data, alpha, eps, rounds, seed)
                    })
                })
                .collect();
            table.push_row(format!("{eps}"), row);
        }
        table.emit(&cfg);
    }
}
