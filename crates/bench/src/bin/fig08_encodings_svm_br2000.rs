//! Regenerates Figure 8(a–d): the four encodings on BR2000's SVM tasks.

use privbayes_bench::figures::{fig_encodings_svm, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for t in fig_encodings_svm(&cfg, DatasetPick::Br2000) {
        t.emit(&cfg);
    }
}
