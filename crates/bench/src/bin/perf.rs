//! `perf`: wall-clock benchmark of the hot paths — network learning,
//! synthesis, and the serving layer — emitting machine-readable
//! `BENCH_PR3.json` so future PRs can track the perf trajectory.
//!
//! Two batch workloads cover both engine strategies:
//!
//! * **adult-vanilla** — the quickstart-scale general-domain path (Adult,
//!   Algorithm 4, score `R`): the baseline re-scans rows once per candidate;
//!   the engine memoises joints across rounds.
//! * **nltcs-binary** — the all-binary path (NLTCS, Algorithm 2, score `I`):
//!   the baseline recomputes popcount joints; the engine caches them.
//!
//! Each learning measurement also *asserts* that the engine network is
//! identical to the reference network, so the speedup numbers can never come
//! from silently diverging semantics.
//!
//! The **serve** workload then starts an in-process `privbayes-server` over
//! the Adult model and measures streamed synthesis throughput (rows/sec)
//! at 1, 4, and 8 concurrent clients — asserting first that the streamed
//! CSV is byte-identical to the direct batch sampling path for the same
//! seed, so the throughput numbers can never come from a diverging stream.
//!
//! The **query** workload (PR 5) benches the query API v2 paths over a
//! served NLTCS model (the paper's marginal-workload dataset; its all-binary
//! domains keep θ-projection closures small): `/v1/models/{id}/query` latency
//! (p50/p95 across 1/2/3-way queries, gated on bit-identity with the
//! independent `reference_theta_projection` oracle) and conditional-synth
//! throughput (`/v1` spec with evidence) versus the unconditional stream.
//! Those numbers land in `BENCH_PR5.json`.
//!
//! The **observability** workload (PR 8) scrapes `GET /metrics` before and
//! after a concurrent synth storm, asserts the counter deltas equal the
//! known workload exactly (N requests ⇒ +N on the by-endpoint counter,
//! N·rows on the row counter), micro-times the hot-path primitives, and
//! gates the estimated per-request instrumentation share of mean latency.
//! Those numbers land in `BENCH_PR8.json`.
//!
//! The **scaling** workload (PR 9) measures the keep-alive + row-block-cache
//! serving stack against the PR 3-era discipline (a fresh `Connection:
//! close` per request, every stream sampled cold). After gating that the
//! close-connection, cold keep-alive, cached keep-alive, and direct batch
//! paths are all byte-identical for a fixed `(model, seed, rows, format)`,
//! it *asserts* that 8 keep-alive clients replaying a warmed stream beat the
//! one-client cold baseline by [`SCALING_GATE_RATIO`]. Those numbers land in
//! `BENCH_PR9.json`.
//!
//! Every BENCH_*.json records the machine's available parallelism, the
//! server worker count, and the quick/full harness mode, so the perf
//! trajectory across PRs never silently compares unlike environments.
//!
//! Usage: `perf [--quick] [--reps N] [--scale F] [--out DIR]`. The JSON is
//! written to `--out` (or the working directory).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use privbayes::conditionals::noisy_conditionals_general;
use privbayes::greedy::{greedy_bayes_adaptive, greedy_bayes_fixed_k, GreedySettings};
use privbayes::network::BayesianNetwork;
use privbayes::sampler::sample_synthetic_with_threads;
use privbayes::ScoreKind;
use privbayes_bench::reference::{
    reference_greedy_adaptive, reference_greedy_fixed_k, reference_sample_synthetic,
    reference_theta_projection,
};
use privbayes_bench::HarnessConfig;
use privbayes_data::csv::write_csv;
use privbayes_data::Dataset;
use privbayes_model::{Json, ModelMetadata, ReleasedModel};
use privbayes_server::{
    BudgetLedger, Client, MarginalQuery, ModelRegistry, Server, ServerConfig, SynthSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Best-of-`reps` wall-clock in milliseconds, plus the last result.
fn time_min_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one repetition"))
}

struct Stage {
    name: &'static str,
    baseline_ms: f64,
    engine_ms: f64,
    rows: usize,
}

impl Stage {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.engine_ms
    }

    fn rows_per_sec(&self, ms: f64) -> f64 {
        self.rows as f64 / (ms / 1e3)
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"baseline_ms\": {:.2}, \"engine_ms\": {:.2}, ",
                "\"baseline_rows_per_sec\": {:.0}, \"engine_rows_per_sec\": {:.0}, ",
                "\"speedup\": {:.2}}}"
            ),
            self.baseline_ms,
            self.engine_ms,
            self.rows_per_sec(self.baseline_ms),
            self.rows_per_sec(self.engine_ms),
            self.speedup()
        )
    }
}

struct Workload {
    name: &'static str,
    rows: usize,
    attrs: usize,
    stages: Vec<Stage>,
}

/// Times one workload: baseline vs engine learning (asserting the networks
/// are identical so speedups can never come from diverging semantics), then
/// baseline vs engine synthesis from the same noisy model. Seeds are derived
/// from `seed_base` so the two learners consume identical RNG streams.
fn measure_workload(
    name: &'static str,
    cfg: &HarnessConfig,
    data: &Dataset,
    eps2: f64,
    seed_base: u64,
    reference_learn: impl Fn(&mut StdRng) -> BayesianNetwork,
    engine_learn: impl Fn(&mut StdRng) -> BayesianNetwork,
) -> Workload {
    let n = data.n();
    let (baseline_ms, baseline_net) =
        time_min_ms(cfg.reps, || reference_learn(&mut StdRng::seed_from_u64(seed_base)));
    let (engine_ms, net) =
        time_min_ms(cfg.reps, || engine_learn(&mut StdRng::seed_from_u64(seed_base)));
    assert_eq!(net, baseline_net, "engine must reproduce the reference network bit-for-bit");
    let learn = Stage { name: "network_learning", baseline_ms, engine_ms, rows: n };

    let model = noisy_conditionals_general(
        data,
        &net,
        Some(eps2),
        &mut StdRng::seed_from_u64(seed_base + 1),
    )
    .unwrap();
    let (baseline_ms, _) = time_min_ms(cfg.reps, || {
        reference_sample_synthetic(
            &model,
            data.schema(),
            n,
            &mut StdRng::seed_from_u64(seed_base + 2),
        )
        .unwrap()
    });
    let (engine_ms, _) = time_min_ms(cfg.reps, || {
        sample_synthetic_with_threads(
            &model,
            data.schema(),
            n,
            None,
            &mut StdRng::seed_from_u64(seed_base + 2),
        )
        .unwrap()
    });
    let synth = Stage { name: "synthesis", baseline_ms, engine_ms, rows: n };

    Workload { name, rows: n, attrs: data.d(), stages: vec![learn, synth] }
}

/// Adult under the vanilla encoding (Algorithm 4 + score R): the paper's
/// general-domain configuration and the quickstart default.
fn run_adult(cfg: &HarnessConfig) -> Workload {
    let data = privbayes_datasets::adult::adult_sized(7, cfg.scaled(45_222)).data;
    let (theta, eps1, eps2) = (4.0, 0.3, 0.7);
    let settings = GreedySettings::private(ScoreKind::R, eps1).with_max_degree(4);
    measure_workload(
        "adult-vanilla",
        cfg,
        &data,
        eps2,
        42,
        |rng| reference_greedy_adaptive(&data, theta, eps2, false, &settings, rng).unwrap(),
        |rng| greedy_bayes_adaptive(&data, theta, eps2, false, &settings, rng).unwrap(),
    )
}

/// NLTCS under the binary encoding (Algorithm 2, fixed k = 3, score I): the
/// all-binary popcount configuration.
fn run_nltcs(cfg: &HarnessConfig) -> Workload {
    let data = privbayes_datasets::nltcs::nltcs_sized(8, cfg.scaled(21_574)).data;
    let (k, eps1, eps2) = (3, 0.3, 0.7);
    let settings = GreedySettings::private(ScoreKind::MutualInformation, eps1);
    measure_workload(
        "nltcs-binary",
        cfg,
        &data,
        eps2,
        52,
        |rng| reference_greedy_fixed_k(&data, k, &settings, rng).unwrap(),
        |rng| greedy_bayes_fixed_k(&data, k, &settings, rng).unwrap(),
    )
}

/// Serve-path throughput at one concurrency level.
struct ServePoint {
    clients: usize,
    requests_per_client: usize,
    rows_per_request: usize,
    rows_per_sec: f64,
}

/// Measured serve-path results.
struct ServeBench {
    model_rows: usize,
    attrs: usize,
    points: Vec<ServePoint>,
}

/// Fits the Adult serving model once; shared by the serve-throughput and
/// overload workloads so the (expensive) fit is not repeated.
fn fit_adult_artifact(cfg: &HarnessConfig) -> (Dataset, ReleasedModel) {
    let data = privbayes_datasets::adult::adult_sized(7, cfg.scaled(45_222)).data;
    let settings = GreedySettings::private(ScoreKind::R, 0.3).with_max_degree(4);
    let mut rng = StdRng::seed_from_u64(1042);
    let net = greedy_bayes_adaptive(&data, 4.0, 0.7, false, &settings, &mut rng).unwrap();
    let model = noisy_conditionals_general(&data, &net, Some(0.7), &mut rng).unwrap();
    let artifact = ReleasedModel::new(
        ModelMetadata {
            method: "privbayes".into(),
            epsilon: 1.0,
            beta: 0.3,
            theta: 4.0,
            score: "R".into(),
            encoding: "vanilla".into(),
            source_rows: data.n(),
            comment: "perf serve workload".into(),
        },
        data.schema().clone(),
        model,
    )
    .unwrap();
    (data, artifact)
}

/// Starts an in-process server over a model fit on Adult and measures
/// streamed-synthesis throughput at 1/4/8 concurrent clients. Before
/// timing, asserts the streamed CSV equals the direct batch path byte for
/// byte — the serving layer must add overhead only, never divergence.
fn run_serve(cfg: &HarnessConfig, data: &Dataset, artifact: &ReleasedModel) -> ServeBench {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("adult", artifact.clone()).unwrap();
    let entry = registry.get("adult").unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 8, fit_threads: None, ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());

    // Correctness gate: the streamed body must be byte-identical to the
    // direct batch path for the same seed.
    let check_rows = 3000.min(data.n());
    let streamed = client.synth("adult", check_rows, 7, "csv").unwrap();
    let direct = entry
        .sampler()
        .unwrap()
        .sample_dataset(check_rows, None, &mut StdRng::seed_from_u64(7))
        .unwrap();
    let mut expected = Vec::new();
    write_csv(&direct, &mut expected).unwrap();
    assert_eq!(
        streamed.as_bytes(),
        &expected[..],
        "served stream must match the batch sampler byte-for-byte"
    );

    let rows_per_request = if cfg.quick { 5_000 } else { 20_000 };
    let requests_per_client = if cfg.quick { 2 } else { 4 };
    let mut points = Vec::new();
    for clients in [1usize, 4, 8] {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let client = Client::new(handle.addr().to_string());
                scope.spawn(move || {
                    for r in 0..requests_per_client {
                        let seed = (c * requests_per_client + r) as u64;
                        let body = client.synth("adult", rows_per_request, seed, "csv").unwrap();
                        assert_eq!(body.lines().count(), rows_per_request + 1);
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let total_rows = clients * requests_per_client * rows_per_request;
        points.push(ServePoint {
            clients,
            requests_per_client,
            rows_per_request,
            rows_per_sec: total_rows as f64 / secs,
        });
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
    ServeBench { model_rows: data.n(), attrs: data.d(), points }
}

/// Measured behavior at 2× queue capacity (PR 7's hardened admission
/// control): latency of the accepted requests and the 503 rejection rate.
struct OverloadBench {
    workers: usize,
    queue_depth: usize,
    clients: usize,
    requests: usize,
    ok: usize,
    rejected_503: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// Drives a deliberately small pool (2 workers, 4-deep queue) with twice
/// its total capacity in concurrent clients, none of them retrying: the
/// accepted requests must stream correctly (counted + latency-profiled) and
/// every overflow connection must get an immediate 503 carrying a
/// `Retry-After` hint — graceful degradation, not collapse.
fn run_overload(cfg: &HarnessConfig, artifact: &ReleasedModel) -> OverloadBench {
    let (workers, queue_depth) = (2usize, 4usize);
    let clients = 2 * (workers + queue_depth);
    let requests_per_client = if cfg.quick { 2 } else { 4 };
    let rows_per_request = if cfg.quick { 2_000 } else { 8_000 };

    let registry = Arc::new(ModelRegistry::new());
    registry.load("adult", artifact.clone()).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers, queue_depth, fit_threads: Some(1), ..ServerConfig::default() },
        registry,
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let handle = server.spawn();

    // (status, latency) per request, across all clients.
    let outcomes: Vec<(u16, f64, bool)> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..clients)
            .map(|c| {
                let client = Client::new(handle.addr().to_string());
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(requests_per_client);
                    for r in 0..requests_per_client {
                        let seed = (c * requests_per_client + r) as u64;
                        let path = format!(
                            "/models/adult/synth?rows={rows_per_request}&seed={seed}&format=csv"
                        );
                        let start = Instant::now();
                        let response = client.request("GET", &path, None).unwrap();
                        let ms = start.elapsed().as_secs_f64() * 1e3;
                        let has_retry_after = response.header("retry-after").is_some();
                        if response.code == 200 {
                            assert_eq!(
                                response.text().lines().count(),
                                rows_per_request + 1,
                                "accepted streams must be complete under overload"
                            );
                        }
                        local.push((response.code, ms, has_retry_after));
                    }
                    local
                })
            })
            .collect();
        threads.into_iter().flat_map(|t| t.join().unwrap()).collect()
    });

    let client = Client::new(handle.addr().to_string());
    client.shutdown().unwrap();
    let stats = handle.join().unwrap();

    let ok = outcomes.iter().filter(|(code, _, _)| *code == 200).count();
    let rejected = outcomes.iter().filter(|(code, _, _)| *code == 503).count();
    assert_eq!(ok + rejected, outcomes.len(), "every request is served or rejected cleanly");
    for (code, _, has_retry_after) in &outcomes {
        if *code == 503 {
            assert!(has_retry_after, "every 503 must carry a Retry-After hint");
        }
    }
    assert_eq!(stats.queue_rejected as usize, rejected, "rejections must be counted");

    let mut accepted_ms: Vec<f64> =
        outcomes.iter().filter(|(code, _, _)| *code == 200).map(|&(_, ms, _)| ms).collect();
    accepted_ms.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> f64 {
        if accepted_ms.is_empty() {
            return f64::NAN;
        }
        accepted_ms[((accepted_ms.len() as f64 - 1.0) * p).round() as usize]
    };
    OverloadBench {
        workers,
        queue_depth,
        clients,
        requests: outcomes.len(),
        ok,
        rejected_503: rejected,
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
    }
}

/// Query API v2 measurements over a served model.
struct QueryBench {
    /// Number of marginal queries timed (across the arity mix).
    marginal_requests: usize,
    marginal_p50_ms: f64,
    marginal_p95_ms: f64,
    /// Streamed rows/sec for the default (unconditional) `/v1` spec.
    unconditional_rows_per_sec: f64,
    /// Streamed rows/sec with one root-evidence clamp (exact mode).
    conditional_rows_per_sec: f64,
    rows_per_request: usize,
}

/// Starts an in-process server over a model fit on NLTCS — the paper's
/// marginal-workload dataset, whose all-binary domains keep θ-projection
/// closures small — and measures the query-path latency and
/// conditional-synth throughput. Before timing, asserts that every
/// `/v1/query` answer is bit-identical to the independent
/// `reference_theta_projection` oracle — latency numbers must never come
/// from a diverging answer.
fn run_query(cfg: &HarnessConfig) -> QueryBench {
    let data = privbayes_datasets::nltcs::nltcs_sized(8, cfg.scaled(21_574)).data;
    let settings = GreedySettings::private(ScoreKind::MutualInformation, 0.3);
    let mut rng = StdRng::seed_from_u64(2042);
    let net = greedy_bayes_fixed_k(&data, 3, &settings, &mut rng).unwrap();
    let model = noisy_conditionals_general(&data, &net, Some(0.7), &mut rng).unwrap();
    let artifact = ReleasedModel::new(
        ModelMetadata {
            method: "privbayes-k".into(),
            epsilon: 1.0,
            beta: 0.3,
            theta: 4.0,
            score: "I".into(),
            encoding: "binary".into(),
            source_rows: data.n(),
            comment: "perf query workload".into(),
        },
        data.schema().clone(),
        model.clone(),
    )
    .unwrap();

    let registry = Arc::new(ModelRegistry::new());
    registry.load("nltcs", artifact).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 4, fit_threads: None, ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());

    // A 1/2/3-way query mix over the first attributes.
    let queries: Vec<Vec<usize>> = vec![vec![0], vec![1, 0], vec![2, 1], vec![0, 1, 2]];

    // Correctness gate: served answers must be bit-identical to the oracle.
    for attrs in &queries {
        let mut q = MarginalQuery::new();
        for &a in attrs {
            q = q.over(data.schema().attribute(a).name());
        }
        let answer = client.query("nltcs", &q).unwrap();
        let served: Vec<f64> = answer
            .get("values")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        let oracle = reference_theta_projection(&model, data.schema(), attrs);
        assert_eq!(served.len(), oracle.values().len(), "attrs {attrs:?}");
        for (i, (a, b)) in served.iter().zip(oracle.values()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "served /v1/query must be bit-identical to the oracle (attrs {attrs:?}, cell {i})"
            );
        }
    }

    // Marginal latency distribution across the mix.
    let rounds = if cfg.quick { 10 } else { 40 };
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(rounds * queries.len());
    for _ in 0..rounds {
        for attrs in &queries {
            let mut q = MarginalQuery::new();
            for &a in attrs {
                q = q.over(data.schema().attribute(a).name());
            }
            let start = Instant::now();
            let _ = client.query("nltcs", &q).unwrap();
            latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    latencies_ms.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> f64 {
        let idx = ((latencies_ms.len() as f64 - 1.0) * p).round() as usize;
        latencies_ms[idx]
    };

    // Conditional vs unconditional streamed throughput. Evidence on the
    // first attribute's first value (a root or near-root clamp on Adult).
    let rows_per_request = if cfg.quick { 5_000 } else { 20_000 };
    let requests = if cfg.quick { 2 } else { 4 };
    let evidence_attr = data.schema().attribute(0).name().to_string();
    let throughput = |spec_for: &dyn Fn(u64) -> SynthSpec| -> f64 {
        let start = Instant::now();
        for r in 0..requests {
            let body = client.synth_with("nltcs", &spec_for(r as u64)).unwrap();
            assert!(!body.body.is_empty());
        }
        (requests * rows_per_request) as f64 / start.elapsed().as_secs_f64()
    };
    let unconditional =
        throughput(&|seed| SynthSpec::new().with_rows(rows_per_request).with_seed(seed));
    let conditional = throughput(&|seed| {
        SynthSpec::new()
            .with_rows(rows_per_request)
            .with_seed(seed)
            .where_eq(evidence_attr.as_str(), 0u32)
    });

    client.shutdown().unwrap();
    handle.join().unwrap();
    QueryBench {
        marginal_requests: latencies_ms.len(),
        marginal_p50_ms: percentile(0.50),
        marginal_p95_ms: percentile(0.95),
        unconditional_rows_per_sec: unconditional,
        conditional_rows_per_sec: conditional,
        rows_per_request,
    }
}

/// PR 8 observability measurements: scrape-delta conformance around a known
/// workload plus the instrumentation overhead gate.
struct ObsBench {
    clients: usize,
    requests: usize,
    rows_per_request: usize,
    rows_per_sec: f64,
    delta_synth_200: f64,
    delta_rows_streamed: f64,
    delta_bytes_streamed: f64,
    counter_inc_ns: f64,
    histogram_observe_ns: f64,
    mean_request_ms: f64,
    overhead_percent: f64,
}

/// The overhead gate: per-request instrumentation cost (estimated from
/// measured per-event atomic costs times the events a request performs) must
/// stay under this share of the measured mean request latency.
const OBS_OVERHEAD_GATE_PERCENT: f64 = 1.0;

/// Scrapes `/metrics` before and after a concurrent synth storm and checks
/// the counter deltas against the known workload exactly — N requests must
/// move the by-endpoint counter by N and the row counter by N·rows. Then
/// micro-times the two hot-path primitives (relaxed counter add, histogram
/// observe) on real registry handles and gates their estimated per-request
/// share against [`OBS_OVERHEAD_GATE_PERCENT`].
fn run_observability(cfg: &HarnessConfig, artifact: &ReleasedModel) -> ObsBench {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("adult", artifact.clone()).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 8, fit_threads: None, ..ServerConfig::default() },
        registry,
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let metrics = server.metrics();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());

    let rows_per_request = if cfg.quick { 5_000 } else { 20_000 };
    let requests_per_client = if cfg.quick { 2 } else { 4 };
    let clients = 4usize;

    let before = client.metrics().unwrap();
    let start = Instant::now();
    let latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..clients)
            .map(|c| {
                let client = Client::new(handle.addr().to_string());
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(requests_per_client);
                    for r in 0..requests_per_client {
                        let seed = (c * requests_per_client + r) as u64;
                        let t = Instant::now();
                        let body = client.synth("adult", rows_per_request, seed, "csv").unwrap();
                        local.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(body.lines().count(), rows_per_request + 1);
                    }
                    local
                })
            })
            .collect();
        threads.into_iter().flat_map(|t| t.join().unwrap()).collect()
    });
    let secs = start.elapsed().as_secs_f64();
    let total_requests = clients * requests_per_client;
    // A request is counted just *after* its bytes reach the wire, so the
    // last client can return a beat before the last increment lands; let
    // the registry settle before the closing scrape.
    let synth_200 = metrics
        .registry()
        .counter("privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")]);
    let expected = before
        .value("privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")])
        .unwrap_or(0.0) as u64
        + total_requests as u64;
    for _ in 0..400 {
        if synth_200.get() >= expected {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let after = client.metrics().unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
    let delta = |name: &str, labels: &[(&str, &str)]| -> f64 {
        after.value(name, labels).unwrap_or(0.0) - before.value(name, labels).unwrap_or(0.0)
    };
    let delta_synth_200 =
        delta("privbayes_requests_total", &[("endpoint", "synth"), ("status", "200")]);
    assert_eq!(
        delta_synth_200 as usize, total_requests,
        "N synth requests must move the synth/200 counter by exactly N"
    );
    let delta_rows_streamed = delta("privbayes_rows_streamed_total", &[]);
    assert_eq!(
        delta_rows_streamed as usize,
        total_requests * rows_per_request,
        "the row counter must move by exactly the streamed rows"
    );
    let delta_bytes_streamed = delta("privbayes_bytes_streamed_total", &[]);
    assert!(delta_bytes_streamed > 0.0, "byte counter must move");

    // Per-event cost of the two hot-path primitives, measured on the
    // server's own (now idle) registry handles.
    let iters = 1_000_000u64;
    let counter = metrics.registry().counter("privbayes_rows_streamed_total", &[]);
    let t = Instant::now();
    for _ in 0..iters {
        counter.add(1);
    }
    let counter_inc_ns = t.elapsed().as_nanos() as f64 / iters as f64;
    let histogram = metrics.registry().histogram("privbayes_fit_seconds", &[]);
    let t = Instant::now();
    for i in 0..iters {
        histogram.observe_ns(i);
    }
    let histogram_observe_ns = t.elapsed().as_nanos() as f64 / iters as f64;

    // A streamed request performs ~6 counter-style and ~7 histogram-style
    // events end to end (per-chunk work accumulates locally and lands as
    // one add). Gate that share of the measured mean latency.
    let instrumentation_ns = 6.0 * counter_inc_ns + 7.0 * histogram_observe_ns;
    let mean_request_ms = latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64;
    let overhead_percent = instrumentation_ns / (mean_request_ms * 1e6) * 100.0;
    assert!(
        overhead_percent < OBS_OVERHEAD_GATE_PERCENT,
        "instrumentation overhead {overhead_percent:.4}% breaches the \
         {OBS_OVERHEAD_GATE_PERCENT}% gate"
    );

    ObsBench {
        clients,
        requests: total_requests,
        rows_per_request,
        rows_per_sec: (total_requests * rows_per_request) as f64 / secs,
        delta_synth_200,
        delta_rows_streamed,
        delta_bytes_streamed,
        counter_inc_ns,
        histogram_observe_ns,
        mean_request_ms,
        overhead_percent,
    }
}

/// PR 9 scaling measurements: the keep-alive + row-block-cache serving
/// stack against the PR 3-era per-request-connection discipline.
struct ScalingBench {
    rows_per_request: usize,
    requests_per_client: usize,
    /// One client, fresh `Connection: close` per request, unique seed per
    /// request (every stream sampled cold) — the PR 3 stack.
    cold_close_rows_per_sec: f64,
    /// Same single client and cold seeds, but one kept-alive connection —
    /// isolates the keep-alive win from the cache win.
    keepalive_cold_rows_per_sec: f64,
    /// Eight keep-alive clients replaying one warmed stream — the full
    /// tentpole.
    hot8_rows_per_sec: f64,
    /// `hot8 / cold_close`: the gated number.
    scaling_ratio: f64,
    /// `keepalive_cold / cold_close`: the honest connection-reuse-only win.
    keepalive_ratio: f64,
    cache_hits: f64,
    connections_reused: f64,
}

/// The scaling gate: aggregate throughput of 8 keep-alive clients replaying
/// a cached stream must beat one PR 3-style client (fresh `Connection:
/// close` + cold sampling per request) by at least this factor. The
/// comparison deliberately spans the whole tentpole — connection reuse *and*
/// block replay — so it holds on any core count, including 1-core CI
/// runners where parallelism alone could never deliver it but skipping the
/// per-request connection, sampling, and formatting work can.
const SCALING_GATE_RATIO: f64 = 3.0;

/// Connects a raw measurement socket (`TCP_NODELAY`, like the real client).
fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect measurement socket");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("set read timeout");
    stream
}

/// Writes one GET by hand and drains the response with a constant-cost tail
/// scan — no chunked reassembly, no string building — so the timed loops
/// measure the serving stack rather than client-side parsing. Returns the
/// bytes read. `keep` picks the `Connection` header; a close response is
/// drained to EOF, a keep-alive one to the chunked terminator (`0\r\n\r\n`,
/// unambiguous here because CSV/NDJSON bodies never contain `\r`).
fn raw_get(stream: &mut TcpStream, buf: &mut [u8], path: &str, keep: bool) -> usize {
    let connection = if keep { "keep-alive" } else { "close" };
    let request = format!("GET {path} HTTP/1.1\r\nConnection: {connection}\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut total = 0usize;
    let mut tail = [0u8; 7];
    loop {
        let n = stream.read(buf).expect("read response");
        if n == 0 {
            assert!(!keep, "server closed a keep-alive response mid-stream");
            return total;
        }
        total += n;
        if n >= 7 {
            tail.copy_from_slice(&buf[n - 7..n]);
        } else {
            tail.copy_within(n.., 0);
            tail[7 - n..].copy_from_slice(&buf[..n]);
        }
        if keep && &tail == b"\r\n0\r\n\r\n" {
            return total;
        }
    }
}

/// Gates byte-identity across the four serving paths, then measures the
/// PR 3-era baseline (fresh connection + cold sampling per request) against
/// keep-alive alone and against the full 8-client keep-alive + warmed-cache
/// stack, asserting [`SCALING_GATE_RATIO`].
fn run_scaling(cfg: &HarnessConfig, data: &Dataset, artifact: &ReleasedModel) -> ScalingBench {
    let registry = Arc::new(ModelRegistry::new());
    registry.load("adult", artifact.clone()).unwrap();
    let entry = registry.get("adult").unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 8, fit_threads: None, ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::new(BudgetLedger::in_memory()),
    )
    .unwrap();
    let handle = server.spawn();
    let addr = handle.addr();
    let client = Client::new(addr.to_string());

    // Byte-identity gates: for one fixed (model, seed, rows, format) the
    // batch sampler, a fresh `Connection: close` stream, a first (cold)
    // keep-alive stream, and a replayed (cached) keep-alive stream must all
    // produce the same bytes — the throughput numbers below must never come
    // from a diverging fast path.
    let check_rows = 3_000.min(data.n());
    let direct = entry
        .sampler()
        .unwrap()
        .sample_dataset(check_rows, None, &mut StdRng::seed_from_u64(7))
        .unwrap();
    let mut expected = Vec::new();
    write_csv(&direct, &mut expected).unwrap();
    let check_path = format!("/models/adult/synth?rows={check_rows}&seed=7&format=csv");
    // `Client::request` is always a fresh `Connection: close` exchange.
    let closed = client.request("GET", &check_path, None).unwrap();
    assert_eq!(closed.code, 200);
    assert_eq!(closed.body, expected, "close-connection stream must match the batch path");
    // `Client::synth` rides the pooled keep-alive path: first cold, then
    // replayed from the row-block cache.
    let cold = client.synth("adult", check_rows, 7, "csv").unwrap();
    assert_eq!(cold.as_bytes(), &expected[..], "cold keep-alive stream must match the batch path");
    let cached = client.synth("adult", check_rows, 7, "csv").unwrap();
    assert_eq!(cached.as_bytes(), &expected[..], "cached replay must match the batch path");
    let warmup_hits =
        client.metrics().unwrap().value("privbayes_rowblock_cache_hits_total", &[]).unwrap_or(0.0);
    assert!(warmup_hits > 0.0, "the replay must actually have come from the row-block cache");

    let rows_per_request = if cfg.quick { 2_000 } else { 8_000 };
    let requests = if cfg.quick { 4 } else { 8 };
    let hot_seed = 7_777u64;
    // Warm the cache for the hot scenario.
    let warm = client.synth("adult", rows_per_request, hot_seed, "csv").unwrap();
    assert_eq!(warm.lines().count(), rows_per_request + 1);

    let mut buf = vec![0u8; 64 * 1024];
    // PR 3-era baseline: one client, a fresh connection per request, a
    // unique seed per request so every stream is sampled and formatted cold.
    let start = Instant::now();
    for r in 0..requests {
        let seed = 100_000 + r as u64;
        let path = format!("/models/adult/synth?rows={rows_per_request}&seed={seed}&format=csv");
        let mut stream = raw_connect(addr);
        let n = raw_get(&mut stream, &mut buf, &path, false);
        assert!(n > rows_per_request, "a streamed response is at least a byte per row");
    }
    let cold_close = (requests * rows_per_request) as f64 / start.elapsed().as_secs_f64();

    // Keep-alive alone: same single client and cold seeds, one connection.
    let start = Instant::now();
    {
        let mut stream = raw_connect(addr);
        for r in 0..requests {
            let seed = 200_000 + r as u64;
            let path =
                format!("/models/adult/synth?rows={rows_per_request}&seed={seed}&format=csv");
            let n = raw_get(&mut stream, &mut buf, &path, true);
            assert!(n > rows_per_request);
        }
    }
    let keepalive_cold = (requests * rows_per_request) as f64 / start.elapsed().as_secs_f64();

    // The full stack: 8 keep-alive clients replaying the warmed stream.
    let hot_clients = 8usize;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..hot_clients {
            scope.spawn(|| {
                let mut buf = vec![0u8; 64 * 1024];
                let mut stream = raw_connect(addr);
                let path = format!(
                    "/models/adult/synth?rows={rows_per_request}&seed={hot_seed}&format=csv"
                );
                for _ in 0..requests {
                    let n = raw_get(&mut stream, &mut buf, &path, true);
                    assert!(n > rows_per_request);
                }
            });
        }
    });
    let hot8 = (hot_clients * requests * rows_per_request) as f64 / start.elapsed().as_secs_f64();

    let snapshot = client.metrics().unwrap();
    let cache_hits = snapshot.value("privbayes_rowblock_cache_hits_total", &[]).unwrap_or(0.0);
    let connections_reused =
        snapshot.value("privbayes_connections_reused_total", &[]).unwrap_or(0.0);
    assert!(connections_reused > 0.0, "keep-alive requests must count as reused connections");
    client.shutdown().unwrap();
    handle.join().unwrap();

    let scaling_ratio = hot8 / cold_close;
    let keepalive_ratio = keepalive_cold / cold_close;
    assert!(
        scaling_ratio >= SCALING_GATE_RATIO,
        "8 keep-alive clients on the warmed cache must beat the one-client cold baseline \
         {SCALING_GATE_RATIO}x; got {scaling_ratio:.2}x ({hot8:.0} vs {cold_close:.0} rows/s)"
    );
    ScalingBench {
        rows_per_request,
        requests_per_client: requests,
        cold_close_rows_per_sec: cold_close,
        keepalive_cold_rows_per_sec: keepalive_cold,
        hot8_rows_per_sec: hot8,
        scaling_ratio,
        keepalive_ratio,
        cache_hits,
        connections_reused,
    }
}

struct IngestBench {
    rows: usize,
    batches: usize,
    batch_rows: usize,
    /// Accepted rows/s through journaled `POST /v1/tenants/{t}/ingest`
    /// (CSV parse + schema validation + write-temp/fsync/rename included).
    ingest_rows_per_sec: f64,
    /// Fit over the long-lived appended engine, cache warm from the
    /// previous generation — what a background refit actually costs.
    warm_refit_ms: f64,
    /// Fresh engine + fit from scratch over the same rows — what a
    /// restart-and-refit-cold deployment would pay per generation.
    cold_fit_ms: f64,
    /// `cold_fit / warm_refit`.
    refit_speedup: f64,
}

/// Drives the online-ingestion path end to end: journaled ingest batches
/// over a live server (timing accepted rows/s with every fsync on the
/// path), then a refit over the long-lived appended engine against a
/// from-scratch cold fit of the same rows — asserting first that the two
/// artifacts serialise **bit-identically**, so the refit speedup can never
/// come from diverging semantics.
fn run_ingestion(cfg: &HarnessConfig, data: &Dataset) -> IngestBench {
    let dir = std::env::temp_dir().join(format!("privbayes-perf-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create ingest journal dir");

    // The refit policy stays disabled so the timed loop measures ingest
    // alone; the refit cost is measured separately below.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 4, data_dir: Some(dir.clone()), ..ServerConfig::default() },
        Arc::new(ModelRegistry::new()),
        Arc::new(BudgetLedger::in_memory()),
    )
    .expect("bind ingest server");
    let store = server.store();
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());

    let n = data.n();
    let batches = 16usize;
    let batch_rows = n.div_ceil(batches);
    let mut bodies: Vec<Json> = Vec::new();
    for (index, start) in (0..n).step_by(batch_rows).enumerate() {
        let rows: Vec<usize> = (start..(start + batch_rows).min(n)).collect();
        let mut csv = Vec::new();
        write_csv(&data.select_rows(&rows), &mut csv).expect("render batch CSV");
        let csv = Json::String(String::from_utf8(csv).expect("CSV is UTF-8"));
        bodies.push(if index == 0 {
            Json::object(vec![
                ("schema", privbayes_model::schema_to_json(data.schema())),
                ("model_id", Json::String("adult-inc".into())),
                ("epsilon", Json::Number(1.0)),
                ("seed", Json::Number(4242.0)),
                ("csv", csv),
            ])
        } else {
            Json::object(vec![("csv", csv)])
        });
    }
    let start = Instant::now();
    for body in &bodies {
        let response = client.ingest("acme", body).expect("ingest batch");
        assert_eq!(response.code, 200, "{}", response.text());
    }
    let ingest_secs = start.elapsed().as_secs_f64();
    client.shutdown().expect("shutdown ingest server");
    handle.join().expect("join ingest server");

    // Generation 1 warms the engine cache (untimed), then warm-vs-cold.
    let settings = privbayes_synth::FitSettings::default();
    let refit = |engine: &privbayes_marginals::CountEngine| {
        privbayes_synth::fit_method_with_engine(
            privbayes_synth::Method::PrivBayes,
            engine,
            1.0,
            4242,
            &settings,
        )
        .expect("refit over appended engine")
    };
    let _generation1 = store.with_engine("acme", refit).expect("tenant exists");
    let (warm_refit_ms, warm) =
        time_min_ms(cfg.reps, || store.with_engine("acme", refit).expect("tenant exists"));
    let (cold_fit_ms, cold) = time_min_ms(cfg.reps, || {
        privbayes_synth::fit_method(privbayes_synth::Method::PrivBayes, data, 1.0, 4242, &settings)
            .expect("cold fit")
    });
    assert_eq!(
        warm.artifact.to_json_string().unwrap(),
        cold.artifact.to_json_string().unwrap(),
        "a refit over the appended engine must serialise bit-identically to a cold fit"
    );
    let _ = std::fs::remove_dir_all(&dir);

    IngestBench {
        rows: n,
        batches: bodies.len(),
        batch_rows,
        ingest_rows_per_sec: n as f64 / ingest_secs,
        warm_refit_ms,
        cold_fit_ms,
        refit_speedup: cold_fit_ms / warm_refit_ms,
    }
}

/// The common environment stanza every BENCH_*.json carries: harness mode,
/// the machine's available parallelism, and the server worker count the
/// scenario ran with.
fn env_json(cfg: &HarnessConfig, workers: usize) -> String {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    format!(
        "\"quick\": {}, \"mode\": \"{}\", \"available_parallelism\": {}, \"workers\": {}",
        cfg.quick,
        if cfg.quick { "quick" } else { "full" },
        threads,
        workers
    )
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let workloads = vec![run_adult(&cfg), run_nltcs(&cfg)];
    let (adult_data, adult_artifact) = fit_adult_artifact(&cfg);
    let serve = run_serve(&cfg, &adult_data, &adult_artifact);
    let overload = run_overload(&cfg, &adult_artifact);
    let query = run_query(&cfg);
    let obs = run_observability(&cfg, &adult_artifact);
    let scaling = run_scaling(&cfg, &adult_data, &adult_artifact);
    let ingest = run_ingestion(&cfg, &adult_data);

    for w in &workloads {
        println!("== {} (n = {}, d = {}) ==", w.name, w.rows, w.attrs);
        for s in &w.stages {
            println!(
                "  {:<17} baseline {:>9.1} ms | engine {:>9.1} ms | {:>5.1}x | {:>9.0} rows/s",
                s.name,
                s.baseline_ms,
                s.engine_ms,
                s.speedup(),
                s.rows_per_sec(s.engine_ms),
            );
        }
    }

    println!("== serve (model: adult, n = {}, d = {}) ==", serve.model_rows, serve.attrs);
    for p in &serve.points {
        println!(
            "  {} client(s) x {} req x {} rows   {:>9.0} rows/s",
            p.clients, p.requests_per_client, p.rows_per_request, p.rows_per_sec,
        );
    }

    println!(
        "== overload ({} workers, queue {}, {} clients) ==",
        overload.workers, overload.queue_depth, overload.clients
    );
    println!(
        "  {} requests: {} ok, {} rejected 503 | accepted p50 {:>7.1} ms | p99 {:>7.1} ms",
        overload.requests, overload.ok, overload.rejected_503, overload.p50_ms, overload.p99_ms,
    );

    println!("== query API v2 (model: nltcs) ==");
    println!(
        "  marginal /v1/query      p50 {:>7.2} ms | p95 {:>7.2} ms  ({} requests)",
        query.marginal_p50_ms, query.marginal_p95_ms, query.marginal_requests,
    );
    println!(
        "  synth throughput        unconditional {:>9.0} rows/s | conditional {:>9.0} rows/s",
        query.unconditional_rows_per_sec, query.conditional_rows_per_sec,
    );

    println!(
        "== observability ({} clients x {} req x {} rows) ==",
        obs.clients,
        obs.requests / obs.clients,
        obs.rows_per_request
    );
    println!(
        "  scrape deltas           synth/200 {:>4.0} | rows {:>9.0} | bytes {:>11.0}",
        obs.delta_synth_200, obs.delta_rows_streamed, obs.delta_bytes_streamed,
    );
    println!(
        "  hot-path cost           counter {:.1} ns | histogram {:.1} ns | overhead {:.5}% of \
         {:.1} ms mean (gate {OBS_OVERHEAD_GATE_PERCENT}%)",
        obs.counter_inc_ns, obs.histogram_observe_ns, obs.overhead_percent, obs.mean_request_ms,
    );

    println!(
        "== scaling ({} rows/req x {} req/client) ==",
        scaling.rows_per_request, scaling.requests_per_client
    );
    println!(
        "  1 client cold+close {:>9.0} rows/s | 1 client keep-alive {:>9.0} rows/s ({:.2}x)",
        scaling.cold_close_rows_per_sec,
        scaling.keepalive_cold_rows_per_sec,
        scaling.keepalive_ratio,
    );
    println!(
        "  8 clients keep-alive + cache {:>9.0} rows/s | {:.2}x cold baseline \
         (gate {SCALING_GATE_RATIO}x) | {} cache hits | {} conns reused",
        scaling.hot8_rows_per_sec,
        scaling.scaling_ratio,
        scaling.cache_hits,
        scaling.connections_reused,
    );

    println!(
        "== ingestion ({} rows in {} batches of {}) ==",
        ingest.rows, ingest.batches, ingest.batch_rows
    );
    println!(
        "  journaled ingest {:>9.0} rows/s | warm refit {:>8.1} ms | cold fit {:>8.1} ms \
         ({:.2}x)",
        ingest.ingest_rows_per_sec, ingest.warm_refit_ms, ingest.cold_fit_ms, ingest.refit_speedup,
    );

    let workload_json: Vec<String> = workloads
        .iter()
        .map(|w| {
            let stages: Vec<String> =
                w.stages.iter().map(|s| format!("\"{}\": {}", s.name, s.json())).collect();
            format!(
                "    {{\"name\": \"{}\", \"rows\": {}, \"attrs\": {}, {}}}",
                w.name,
                w.rows,
                w.attrs,
                stages.join(", ")
            )
        })
        .collect();
    let serve_points: Vec<String> = serve
        .points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "      {{\"clients\": {}, \"requests_per_client\": {}, ",
                    "\"rows_per_request\": {}, \"rows_per_sec\": {:.0}}}"
                ),
                p.clients, p.requests_per_client, p.rows_per_request, p.rows_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"pr\": 3,\n  {},\n  \"reps\": {},\n  \"threads\": {},\n  \"workloads\": [\n{}\n  ],\n  \"serve\": {{\n    \"model_rows\": {},\n    \"attrs\": {},\n    \"format\": \"csv\",\n    \"points\": [\n{}\n    ]\n  }}\n}}\n",
        env_json(&cfg, 8),
        cfg.reps,
        threads,
        workload_json.join(",\n"),
        serve.model_rows,
        serve.attrs,
        serve_points.join(",\n")
    );

    let out_path = |name: &str| -> std::path::PathBuf {
        let path =
            cfg.out_dir.clone().map_or_else(|| std::path::PathBuf::from(name), |d| d.join(name));
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output directory");
            }
        }
        path
    };
    let path = out_path("BENCH_PR3.json");
    std::fs::write(&path, json).expect("write BENCH_PR3.json");
    println!("wrote {}", path.display());

    let query_json = format!(
        concat!(
            "{{\n  \"pr\": 5,\n  {},\n  \"threads\": {},\n",
            "  \"marginal_query\": {{\"requests\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}}},\n",
            "  \"synth_throughput\": {{\"rows_per_request\": {}, ",
            "\"unconditional_rows_per_sec\": {:.0}, \"conditional_rows_per_sec\": {:.0}}}\n}}\n"
        ),
        env_json(&cfg, 4),
        threads,
        query.marginal_requests,
        query.marginal_p50_ms,
        query.marginal_p95_ms,
        query.rows_per_request,
        query.unconditional_rows_per_sec,
        query.conditional_rows_per_sec,
    );
    let path = out_path("BENCH_PR5.json");
    std::fs::write(&path, query_json).expect("write BENCH_PR5.json");
    println!("wrote {}", path.display());

    let overload_json = format!(
        concat!(
            "{{\n  \"pr\": 7,\n  {},\n  \"threads\": {},\n",
            "  \"overload\": {{\"workers\": {}, \"queue_depth\": {}, \"clients\": {}, ",
            "\"requests\": {}, \"ok\": {}, \"rejected_503\": {}, ",
            "\"accepted_p50_ms\": {:.2}, \"accepted_p99_ms\": {:.2}}}\n}}\n"
        ),
        env_json(&cfg, overload.workers),
        threads,
        overload.workers,
        overload.queue_depth,
        overload.clients,
        overload.requests,
        overload.ok,
        overload.rejected_503,
        overload.p50_ms,
        overload.p99_ms,
    );
    let path = out_path("BENCH_PR7.json");
    std::fs::write(&path, overload_json).expect("write BENCH_PR7.json");
    println!("wrote {}", path.display());

    let obs_json = format!(
        concat!(
            "{{\n  \"pr\": 8,\n  {},\n  \"threads\": {},\n",
            "  \"workload\": {{\"clients\": {}, \"requests\": {}, \"rows_per_request\": {}, ",
            "\"rows_per_sec\": {:.0}}},\n",
            "  \"scrape_deltas\": {{\"requests_synth_200\": {:.0}, \"rows_streamed\": {:.0}, ",
            "\"bytes_streamed\": {:.0}}},\n",
            "  \"overhead\": {{\"counter_inc_ns\": {:.2}, \"histogram_observe_ns\": {:.2}, ",
            "\"mean_request_ms\": {:.3}, \"overhead_percent\": {:.6}, ",
            "\"gate_percent\": {}, \"pass\": true}}\n}}\n"
        ),
        env_json(&cfg, 8),
        threads,
        obs.clients,
        obs.requests,
        obs.rows_per_request,
        obs.rows_per_sec,
        obs.delta_synth_200,
        obs.delta_rows_streamed,
        obs.delta_bytes_streamed,
        obs.counter_inc_ns,
        obs.histogram_observe_ns,
        obs.mean_request_ms,
        obs.overhead_percent,
        OBS_OVERHEAD_GATE_PERCENT,
    );
    let path = out_path("BENCH_PR8.json");
    std::fs::write(&path, obs_json).expect("write BENCH_PR8.json");
    println!("wrote {}", path.display());

    let scaling_json = format!(
        concat!(
            "{{\n  \"pr\": 9,\n  {},\n",
            "  \"scaling\": {{\"rows_per_request\": {}, \"requests_per_client\": {}, ",
            "\"hot_clients\": 8, ",
            "\"cold_close_rows_per_sec\": {:.0}, \"keepalive_cold_rows_per_sec\": {:.0}, ",
            "\"hot8_keepalive_cached_rows_per_sec\": {:.0}, ",
            "\"keepalive_ratio\": {:.2}, \"scaling_ratio\": {:.2}, ",
            "\"gate_ratio\": {}, \"pass\": true}},\n",
            "  \"cache\": {{\"hits\": {:.0}, \"connections_reused\": {:.0}}},\n",
            "  \"byte_identity\": ",
            "\"close == keepalive == cached replay == batch sample_dataset\"\n}}\n"
        ),
        env_json(&cfg, 8),
        scaling.rows_per_request,
        scaling.requests_per_client,
        scaling.cold_close_rows_per_sec,
        scaling.keepalive_cold_rows_per_sec,
        scaling.hot8_rows_per_sec,
        scaling.keepalive_ratio,
        scaling.scaling_ratio,
        SCALING_GATE_RATIO,
        scaling.cache_hits,
        scaling.connections_reused,
    );
    let path = out_path("BENCH_PR9.json");
    std::fs::write(&path, scaling_json).expect("write BENCH_PR9.json");
    println!("wrote {}", path.display());

    let ingest_json = format!(
        concat!(
            "{{\n  \"pr\": 10,\n  {},\n",
            "  \"ingest\": {{\"rows\": {}, \"batches\": {}, \"batch_rows\": {}, ",
            "\"journaled_rows_per_sec\": {:.0}}},\n",
            "  \"refit\": {{\"warm_refit_ms\": {:.2}, \"cold_fit_ms\": {:.2}, ",
            "\"speedup\": {:.2}}},\n",
            "  \"byte_identity\": ",
            "\"refit over appended engine == cold fit over concatenated data\"\n}}\n"
        ),
        env_json(&cfg, 4),
        ingest.rows,
        ingest.batches,
        ingest.batch_rows,
        ingest.ingest_rows_per_sec,
        ingest.warm_refit_ms,
        ingest.cold_fit_ms,
        ingest.refit_speedup,
    );
    let path = out_path("BENCH_PR10.json");
    std::fs::write(&path, ingest_json).expect("write BENCH_PR10.json");
    println!("wrote {}", path.display());
}
