//! Ablation 2: synthetic sample size vs exact model inference (§3's
//! sampling discussion + §7's answer-from-the-model direction).
//!
//! Columns sweep the synthetic sample from n/4 to 4n, with the final column
//! answering every workload marginal exactly from the noisy model (zero
//! sampling error, identical privacy cost). The gap between `rows=n` and
//! `exact` is precisely the sampling error the paper's `D* of size n`
//! convention accepts.

use privbayes_bench::ablations::{inference_count_error, sample_size_count_error};
use privbayes_bench::{mean_over_reps, HarnessConfig, ResultTable};
use privbayes_datasets::adult::adult_sized;

fn main() {
    let cfg = HarnessConfig::from_env();
    const FACTORS: [(f64, &str); 3] = [(0.25, "rows=n/4"), (1.0, "rows=n"), (4.0, "rows=4n")];
    let data = adult_sized(21, cfg.scaled(45_222)).data;
    for alpha in [2usize, 3] {
        let mut columns: Vec<String> = FACTORS.iter().map(|(_, l)| (*l).into()).collect();
        columns.push("exact (model)".into());
        let mut table = ResultTable::new(
            format!("Abl 2: Adult, Q{alpha} — sample size vs exact inference"),
            "epsilon",
            columns,
        );
        for eps in cfg.epsilons() {
            let mut row: Vec<f64> = FACTORS
                .iter()
                .map(|&(factor, _)| {
                    mean_over_reps(cfg.reps, 2000, |seed| {
                        sample_size_count_error(&data, alpha, eps, factor, seed)
                    })
                })
                .collect();
            row.push(mean_over_reps(cfg.reps, 2000, |seed| {
                inference_count_error(&data, alpha, eps, seed)
            }));
            table.push_row(format!("{eps}"), row);
        }
        table.emit(&cfg);
    }
}
