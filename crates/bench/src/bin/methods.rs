//! `methods`: the §6-style method-vs-epsilon comparison for the unified
//! `Synthesizer` layer, emitting machine-readable `BENCH_PR4.json`.
//!
//! Three measurement families:
//!
//! 1. **Equivalence gate.** Every engine-routed baseline (MWEM, Laplace,
//!    geometric, Contingency, Fourier) is run side-by-side with its
//!    pre-refactor `from_dataset` reference on the same seed and asserted
//!    **bit-identical** — a count mismatch aborts the run, so no number in
//!    the JSON can come from diverging semantics.
//! 2. **MWEM engine-vs-scan fit.** Wall-clock of the engine-backed
//!    `mwem_marginals` (full-domain joint counted once, workload truths by
//!    integer projection) against the scan reference (one row scan per
//!    truth), reported as a speedup, plus the engine's cache counters.
//! 3. **Method table + serve throughput.** Every [`Method`] is fit across
//!    the ε grid (fit wall-clock, α = 2 workload TVD of its samples, engine
//!    stats), and every fitted artifact is loaded into an in-process
//!    `privbayes-server` and streamed from, reporting rows/sec per method.
//!
//! Usage: `methods [--quick] [--reps N] [--scale F] [--out DIR]`.

use std::sync::Arc;
use std::time::Instant;

use privbayes_baselines::{
    contingency_marginals, fourier_marginals, geometric_marginals, laplace_marginals,
    mwem_marginals, MwemOptions,
};
use privbayes_bench::reference::{
    reference_contingency_marginals, reference_fourier_marginals, reference_geometric_marginals,
    reference_laplace_marginals, reference_mwem_marginals,
};
use privbayes_bench::HarnessConfig;
use privbayes_data::{Dataset, Schema};
use privbayes_datasets::GroundTruthNetwork;
use privbayes_marginals::{
    average_workload_tvd, AlphaWayWorkload, ContingencyTable, CountEngine, EngineStats,
};
use privbayes_server::{BudgetLedger, Client, ModelRegistry, Server, ServerConfig};
use privbayes_synth::{fit_method, FitSettings, Method};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The benchmark dataset: 8 correlated binary attributes drawn from a
/// hidden ground-truth network — an MWEM-representative domain (2⁸ cells
/// ≪ 4n, so the engine retains the full joint) with enough rows that
/// per-marginal row scans dominate the scan baseline.
fn benchmark_data(cfg: &HarnessConfig) -> Dataset {
    let schema =
        Schema::new((0..8).map(|i| privbayes_data::Attribute::binary(format!("x{i}"))).collect())
            .expect("valid schema");
    let mut rng = StdRng::seed_from_u64(41);
    let net = GroundTruthNetwork::random(&schema, 3, 0.3, &mut rng);
    net.sample(cfg.scaled(40_000), &mut rng)
}

/// Asserts two table lists are bit-identical (axes, dims, every f64 cell).
fn assert_tables_identical(
    name: &str,
    engine: &[ContingencyTable],
    reference: &[ContingencyTable],
) {
    assert_eq!(engine.len(), reference.len(), "{name}: table count");
    for (i, (e, r)) in engine.iter().zip(reference).enumerate() {
        assert_eq!(e.axes(), r.axes(), "{name}[{i}]: axes");
        assert_eq!(e.dims(), r.dims(), "{name}[{i}]: dims");
        for (j, (a, b)) in e.values().iter().zip(r.values()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name}[{i}] cell {j}: engine {a} vs reference {b} — count mismatch"
            );
        }
    }
}

/// Best-of-`reps` wall-clock in milliseconds.
fn time_min_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("at least one repetition"))
}

fn stats_json(s: EngineStats) -> String {
    format!(
        "{{\"scans\": {}, \"projections\": {}, \"hits\": {}, \"cached_tables\": {}, \
         \"bytes_materialized\": {}, \"scan_micros\": {}, \"score_micros\": {}}}",
        s.scans,
        s.projections,
        s.hits,
        s.cached_tables,
        s.bytes_materialized,
        s.scan_micros,
        s.score_micros
    )
}

/// Family 1: engine vs reference bit-identity for every baseline.
fn equivalence_gate(data: &Dataset, workload: &AlphaWayWorkload) {
    let eps = 0.8;
    let opts = MwemOptions { iterations: 4, ..MwemOptions::default() };
    let check = |name: &str, engine: Vec<ContingencyTable>, reference: Vec<ContingencyTable>| {
        assert_tables_identical(name, &engine, &reference);
        println!("  equivalence: {name:<12} OK ({} tables bit-identical)", engine.len());
    };
    let rng = |seed| StdRng::seed_from_u64(seed);
    check(
        "laplace",
        laplace_marginals(&CountEngine::new(data), workload, eps, &mut rng(97)),
        reference_laplace_marginals(data, workload, eps, &mut rng(97)),
    );
    check(
        "geometric",
        geometric_marginals(&CountEngine::new(data), workload, eps, &mut rng(97)),
        reference_geometric_marginals(data, workload, eps, &mut rng(97)),
    );
    check(
        "contingency",
        contingency_marginals(&CountEngine::new(data), workload, eps, &mut rng(97)),
        reference_contingency_marginals(data, workload, eps, &mut rng(97)),
    );
    check(
        "fourier",
        fourier_marginals(data, workload, eps, &mut rng(97)),
        reference_fourier_marginals(data, workload, eps, &mut rng(97)),
    );
    check(
        "mwem",
        mwem_marginals(&CountEngine::new(data), workload, eps, opts, &mut rng(97)),
        reference_mwem_marginals(data, workload, eps, opts, &mut rng(97)),
    );
}

/// Family 2: MWEM fit wall-clock, engine vs scan.
struct MwemBench {
    engine_ms: f64,
    scan_ms: f64,
    stats: EngineStats,
}

fn mwem_bench(cfg: &HarnessConfig, data: &Dataset, workload: &AlphaWayWorkload) -> MwemBench {
    let eps = 1.0;
    // Few update passes: the timed configuration weights the fit towards the
    // marginal-measurement phase the engine accelerates, not the shared
    // multiplicative-weights arithmetic.
    let opts = MwemOptions { iterations: 4, update_passes: 2, ..MwemOptions::default() };
    let (scan_ms, reference) = time_min_ms(cfg.reps, || {
        reference_mwem_marginals(data, workload, eps, opts, &mut StdRng::seed_from_u64(11))
    });
    let mut stats = EngineStats::default();
    let (engine_ms, engine_tables) = time_min_ms(cfg.reps, || {
        let engine = CountEngine::new(data);
        let tables = mwem_marginals(&engine, workload, eps, opts, &mut StdRng::seed_from_u64(11));
        stats = engine.stats();
        tables
    });
    assert_tables_identical("mwem-timed", &engine_tables, &reference);
    MwemBench { engine_ms, scan_ms, stats }
}

/// Family 3 rows: one fitted point of the method table.
struct MethodPoint {
    method: Method,
    epsilon: f64,
    fit_ms: f64,
    avg_tvd_alpha2: f64,
    stats: EngineStats,
}

/// One serve-throughput measurement.
struct ServePoint {
    method: Method,
    rows_per_request: usize,
    requests: usize,
    rows_per_sec: f64,
}

fn main() {
    let cfg = HarnessConfig::from_env();
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let data = benchmark_data(&cfg);
    let workload = AlphaWayWorkload::new(data.d(), 3);
    println!("== methods bench (n = {}, d = {}, |Q3| = {}) ==", data.n(), data.d(), workload.len());

    equivalence_gate(&data, &workload);

    let mwem = mwem_bench(&cfg, &data, &workload);
    println!(
        "  mwem fit: scan {:.1} ms | engine {:.1} ms | {:.2}x  (stats {:?})",
        mwem.scan_ms,
        mwem.engine_ms,
        mwem.scan_ms / mwem.engine_ms,
        mwem.stats,
    );

    // Method-vs-epsilon table (§6 style): fit, sample, measure Q2 TVD.
    let epsilons: Vec<f64> = if cfg.quick { vec![0.1, 1.0] } else { vec![0.05, 0.2, 0.8, 1.6] };
    let settings = FitSettings {
        mwem: MwemOptions { iterations: 8, ..MwemOptions::default() },
        ..FitSettings::default()
    };
    let mut table: Vec<MethodPoint> = Vec::new();
    for method in Method::ALL {
        let eps_grid: &[f64] = if method.spends_budget() { &epsilons } else { &[0.0][..] };
        for &epsilon in eps_grid {
            let fit_eps = if method.spends_budget() { epsilon } else { 1.0 };
            let (fit_ms, fitted) = time_min_ms(cfg.reps, || {
                fit_method(method, &data, fit_eps, 61, &settings).expect("fit")
            });
            let synthetic =
                fitted.artifact.sample(data.n(), &mut StdRng::seed_from_u64(62)).expect("sample");
            let avg_tvd_alpha2 = average_workload_tvd(&data, &synthetic, 2);
            println!(
                "  {:<12} eps {:>5}  fit {:>8.1} ms  Q2 tvd {:.4}",
                method.name(),
                epsilon,
                fit_ms,
                avg_tvd_alpha2
            );
            table.push(MethodPoint {
                method,
                epsilon,
                fit_ms,
                avg_tvd_alpha2,
                stats: fitted.stats,
            });
        }
    }

    // Per-method serve throughput through the real HTTP path.
    let registry = Arc::new(ModelRegistry::new());
    for method in Method::ALL {
        let fitted = fit_method(method, &data, 1.0, 71, &settings).expect("fit for serving");
        registry.load(method.name(), fitted.artifact).expect("register");
    }
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { workers: 8, fit_threads: None, ..ServerConfig::default() },
        Arc::clone(&registry),
        Arc::new(BudgetLedger::in_memory()),
    )
    .expect("bind");
    let handle = server.spawn();
    let client = Client::new(handle.addr().to_string());
    let rows_per_request = if cfg.quick { 5_000 } else { 20_000 };
    let requests = if cfg.quick { 2 } else { 4 };
    let mut serve: Vec<ServePoint> = Vec::new();
    for method in Method::ALL {
        let start = Instant::now();
        for r in 0..requests {
            let body =
                client.synth(method.name(), rows_per_request, r as u64, "csv").expect("synth");
            assert_eq!(body.lines().count(), rows_per_request + 1, "{method}: header + rows");
        }
        let secs = start.elapsed().as_secs_f64();
        let rows_per_sec = (requests * rows_per_request) as f64 / secs;
        println!("  serve {:<12} {:>9.0} rows/s", method.name(), rows_per_sec);
        serve.push(ServePoint { method, rows_per_request, requests, rows_per_sec });
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server join");

    // Emit BENCH_PR4.json.
    let table_json: Vec<String> = table
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"method\": \"{}\", \"epsilon\": {}, \"fit_ms\": {:.2}, ",
                    "\"avg_tvd_alpha2\": {:.6}, \"engine\": {}}}"
                ),
                p.method.name(),
                p.epsilon,
                p.fit_ms,
                p.avg_tvd_alpha2,
                stats_json(p.stats)
            )
        })
        .collect();
    let serve_json: Vec<String> = serve
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"method\": \"{}\", \"rows_per_request\": {}, \"requests\": {}, ",
                    "\"rows_per_sec\": {:.0}}}"
                ),
                p.method.name(),
                p.rows_per_request,
                p.requests,
                p.rows_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"quick\": {},\n  \"mode\": \"{}\",\n  \"reps\": {},\n  \
         \"threads\": {},\n  \"available_parallelism\": {},\n  \"workers\": 8,\n  \
         \"rows\": {},\n  \"attrs\": {},\n  \"workload\": {},\n  \
         \"equivalence\": \"all baselines bit-identical to scan references\",\n  \
         \"mwem\": {{\"scan_ms\": {:.2}, \"engine_ms\": {:.2}, \"speedup\": {:.2}, \"engine\": {}}},\n  \
         \"methods\": [\n{}\n  ],\n  \"serve\": [\n{}\n  ]\n}}\n",
        cfg.quick,
        if cfg.quick { "quick" } else { "full" },
        cfg.reps,
        threads,
        threads,
        data.n(),
        data.d(),
        workload.len(),
        mwem.scan_ms,
        mwem.engine_ms,
        mwem.scan_ms / mwem.engine_ms,
        stats_json(mwem.stats),
        table_json.join(",\n"),
        serve_json.join(",\n")
    );
    let path = cfg
        .out_dir
        .clone()
        .map_or_else(|| std::path::PathBuf::from("BENCH_PR4.json"), |d| d.join("BENCH_PR4.json"));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&path, json).expect("write BENCH_PR4.json");
    println!("wrote {}", path.display());
}
