//! Regenerates Figure 18: PrivBayes vs the classification baselines on Adult's
//! four SVM targets.

use privbayes_bench::figures::{fig_svm_panels, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for t in fig_svm_panels(&cfg, DatasetPick::Adult) {
        t.emit(&cfg);
    }
}
