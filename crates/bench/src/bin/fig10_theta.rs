//! Regenerates Figure 10(a–h): the effect of the θ-usefulness threshold.

use privbayes_bench::figures::{fig_parameter_sweep, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for pick in [DatasetPick::Nltcs, DatasetPick::Acs, DatasetPick::Adult, DatasetPick::Br2000] {
        for t in fig_parameter_sweep(&cfg, pick, false) {
            t.emit(&cfg);
        }
    }
}
