//! Regenerates Figure 13: PrivBayes vs the count baselines on Acs's α-way
//! marginal workloads.

use privbayes_bench::figures::{fig_marginals_panel, DatasetPick};
use privbayes_bench::HarnessConfig;

fn main() {
    let cfg = HarnessConfig::from_env();
    for alpha in DatasetPick::Acs.alphas() {
        fig_marginals_panel(&cfg, DatasetPick::Acs, alpha).emit(&cfg);
    }
}
