//! Experiment harness for the PrivBayes reproduction.
//!
//! One binary per figure/table of the paper's evaluation (§6) lives in
//! `src/bin/`; this library provides the shared machinery: CLI options,
//! result tables (console + CSV), seeded repetition, and task runners for
//! the two workload families (α-way marginal counts and multi-SVM
//! classification).
//!
//! Every binary accepts:
//!
//! * `--quick` — 1 repetition, quarter-size datasets, thinned ε grid;
//! * `--reps N` — repetitions per point (paper: 100; default here: 3);
//! * `--scale F` — dataset-size fraction (default 1.0);
//! * `--out DIR` — also write each table as CSV into DIR.

pub mod ablations;
pub mod audit;
pub mod cli;
pub mod figures;
pub mod reference;
pub mod table;
pub mod tasks;

pub use cli::HarnessConfig;
pub use table::ResultTable;

/// The paper's ε grid (§6.1).
pub const EPSILONS: [f64; 6] = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6];

/// The β grid of Figure 9.
pub const BETAS: [f64; 8] = [0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];

/// The θ grid of Figure 10.
pub const THETAS: [f64; 8] = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0];

/// Runs `f` for `reps` seeds in parallel and averages the results.
///
/// Workers are capped at [`std::thread::available_parallelism`] (each handles
/// a contiguous block of repetitions) and results flow back through the
/// scoped-join return values, so no shared mutable state is needed. The mean
/// is accumulated in repetition order, independent of the worker count.
///
/// # Panics
/// Panics if `reps == 0` or a worker panics.
pub fn mean_over_reps<F>(reps: usize, base_seed: u64, f: F) -> f64
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(reps > 0, "need at least one repetition");
    let seed_of = |r: usize| base_seed.wrapping_add(r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get).min(reps).max(1);
    if workers == 1 {
        return (0..reps).map(|r| f(seed_of(r))).sum::<f64>() / reps as f64;
    }
    let block = reps.div_ceil(workers);
    let per_worker: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .step_by(block)
            .map(|start| {
                let f = &f;
                scope.spawn(move || {
                    (start..(start + block).min(reps)).map(|r| f(seed_of(r))).collect::<Vec<f64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("experiment worker panicked")).collect()
    });
    per_worker.iter().flatten().sum::<f64>() / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_over_reps_averages() {
        // Seeds differ, so feed back a deterministic function of the seed.
        let v = mean_over_reps(4, 0, |seed| (seed % 7) as f64);
        let expected: f64 =
            (0..4u64).map(|r| (r.wrapping_mul(0x9e37_79b9_7f4a_7c15) % 7) as f64).sum::<f64>()
                / 4.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn grids_match_paper() {
        assert_eq!(EPSILONS.len(), 6);
        assert_eq!(BETAS.len(), 8);
        assert_eq!(THETAS.len(), 8);
    }
}
