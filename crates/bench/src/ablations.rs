//! Ablation task runners — design-choice experiments beyond the paper's
//! figures (DESIGN.md §"Ablations"):
//!
//! * **Consistency** (`abl01`): the §3 footnote-1 cross-marginal
//!   reconciliation, on vs off.
//! * **Sample size** (`abl02`): accuracy of `Q_α` answers as the synthetic
//!   sample grows, against answering *exactly* from the model (§7 inference)
//!   — quantifies how much of PrivBayes' error is sampling error.
//! * **Noise mechanism** (`abl03`): Laplace vs geometric noise on released
//!   marginals.
//! * **Multi-table** (`abl04`): relational synthesis error as the fan-out
//!   cap grows (the concluding-remarks extension).

use privbayes::inference::{model_marginal, DEFAULT_CELL_CAP};
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes_baselines::{geometric_marginals, laplace_marginals};
use privbayes_data::encoding::EncodingKind;
use privbayes_data::Dataset;
use privbayes_marginals::metrics::average_workload_tvd_tables;
use privbayes_marginals::{
    average_workload_tvd, total_variation, AlphaWayWorkload, Axis, ContingencyTable, CountEngine,
};
use privbayes_relational::{
    clinic_benchmark, RelationalDataset, RelationalOptions, RelationalPrivBayes,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tasks::MAX_DEGREE;

/// Paper-default options restricted to the non-bitwise encodings these
/// ablations need (the model must live over the original schema).
fn general_options(data: &Dataset, epsilon: f64) -> PrivBayesOptions {
    let encoding =
        if data.schema().all_binary() { EncodingKind::Vanilla } else { EncodingKind::Hierarchical };
    let mut o = PrivBayesOptions::new(epsilon).with_encoding(encoding);
    o.max_degree = MAX_DEGREE;
    o
}

/// `Q_α` error of PrivBayes with `rounds` of cross-marginal consistency.
#[must_use]
pub fn consistency_count_error(
    data: &Dataset,
    alpha: usize,
    epsilon: f64,
    rounds: usize,
    seed: u64,
) -> f64 {
    let options = general_options(data, epsilon).with_consistency_rounds(rounds);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options).synthesize(data, &mut rng).expect("synthesis");
    average_workload_tvd(data, &result.synthetic, alpha)
}

/// `Q_α` error when the synthetic sample has `rows_factor · n` rows.
#[must_use]
pub fn sample_size_count_error(
    data: &Dataset,
    alpha: usize,
    epsilon: f64,
    rows_factor: f64,
    seed: u64,
) -> f64 {
    let mut options = general_options(data, epsilon);
    let rows = ((data.n() as f64 * rows_factor) as usize).max(1);
    options.synthetic_rows = Some(rows);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options).synthesize(data, &mut rng).expect("synthesis");
    average_workload_tvd(data, &result.synthetic, alpha)
}

/// `Q_α` error when every workload marginal is answered **exactly** from the
/// noisy model (§7 inference) — the `rows → ∞` limit of
/// [`sample_size_count_error`], with zero sampling error.
#[must_use]
pub fn inference_count_error(data: &Dataset, alpha: usize, epsilon: f64, seed: u64) -> f64 {
    let options = general_options(data, epsilon);
    let mut rng = StdRng::seed_from_u64(seed);
    let result = PrivBayes::new(options).synthesize(data, &mut rng).expect("synthesis");
    let workload = AlphaWayWorkload::new(data.d(), alpha);
    let tables: Vec<ContingencyTable> = workload
        .subsets()
        .iter()
        .map(|subset| {
            model_marginal(&result.model, data.schema(), subset, DEFAULT_CELL_CAP)
                .expect("inference within cell cap")
        })
        .collect();
    average_workload_tvd_tables(data, &tables, &workload)
}

/// `Q_α` error of direct marginal release under the chosen noise mechanism.
#[must_use]
pub fn noise_mechanism_error(
    data: &Dataset,
    alpha: usize,
    epsilon: f64,
    geometric: bool,
    seed: u64,
) -> f64 {
    let workload = AlphaWayWorkload::new(data.d(), alpha);
    let mut rng = StdRng::seed_from_u64(seed);
    let engine = CountEngine::new(data);
    let tables = if geometric {
        geometric_marginals(&engine, &workload, epsilon, &mut rng)
    } else {
        laplace_marginals(&engine, &workload, epsilon, &mut rng)
    };
    average_workload_tvd_tables(data, &tables, &workload)
}

/// Accuracy of one relational synthesis run: the TVD of the
/// (first entity attribute × first fact attribute) fact-view joint, plus the
/// TVD of the fan-out histogram.
#[must_use]
pub fn multitable_errors(data: &RelationalDataset, epsilon: f64, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let result = RelationalPrivBayes::new(RelationalOptions::new(epsilon))
        .synthesize(data, &mut rng)
        .expect("relational synthesis");

    let e_arity = data.schema().entity_arity();
    let joint_axes = [Axis::raw(0), Axis::raw(e_arity)];
    let truth_view = data.fact_view();
    let synth_view = result.synthetic.fact_view();
    let truth = CountEngine::new(&truth_view).joint_table(&joint_axes);
    let synth = CountEngine::new(&synth_view).joint_table(&joint_axes);
    let joint_tvd = total_variation(truth.values(), synth.values());

    let hist = |d: &RelationalDataset| {
        let mut h = vec![0f64; data.schema().max_fanout() + 1];
        for f in d.fanouts() {
            h[f] += 1.0;
        }
        let n = d.n_entities() as f64;
        h.iter_mut().for_each(|x| *x /= n);
        h
    };
    let fanout_tvd = total_variation(&hist(data), &hist(&result.synthetic));
    (joint_tvd, fanout_tvd)
}

/// The clinic workload used by `abl04`, sized by the harness scale.
#[must_use]
pub fn clinic_workload(n_entities: usize, fanout: usize, seed: u64) -> RelationalDataset {
    clinic_benchmark(n_entities, fanout, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_datasets::adult::adult_sized;

    #[test]
    fn consistency_error_is_bounded_both_ways() {
        let ds = adult_sized(1, 400);
        for rounds in [0, 2] {
            let e = consistency_count_error(&ds.data, 2, 0.8, rounds, 3);
            assert!((0.0..=1.0).contains(&e), "rounds {rounds}: {e}");
        }
    }

    #[test]
    fn inference_beats_or_matches_tiny_samples() {
        // Sampling n/20 rows adds heavy sampling error that exact inference
        // does not have, at identical privacy cost. Average over seeds.
        let ds = adult_sized(2, 600);
        let reps = 3;
        let mut tiny = 0.0;
        let mut exact = 0.0;
        for s in 0..reps {
            tiny += sample_size_count_error(&ds.data, 2, 1.6, 0.05, 40 + s);
            exact += inference_count_error(&ds.data, 2, 1.6, 40 + s);
        }
        assert!(exact <= tiny, "exact answers must not lose to a 5% sample: {exact} vs {tiny}");
    }

    #[test]
    fn noise_mechanisms_are_comparable() {
        let ds = adult_sized(3, 500);
        let lap = noise_mechanism_error(&ds.data, 2, 0.4, false, 7);
        let geo = noise_mechanism_error(&ds.data, 2, 0.4, true, 7);
        assert!((0.0..=1.0).contains(&lap));
        assert!((0.0..=1.0).contains(&geo));
    }

    #[test]
    fn multitable_errors_are_bounded() {
        let data = clinic_workload(600, 3, 11);
        let (joint, fanout) = multitable_errors(&data, 2.0, 13);
        assert!((0.0..=1.0).contains(&joint), "joint {joint}");
        assert!((0.0..=1.0).contains(&fanout), "fanout {fanout}");
    }
}
