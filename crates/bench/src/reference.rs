//! Reference (pre-engine) implementations of the two hot paths, kept as the
//! baseline for the `perf` binary and as the oracle for the equivalence test
//! tier.
//!
//! These reproduce, through public APIs only, the exact semantics the suite
//! had before the shared `CountEngine` and the compiled sampler: one fresh
//! contingency-table scan per candidate (with the bit-packed popcount path
//! for all-binary data), sequential scoring, and tuple-at-a-time ancestral
//! sampling via a linear scan per draw. Given the same seed they must select
//! identical networks and — for the samplers' *statistical* behaviour, not
//! the byte stream — equivalent synthetic data.

use privbayes::conditionals::NoisyModel;
use privbayes::greedy::{score_candidate, GreedySettings};
use privbayes::network::{ApPair, BayesianNetwork};
use privbayes::parent_sets::{maximal_parent_sets, maximal_parent_sets_generalized};
use privbayes::theta::tau_for_child;
use privbayes::PrivBayesError;
use privbayes_data::{Dataset, Schema};
use privbayes_dp::exponential::select_with_scale;
use privbayes_dp::stats::sample_discrete;
use privbayes_marginals::Axis;
use rand::{Rng, RngExt};

struct Candidate {
    child: usize,
    parents: Vec<Axis>,
}

/// Bit-packed columns of an all-binary dataset (the pre-engine fast path for
/// Algorithm 2 joints: AND + popcount chains plus a Möbius transform).
struct BitColumns {
    cols: Vec<Vec<u64>>,
    n: usize,
}

impl BitColumns {
    fn build(data: &Dataset) -> Self {
        let n = data.n();
        let words = n.div_ceil(64);
        let cols = (0..data.d())
            .map(|a| {
                let mut mask = vec![0u64; words];
                for (row, &v) in data.column(a).iter().enumerate() {
                    if v == 1 {
                        mask[row / 64] |= 1 << (row % 64);
                    }
                }
                mask
            })
            .collect();
        Self { cols, n }
    }

    fn joint(
        &self,
        attrs: &[usize],
        scratch: &mut Vec<Vec<u64>>,
        counts: &mut Vec<i64>,
    ) -> Vec<f64> {
        let m = attrs.len();
        assert!(m <= 16, "bit-path joints limited to 16 attributes");
        let cells = 1usize << m;
        scratch.resize(cells, Vec::new());
        counts.clear();
        counts.resize(cells, 0);

        counts[0] = self.n as i64;
        for s in 1..cells {
            let low = s.trailing_zeros() as usize;
            let rest = s & (s - 1);
            let col = &self.cols[attrs[m - 1 - low]];
            let (count, vec) = if rest == 0 {
                (col.iter().map(|w| i64::from(w.count_ones())).sum(), col.clone())
            } else {
                let prev = std::mem::take(&mut scratch[rest]);
                let mut out = vec![0u64; col.len()];
                let mut c = 0i64;
                for ((o, &a), &b) in out.iter_mut().zip(&prev).zip(col) {
                    *o = a & b;
                    c += i64::from(o.count_ones());
                }
                scratch[rest] = prev;
                (c, out)
            };
            counts[s] = count;
            scratch[s] = vec;
        }
        for p in 0..m {
            let bit = 1usize << p;
            for s in 0..cells {
                if s & bit == 0 {
                    counts[s] -= counts[s | bit];
                }
            }
        }
        let scale = 1.0 / self.n as f64;
        counts.iter().map(|&c| c as f64 * scale).collect()
    }
}

fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        let needed = k - cur.len();
        for i in start..=items.len().saturating_sub(needed) {
            cur.push(items[i]);
            rec(items, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    rec(items, k, 0, &mut cur, &mut out);
    out
}

fn select<R: Rng + ?Sized>(
    scores: &[f64],
    settings: &GreedySettings,
    d: usize,
    n: usize,
    all_binary: bool,
    rng: &mut R,
) -> Result<usize, PrivBayesError> {
    match settings.epsilon1 {
        Some(eps1) => {
            let sensitivity = settings.score.sensitivity(n, all_binary);
            let delta = (d as f64 - 1.0) * sensitivity / eps1;
            Ok(select_with_scale(scores, delta, rng)?)
        }
        None => {
            let (mut best, mut best_score) = (0usize, f64::NEG_INFINITY);
            for (i, &s) in scores.iter().enumerate() {
                if s > best_score {
                    best = i;
                    best_score = s;
                }
            }
            Ok(best)
        }
    }
}

/// Pre-engine Algorithm 2: per-candidate joints from the popcount path
/// (all-binary data) or a fresh row scan, scored sequentially.
///
/// # Errors
/// As `privbayes::greedy::greedy_bayes_fixed_k`.
pub fn reference_greedy_fixed_k<R: Rng + ?Sized>(
    data: &Dataset,
    k: usize,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    let d = data.d();
    if d < 2 {
        return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
    }
    let k = k.min(settings.max_degree).min(d - 1);
    let n = data.n();
    let all_binary = data.schema().all_binary();

    let first = rng.random_range(0..d);
    let mut pairs = vec![ApPair::new(first, vec![])];
    let mut in_v = vec![false; d];
    in_v[first] = true;
    let mut v = vec![first];

    let bit_cols = all_binary.then(|| BitColumns::build(data));
    let mut scratch: Vec<Vec<u64>> = Vec::new();
    let mut count_buf: Vec<i64> = Vec::new();
    let mut attr_buf: Vec<usize> = Vec::new();

    for _ in 2..=d {
        let mut candidates = Vec::new();
        let mut scores = Vec::new();
        let subset_size = k.min(v.len());
        let parent_sets = combinations(&v, subset_size);
        for child in (0..d).filter(|&x| !in_v[x]) {
            for parents in &parent_sets {
                let score = match &bit_cols {
                    Some(bits) => {
                        attr_buf.clear();
                        attr_buf.extend_from_slice(parents);
                        attr_buf.push(child);
                        let joint = bits.joint(&attr_buf, &mut scratch, &mut count_buf);
                        settings.score.compute(&joint, 2, n)?
                    }
                    None => {
                        let axes: Vec<Axis> = parents.iter().copied().map(Axis::raw).collect();
                        score_candidate(data, child, &axes, settings.score)?
                    }
                };
                scores.push(score);
                candidates.push(Candidate {
                    child,
                    parents: parents.iter().copied().map(Axis::raw).collect(),
                });
            }
        }
        let chosen = select(&scores, settings, d, n, all_binary, rng)?;
        let c = candidates.swap_remove(chosen);
        in_v[c.child] = true;
        v.push(c.child);
        pairs.push(ApPair::generalized(c.child, c.parents));
    }
    BayesianNetwork::new(pairs, data.schema())
}

/// Pre-engine Algorithm 4: one fresh contingency-table scan per candidate,
/// scored sequentially.
///
/// # Errors
/// As `privbayes::greedy::greedy_bayes_adaptive`.
pub fn reference_greedy_adaptive<R: Rng + ?Sized>(
    data: &Dataset,
    theta: f64,
    epsilon2: f64,
    use_taxonomy: bool,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    let d = data.d();
    if d < 2 {
        return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
    }
    let n = data.n();
    let schema = data.schema();
    let all_binary = schema.all_binary();
    let domain_sizes = schema.domain_sizes();
    let level_sizes: Vec<Vec<usize>> = schema
        .attributes()
        .iter()
        .map(|a| match (use_taxonomy, a.taxonomy()) {
            (true, Some(t)) => (0..t.height()).map(|l| t.level_size(l)).collect(),
            _ => vec![a.domain_size()],
        })
        .collect();

    let first = rng.random_range(0..d);
    let mut pairs = vec![ApPair::new(first, vec![])];
    let mut in_v = vec![false; d];
    in_v[first] = true;
    let mut v = vec![first];

    for _ in 2..=d {
        let mut candidates = Vec::new();
        let mut scores = Vec::new();
        for child in (0..d).filter(|&x| !in_v[x]) {
            let tau = tau_for_child(n, d, epsilon2, theta, domain_sizes[child]);
            let tops: Vec<Vec<Axis>> = if use_taxonomy {
                maximal_parent_sets_generalized(&v, &level_sizes, tau, settings.max_degree)
            } else {
                maximal_parent_sets(&v, &domain_sizes, tau, settings.max_degree)
                    .into_iter()
                    .map(|s| s.into_iter().map(Axis::raw).collect())
                    .collect()
            };
            if tops.is_empty() {
                scores.push(score_candidate(data, child, &[], settings.score)?);
                candidates.push(Candidate { child, parents: Vec::new() });
            } else {
                for parents in tops {
                    scores.push(score_candidate(data, child, &parents, settings.score)?);
                    candidates.push(Candidate { child, parents });
                }
            }
        }
        let chosen = select(&scores, settings, d, n, all_binary, rng)?;
        let c = candidates.swap_remove(chosen);
        in_v[c.child] = true;
        v.push(c.child);
        pairs.push(ApPair::generalized(c.child, c.parents));
    }
    BayesianNetwork::new(pairs, data.schema())
}

/// Pre-engine ancestral sampling: tuple at a time, one linear weight scan per
/// draw (`sample_discrete`), no compilation, no chunking.
///
/// # Errors
/// As `privbayes::sampler::sample_synthetic`.
pub fn reference_sample_synthetic<R: Rng + ?Sized>(
    model: &NoisyModel,
    schema: &Schema,
    rows: usize,
    rng: &mut R,
) -> Result<Dataset, PrivBayesError> {
    let d = schema.len();
    if model.conditionals.len() != d {
        return Err(PrivBayesError::InvalidNetwork(format!(
            "model covers {} attributes, schema has {d}",
            model.conditionals.len()
        )));
    }

    let mut columns: Vec<Vec<u32>> = vec![vec![0u32; rows]; d];
    let mut tuple = vec![0u32; d];
    let mut parent_codes: Vec<usize> = Vec::with_capacity(8);

    #[allow(clippy::needless_range_loop)] // `row` indexes every column
    for row in 0..rows {
        for cond in &model.conditionals {
            parent_codes.clear();
            for axis in &cond.parents {
                let raw = tuple[axis.attr];
                let code = if axis.level == 0 {
                    raw
                } else {
                    schema
                        .attribute(axis.attr)
                        .taxonomy()
                        .expect("validated by BayesianNetwork::new")
                        .generalize(raw, axis.level)
                };
                parent_codes.push(code as usize);
            }
            let slice = cond.child_distribution(cond.parent_index(&parent_codes));
            let value = sample_discrete(slice, rng) as u32;
            tuple[cond.child] = value;
            columns[cond.child][row] = value;
        }
    }
    Ok(Dataset::from_columns(schema.clone(), columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes::ScoreKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_fixed_k_learns_a_valid_network() {
        let data = privbayes_datasets::nltcs::nltcs_sized(1, 500).data;
        let mut rng = StdRng::seed_from_u64(2);
        let settings = GreedySettings::private(ScoreKind::F, 1.0);
        let net = reference_greedy_fixed_k(&data, 2, &settings, &mut rng).unwrap();
        assert_eq!(net.len(), data.d());
        assert!(net.degree() <= 2);
    }
}
