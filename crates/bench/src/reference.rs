//! Reference (pre-engine) implementations of the hot paths, kept as the
//! baseline for the `perf` / `methods` binaries and as the oracle for the
//! equivalence test tiers.
//!
//! These reproduce, through public APIs only, the exact semantics the suite
//! had before the shared `CountEngine` and the compiled sampler: one fresh
//! contingency-table scan per candidate / marginal (with the bit-packed
//! popcount path for all-binary data), sequential scoring, and
//! tuple-at-a-time ancestral sampling via a linear scan per draw. Given the
//! same seed they must select identical networks — and the marginal
//! baselines must produce **bit-identical** tables — as the engine-backed
//! implementations, which `tests/engine_equivalence.rs` and
//! `tests/synthesizer_equivalence.rs` assert.
//!
//! This module is the one sanctioned home of
//! [`ContingencyTable::from_dataset`] row scans outside the `marginals`
//! crate: the references exist precisely to measure and pin the pre-engine
//! behaviour.

use privbayes::conditionals::NoisyModel;
use privbayes::greedy::GreedySettings;
use privbayes::network::{ApPair, BayesianNetwork};
use privbayes::parent_sets::{maximal_parent_sets, maximal_parent_sets_generalized};
use privbayes::theta::tau_for_child;
use privbayes::{PrivBayesError, ScoreKind};
use privbayes_baselines::MwemOptions;
use privbayes_data::{Dataset, Schema};
use privbayes_dp::exponential::{exponential_mechanism, select_with_scale};
use privbayes_dp::geometric::sample_two_sided_geometric;
use privbayes_dp::laplace::sample_laplace;
use privbayes_dp::stats::sample_discrete;
use privbayes_marginals::{clamp_and_normalize, AlphaWayWorkload, Axis, ContingencyTable};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Pre-engine single-candidate scorer: one fresh row scan per call.
///
/// # Errors
/// Propagates score errors (e.g. `F` on a non-binary child).
fn scan_score(
    data: &Dataset,
    child: usize,
    parents: &[Axis],
    score: ScoreKind,
) -> Result<f64, PrivBayesError> {
    let mut axes: Vec<Axis> = parents.to_vec();
    axes.push(Axis::raw(child));
    let table = ContingencyTable::from_dataset(data, &axes);
    let child_dim = data.schema().attribute(child).domain_size();
    score.compute(table.values(), child_dim, data.n())
}

struct Candidate {
    child: usize,
    parents: Vec<Axis>,
}

/// Bit-packed columns of an all-binary dataset (the pre-engine fast path for
/// Algorithm 2 joints: AND + popcount chains plus a Möbius transform).
struct BitColumns {
    cols: Vec<Vec<u64>>,
    n: usize,
}

impl BitColumns {
    fn build(data: &Dataset) -> Self {
        let n = data.n();
        let words = n.div_ceil(64);
        let cols = (0..data.d())
            .map(|a| {
                let mut mask = vec![0u64; words];
                for (row, &v) in data.column(a).iter().enumerate() {
                    if v == 1 {
                        mask[row / 64] |= 1 << (row % 64);
                    }
                }
                mask
            })
            .collect();
        Self { cols, n }
    }

    fn joint(
        &self,
        attrs: &[usize],
        scratch: &mut Vec<Vec<u64>>,
        counts: &mut Vec<i64>,
    ) -> Vec<f64> {
        let m = attrs.len();
        assert!(m <= 16, "bit-path joints limited to 16 attributes");
        let cells = 1usize << m;
        scratch.resize(cells, Vec::new());
        counts.clear();
        counts.resize(cells, 0);

        counts[0] = self.n as i64;
        for s in 1..cells {
            let low = s.trailing_zeros() as usize;
            let rest = s & (s - 1);
            let col = &self.cols[attrs[m - 1 - low]];
            let (count, vec) = if rest == 0 {
                (col.iter().map(|w| i64::from(w.count_ones())).sum(), col.clone())
            } else {
                let prev = std::mem::take(&mut scratch[rest]);
                let mut out = vec![0u64; col.len()];
                let mut c = 0i64;
                for ((o, &a), &b) in out.iter_mut().zip(&prev).zip(col) {
                    *o = a & b;
                    c += i64::from(o.count_ones());
                }
                scratch[rest] = prev;
                (c, out)
            };
            counts[s] = count;
            scratch[s] = vec;
        }
        for p in 0..m {
            let bit = 1usize << p;
            for s in 0..cells {
                if s & bit == 0 {
                    counts[s] -= counts[s | bit];
                }
            }
        }
        let scale = 1.0 / self.n as f64;
        counts.iter().map(|&c| c as f64 * scale).collect()
    }
}

fn combinations(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        let needed = k - cur.len();
        for i in start..=items.len().saturating_sub(needed) {
            cur.push(items[i]);
            rec(items, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    rec(items, k, 0, &mut cur, &mut out);
    out
}

fn select<R: Rng + ?Sized>(
    scores: &[f64],
    settings: &GreedySettings,
    d: usize,
    n: usize,
    all_binary: bool,
    rng: &mut R,
) -> Result<usize, PrivBayesError> {
    match settings.epsilon1 {
        Some(eps1) => {
            let sensitivity = settings.score.sensitivity(n, all_binary);
            let delta = (d as f64 - 1.0) * sensitivity / eps1;
            Ok(select_with_scale(scores, delta, rng)?)
        }
        None => {
            let (mut best, mut best_score) = (0usize, f64::NEG_INFINITY);
            for (i, &s) in scores.iter().enumerate() {
                if s > best_score {
                    best = i;
                    best_score = s;
                }
            }
            Ok(best)
        }
    }
}

/// Pre-engine Algorithm 2: per-candidate joints from the popcount path
/// (all-binary data) or a fresh row scan, scored sequentially.
///
/// # Errors
/// As `privbayes::greedy::greedy_bayes_fixed_k`.
pub fn reference_greedy_fixed_k<R: Rng + ?Sized>(
    data: &Dataset,
    k: usize,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    let d = data.d();
    if d < 2 {
        return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
    }
    let k = k.min(settings.max_degree).min(d - 1);
    let n = data.n();
    let all_binary = data.schema().all_binary();

    let first = rng.random_range(0..d);
    let mut pairs = vec![ApPair::new(first, vec![])];
    let mut in_v = vec![false; d];
    in_v[first] = true;
    let mut v = vec![first];

    let bit_cols = all_binary.then(|| BitColumns::build(data));
    let mut scratch: Vec<Vec<u64>> = Vec::new();
    let mut count_buf: Vec<i64> = Vec::new();
    let mut attr_buf: Vec<usize> = Vec::new();

    for _ in 2..=d {
        let mut candidates = Vec::new();
        let mut scores = Vec::new();
        let subset_size = k.min(v.len());
        let parent_sets = combinations(&v, subset_size);
        for child in (0..d).filter(|&x| !in_v[x]) {
            for parents in &parent_sets {
                let score = match &bit_cols {
                    Some(bits) => {
                        attr_buf.clear();
                        attr_buf.extend_from_slice(parents);
                        attr_buf.push(child);
                        let joint = bits.joint(&attr_buf, &mut scratch, &mut count_buf);
                        settings.score.compute(&joint, 2, n)?
                    }
                    None => {
                        let axes: Vec<Axis> = parents.iter().copied().map(Axis::raw).collect();
                        scan_score(data, child, &axes, settings.score)?
                    }
                };
                scores.push(score);
                candidates.push(Candidate {
                    child,
                    parents: parents.iter().copied().map(Axis::raw).collect(),
                });
            }
        }
        let chosen = select(&scores, settings, d, n, all_binary, rng)?;
        let c = candidates.swap_remove(chosen);
        in_v[c.child] = true;
        v.push(c.child);
        pairs.push(ApPair::generalized(c.child, c.parents));
    }
    BayesianNetwork::new(pairs, data.schema())
}

/// Pre-engine Algorithm 4: one fresh contingency-table scan per candidate,
/// scored sequentially.
///
/// # Errors
/// As `privbayes::greedy::greedy_bayes_adaptive`.
pub fn reference_greedy_adaptive<R: Rng + ?Sized>(
    data: &Dataset,
    theta: f64,
    epsilon2: f64,
    use_taxonomy: bool,
    settings: &GreedySettings,
    rng: &mut R,
) -> Result<BayesianNetwork, PrivBayesError> {
    let d = data.d();
    if d < 2 {
        return Err(PrivBayesError::InvalidConfig("need at least two attributes".into()));
    }
    let n = data.n();
    let schema = data.schema();
    let all_binary = schema.all_binary();
    let domain_sizes = schema.domain_sizes();
    let level_sizes: Vec<Vec<usize>> = schema
        .attributes()
        .iter()
        .map(|a| match (use_taxonomy, a.taxonomy()) {
            (true, Some(t)) => (0..t.height()).map(|l| t.level_size(l)).collect(),
            _ => vec![a.domain_size()],
        })
        .collect();

    let first = rng.random_range(0..d);
    let mut pairs = vec![ApPair::new(first, vec![])];
    let mut in_v = vec![false; d];
    in_v[first] = true;
    let mut v = vec![first];

    for _ in 2..=d {
        let mut candidates = Vec::new();
        let mut scores = Vec::new();
        for child in (0..d).filter(|&x| !in_v[x]) {
            let tau = tau_for_child(n, d, epsilon2, theta, domain_sizes[child]);
            let tops: Vec<Vec<Axis>> = if use_taxonomy {
                maximal_parent_sets_generalized(&v, &level_sizes, tau, settings.max_degree)
            } else {
                maximal_parent_sets(&v, &domain_sizes, tau, settings.max_degree)
                    .into_iter()
                    .map(|s| s.into_iter().map(Axis::raw).collect())
                    .collect()
            };
            if tops.is_empty() {
                scores.push(scan_score(data, child, &[], settings.score)?);
                candidates.push(Candidate { child, parents: Vec::new() });
            } else {
                for parents in tops {
                    scores.push(scan_score(data, child, &parents, settings.score)?);
                    candidates.push(Candidate { child, parents });
                }
            }
        }
        let chosen = select(&scores, settings, d, n, all_binary, rng)?;
        let c = candidates.swap_remove(chosen);
        in_v[c.child] = true;
        v.push(c.child);
        pairs.push(ApPair::generalized(c.child, c.parents));
    }
    BayesianNetwork::new(pairs, data.schema())
}

/// Pre-engine ancestral sampling: tuple at a time, one linear weight scan per
/// draw (`sample_discrete`), no compilation, no chunking.
///
/// # Errors
/// As `privbayes::sampler::sample_synthetic`.
pub fn reference_sample_synthetic<R: Rng + ?Sized>(
    model: &NoisyModel,
    schema: &Schema,
    rows: usize,
    rng: &mut R,
) -> Result<Dataset, PrivBayesError> {
    let d = schema.len();
    if model.conditionals.len() != d {
        return Err(PrivBayesError::InvalidNetwork(format!(
            "model covers {} attributes, schema has {d}",
            model.conditionals.len()
        )));
    }

    let mut columns: Vec<Vec<u32>> = vec![vec![0u32; rows]; d];
    let mut tuple = vec![0u32; d];
    let mut parent_codes: Vec<usize> = Vec::with_capacity(8);

    #[allow(clippy::needless_range_loop)] // `row` indexes every column
    for row in 0..rows {
        for cond in &model.conditionals {
            parent_codes.clear();
            for axis in &cond.parents {
                let raw = tuple[axis.attr];
                let code = if axis.level == 0 {
                    raw
                } else {
                    schema
                        .attribute(axis.attr)
                        .taxonomy()
                        .expect("validated by BayesianNetwork::new")
                        .generalize(raw, axis.level)
                };
                parent_codes.push(code as usize);
            }
            let slice = cond.child_distribution(cond.parent_index(&parent_codes));
            let value = sample_discrete(slice, rng) as u32;
            tuple[cond.child] = value;
            columns[cond.child][row] = value;
        }
    }
    Ok(Dataset::from_columns(schema.clone(), columns)?)
}

/// Pre-engine Laplace baseline: one fresh row scan per workload marginal.
/// Must be bit-identical to `privbayes_baselines::laplace_marginals` over a
/// `CountEngine` for the same seed.
#[must_use]
pub fn reference_laplace_marginals<R: Rng + ?Sized>(
    data: &Dataset,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    let scale = 2.0 * workload.len() as f64 / (data.n() as f64 * epsilon);
    workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            let mut table = ContingencyTable::from_dataset(data, &axes);
            for v in table.values_mut() {
                *v += sample_laplace(scale, rng);
            }
            clamp_and_normalize(table.values_mut(), 1.0);
            table
        })
        .collect()
}

/// Pre-engine geometric baseline (count-scale noise per marginal).
#[must_use]
pub fn reference_geometric_marginals<R: Rng + ?Sized>(
    data: &Dataset,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    let n = data.n();
    let alpha = (-epsilon / (2.0 * workload.len() as f64)).exp();
    workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            let mut table = ContingencyTable::from_dataset(data, &axes);
            for v in table.values_mut() {
                let count = (*v * n as f64).round();
                let noisy = count + sample_two_sided_geometric(alpha, rng) as f64;
                *v = noisy / n as f64;
            }
            clamp_and_normalize(table.values_mut(), 1.0);
            table
        })
        .collect()
}

/// Pre-engine Contingency baseline: one full-domain row scan, then noisy
/// projection of every workload marginal.
#[must_use]
pub fn reference_contingency_marginals<R: Rng + ?Sized>(
    data: &Dataset,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    let axes: Vec<Axis> = (0..data.d()).map(Axis::raw).collect();
    let mut full = ContingencyTable::from_dataset(data, &axes);
    let scale = 2.0 / (data.n() as f64 * epsilon);
    for v in full.values_mut() {
        *v += sample_laplace(scale, rng);
    }
    clamp_and_normalize(full.values_mut(), 1.0);
    workload.subsets().iter().map(|subset| full.project(subset)).collect()
}

/// Pre-engine MWEM: exact workload truths via one
/// [`ContingencyTable::from_dataset`] scan per marginal, then the identical
/// multiplicative-weights loop. Consumes the same RNG stream as the
/// engine-backed `mwem_marginals` (truth computation draws no randomness),
/// so the outputs must match bit for bit — the `methods` bench binary
/// asserts exactly that before reporting a speedup.
#[must_use]
pub fn reference_mwem_marginals<R: Rng + ?Sized>(
    data: &Dataset,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    options: MwemOptions,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
    assert!(options.iterations > 0, "need at least one round");
    assert!(data.n() > 0, "empty dataset");
    let dims = data.schema().domain_sizes();
    let cells: usize = dims.iter().product();

    let n = data.n() as f64;
    let strides = {
        let mut s = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * dims[i + 1];
        }
        s
    };
    let cell_of = |idx: usize, subset: &[usize]| -> usize {
        let mut cell = 0usize;
        for &a in subset {
            cell = cell * dims[a] + (idx / strides[a]) % dims[a];
        }
        cell
    };
    let project = |weights: &[f64], subset: &[usize]| -> Vec<f64> {
        let out_cells: usize = subset.iter().map(|&a| dims[a]).product();
        let mut out = vec![0.0f64; out_cells];
        for (idx, &w) in weights.iter().enumerate() {
            out[cell_of(idx, subset)] += w;
        }
        out
    };

    let truths: Vec<Vec<f64>> = workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            ContingencyTable::from_dataset(data, &axes).values().to_vec()
        })
        .collect();

    let mut weights = vec![1.0 / cells as f64; cells];
    let eps_round = epsilon / options.iterations as f64;
    let eps_select = eps_round / 2.0;
    let eps_measure = eps_round / 2.0;

    let mut candidate_pool: Vec<usize> = (0..workload.len()).collect();
    let mut measurements: Vec<(usize, usize, f64)> = Vec::with_capacity(options.iterations);
    for _ in 0..options.iterations {
        let candidates: &[usize] = match options.max_candidates {
            Some(m) if m < candidate_pool.len() => {
                candidate_pool.shuffle(rng);
                &candidate_pool[..m]
            }
            _ => &candidate_pool,
        };
        let mut cell_ids: Vec<(usize, usize)> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        for &q in candidates {
            let approx = project(&weights, &workload.subsets()[q]);
            for (cell, (a, t)) in approx.iter().zip(&truths[q]).enumerate() {
                cell_ids.push((q, cell));
                scores.push((a - t).abs());
            }
        }
        let chosen =
            exponential_mechanism(&scores, 1.0 / n, eps_select, rng).expect("valid scores");
        let (q, cell) = cell_ids[chosen];

        let measured = truths[q][cell] + sample_laplace(1.0 / (n * eps_measure), rng);
        measurements.push((q, cell, measured));

        for _ in 0..options.update_passes.max(1) {
            for &(q, cell, measured) in &measurements {
                let subset = &workload.subsets()[q];
                let approx_cell: f64 = weights
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| cell_of(*idx, subset) == cell)
                    .map(|(_, &w)| w)
                    .sum();
                let factor = ((measured - approx_cell) / 2.0).exp();
                for (idx, w) in weights.iter_mut().enumerate() {
                    if cell_of(idx, subset) == cell {
                        *w *= factor;
                    }
                }
                let total: f64 = weights.iter().sum();
                for w in &mut weights {
                    *w /= total;
                }
            }
        }
    }

    workload
        .subsets()
        .iter()
        .map(|subset| {
            let axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
            let out_dims: Vec<usize> = subset.iter().map(|&a| dims[a]).collect();
            let mut vals = project(&weights, subset);
            clamp_and_normalize(&mut vals, 1.0);
            ContingencyTable::from_parts(axes, out_dims, vals)
        })
        .collect()
}

/// Pre-engine Fourier baseline (Barak et al.): binarise, then one fresh row
/// scan of the binarised table per workload marginal, WHT, shared noisy
/// coefficients, inverse WHT, fold back to the original domains.
///
/// # Panics
/// As `privbayes_baselines::fourier_marginals`.
#[must_use]
pub fn reference_fourier_marginals<R: Rng + ?Sized>(
    data: &Dataset,
    workload: &AlphaWayWorkload,
    epsilon: f64,
    rng: &mut R,
) -> Vec<ContingencyTable> {
    use privbayes_baselines::fourier::walsh_hadamard;
    use privbayes_data::encoding::{binarize, BinarizationMap, EncodingKind};
    use std::collections::{HashMap, HashSet};

    let n = data.n() as f64;
    let (bin_data, map) = binarize(data, EncodingKind::Binary).expect("binarisation");

    let bit_sets: Vec<Vec<usize>> = workload
        .subsets()
        .iter()
        .map(|subset| {
            let mut bits = Vec::new();
            for &attr in subset {
                let ab = &map.per_attr()[attr];
                bits.extend(ab.first_bit_attr..ab.first_bit_attr + ab.bits);
            }
            bits
        })
        .collect();

    let global_key = |local_mask: u64, bits: &[usize]| -> u64 {
        let b = bits.len();
        let mut key = 0u64;
        for (j, &bit_attr) in bits.iter().enumerate() {
            if local_mask >> (b - 1 - j) & 1 == 1 {
                key |= 1 << bit_attr;
            }
        }
        key
    };

    let mut coefficient_count = HashSet::new();
    for bits in &bit_sets {
        for mask in 0u64..(1 << bits.len()) {
            coefficient_count.insert(global_key(mask, bits));
        }
    }
    let scale = 2.0 * coefficient_count.len() as f64 / (n * epsilon);

    let fold_to_original = |subset: &[usize],
                            map: &BinarizationMap,
                            bits: &[usize],
                            bit_values: &[f64]|
     -> ContingencyTable {
        let schema = data.schema();
        let out_axes: Vec<Axis> = subset.iter().map(|&a| Axis::raw(a)).collect();
        let out_dims: Vec<usize> =
            subset.iter().map(|&a| schema.attribute(a).domain_size()).collect();
        let out_cells: usize = out_dims.iter().product();
        let mut out = vec![0.0f64; out_cells];
        let b = bits.len();
        for (cell, &v) in bit_values.iter().enumerate() {
            let mut out_idx = 0usize;
            let mut offset = 0usize;
            for (&attr, &dim) in subset.iter().zip(&out_dims) {
                let ab = &map.per_attr()[attr];
                let mut code = 0u32;
                for j in 0..ab.bits {
                    let pos = b - 1 - (offset + j);
                    code = (code << 1) | ((cell >> pos) & 1) as u32;
                }
                if map.is_gray() {
                    code = privbayes_data::encoding::from_gray(code);
                }
                let code = code.min(dim as u32 - 1);
                out_idx = out_idx * dim + code as usize;
                offset += ab.bits;
            }
            out[out_idx] += v;
        }
        ContingencyTable::from_parts(out_axes, out_dims, out)
    };

    let mut released: HashMap<u64, f64> = HashMap::with_capacity(coefficient_count.len());
    workload
        .subsets()
        .iter()
        .zip(&bit_sets)
        .map(|(subset, bits)| {
            let axes: Vec<Axis> = bits.iter().map(|&i| Axis::raw(i)).collect();
            let table = ContingencyTable::from_dataset(&bin_data, &axes);
            let mut coeffs = table.values().to_vec();
            walsh_hadamard(&mut coeffs);
            for (local_mask, c) in coeffs.iter_mut().enumerate() {
                let key = global_key(local_mask as u64, bits);
                let noisy = *released.entry(key).or_insert_with(|| *c + sample_laplace(scale, rng));
                *c = noisy;
            }
            walsh_hadamard(&mut coeffs);
            let cells = coeffs.len() as f64;
            for v in &mut coeffs {
                *v /= cells;
            }
            clamp_and_normalize(&mut coeffs, 1.0);
            fold_to_original(subset, &map, bits, &coeffs)
        })
        .collect()
}

/// Independent θ-projection oracle for the query API: computes the exact
/// model marginal `Pr*_N[attrs]` by brute-force enumeration of the query's
/// ancestral closure. It follows the documented operation order of
/// `privbayes::inference::theta_projection` — closure pruning, row-major
/// enumeration over the closure attributes ascending (last fastest),
/// per-configuration probability product in network (conditional-list)
/// order, accumulation in enumeration order — with intentionally different
/// machinery (fixed-point closure sweep, flat-index decoding), so agreement
/// is **bit-for-bit**: `tests/query_api.rs` asserts the served `/v1/query`
/// values equal this oracle's exactly.
///
/// # Panics
/// Panics on an empty/duplicated/out-of-range query or a model that does
/// not cover the schema (the serving path rejects these with typed errors;
/// the oracle is only ever called on valid queries).
#[must_use]
pub fn reference_theta_projection(
    model: &NoisyModel,
    schema: &Schema,
    attrs: &[usize],
) -> ContingencyTable {
    let d = schema.len();
    assert_eq!(model.conditionals.len(), d, "model must cover the schema");
    assert!(!attrs.is_empty(), "empty query");
    for (i, &a) in attrs.iter().enumerate() {
        assert!(a < d, "attribute {a} out of range");
        assert!(!attrs[..i].contains(&a), "attribute {a} repeated");
    }

    // Ancestral closure by fixed-point iteration (no ordering assumption on
    // the conditional list, unlike the serving path's single reverse sweep).
    let mut needed = vec![false; d];
    for &a in attrs {
        needed[a] = true;
    }
    loop {
        let mut changed = false;
        for cond in &model.conditionals {
            if needed[cond.child] {
                for axis in &cond.parents {
                    if !needed[axis.attr] {
                        needed[axis.attr] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let closure: Vec<usize> = (0..d).filter(|&a| needed[a]).collect();
    let closure_dims: Vec<usize> =
        closure.iter().map(|&a| schema.attribute(a).domain_size()).collect();
    let cells: usize = closure_dims.iter().product();

    let out_dims: Vec<usize> = attrs.iter().map(|&a| schema.attribute(a).domain_size()).collect();
    let mut values = vec![0.0f64; out_dims.iter().product()];
    let mut tuple = vec![0u32; d];
    let mut codes: Vec<usize> = Vec::new();
    for flat in 0..cells {
        // Decode the flat index into the closure configuration (row-major,
        // last closure attribute fastest — the specified enumeration order).
        let mut rest = flat;
        for (&a, &dim) in closure.iter().zip(&closure_dims).rev() {
            tuple[a] = (rest % dim) as u32;
            rest /= dim;
        }
        let mut p = 1.0f64;
        for cond in &model.conditionals {
            if !needed[cond.child] {
                continue;
            }
            codes.clear();
            for axis in &cond.parents {
                let raw = tuple[axis.attr];
                let code = if axis.level == 0 {
                    raw as usize
                } else {
                    schema
                        .attribute(axis.attr)
                        .taxonomy()
                        .expect("taxonomy validated at model construction")
                        .generalize(raw, axis.level) as usize
                };
                codes.push(code);
            }
            p *= cond.child_distribution(cond.parent_index(&codes))[tuple[cond.child] as usize];
        }
        let mut out_idx = 0usize;
        for (&a, &dim) in attrs.iter().zip(&out_dims) {
            out_idx = out_idx * dim + tuple[a] as usize;
        }
        values[out_idx] += p;
    }
    let axes: Vec<Axis> = attrs.iter().map(|&a| Axis::raw(a)).collect();
    ContingencyTable::from_parts(axes, out_dims, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes::ScoreKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_fixed_k_learns_a_valid_network() {
        let data = privbayes_datasets::nltcs::nltcs_sized(1, 500).data;
        let mut rng = StdRng::seed_from_u64(2);
        let settings = GreedySettings::private(ScoreKind::F, 1.0);
        let net = reference_greedy_fixed_k(&data, 2, &settings, &mut rng).unwrap();
        assert_eq!(net.len(), data.d());
        assert!(net.degree() <= 2);
    }

    #[test]
    fn theta_projection_oracle_is_bit_identical_to_the_serving_path() {
        use privbayes::conditionals::noisy_conditionals_general;
        use privbayes::inference::{theta_projection, DEFAULT_CELL_CAP};

        let data = privbayes_datasets::nltcs::nltcs_sized(3, 800).data;
        let net = reference_greedy_fixed_k(
            &data,
            2,
            &GreedySettings::private(ScoreKind::MutualInformation, 0.5),
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let model =
            noisy_conditionals_general(&data, &net, Some(0.5), &mut StdRng::seed_from_u64(8))
                .unwrap();
        for attrs in [vec![0usize], vec![3, 1], vec![2, 5, 0]] {
            let served = theta_projection(&model, data.schema(), &attrs, DEFAULT_CELL_CAP).unwrap();
            let oracle = reference_theta_projection(&model, data.schema(), &attrs);
            assert_eq!(served.dims(), oracle.dims(), "attrs {attrs:?}");
            for (i, (a, b)) in served.values().iter().zip(oracle.values()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "attrs {attrs:?}, cell {i}: {a} vs {b}");
            }
        }
    }
}
