//! Criterion benches for GreedyBayes — the paper's dominant cost
//! (`d·C(d+1,k+1)` candidate joints, §4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privbayes::greedy::{greedy_bayes_adaptive, greedy_bayes_fixed_k, GreedySettings};
use privbayes::score::ScoreKind;
use privbayes_datasets::{br2000, nltcs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fixed_k(c: &mut Criterion) {
    let data = nltcs::nltcs_sized(1, 4000).data;
    let mut group = c.benchmark_group("greedy_fixed_k_nltcs4000");
    group.sample_size(10);
    for k in [1usize, 2, 3] {
        for score in [ScoreKind::MutualInformation, ScoreKind::F, ScoreKind::R] {
            let id = BenchmarkId::new(format!("{}-k", score.name()), k);
            group.bench_with_input(id, &k, |b, &k| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let settings = GreedySettings::private(score, 0.3);
                    greedy_bayes_fixed_k(black_box(&data), k, &settings, &mut rng).unwrap()
                });
            });
        }
    }
    group.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let data = br2000::br2000_sized(2, 4000).data;
    let mut group = c.benchmark_group("greedy_adaptive_br2000_4000");
    group.sample_size(10);
    for (label, use_taxonomy) in [("vanilla", false), ("hierarchical", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let settings = GreedySettings::private(ScoreKind::R, 0.3).with_max_degree(4);
                greedy_bayes_adaptive(black_box(&data), 4.0, 0.7, use_taxonomy, &settings, &mut rng)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_k, bench_adaptive);
criterion_main!(benches);
