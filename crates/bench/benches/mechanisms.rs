//! Criterion benches for the DP primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privbayes_dp::exponential::select_with_scale;
use privbayes_dp::laplace::sample_laplace;
use privbayes_dp::stats::{sample_dirichlet_symmetric, sample_gamma};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn bench_laplace(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplace_noise");
    for cells in [64usize, 4096, 65_536] {
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, &cells| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut v = vec![0.0f64; cells];
            b.iter(|| {
                for x in &mut v {
                    *x = sample_laplace(black_box(0.01), &mut rng);
                }
            });
        });
    }
    group.finish();
}

fn bench_exponential_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("exponential_mechanism");
    for candidates in [100usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let scores: Vec<f64> = (0..candidates).map(|_| rng.random::<f64>()).collect();
        group.throughput(Throughput::Elements(candidates as u64));
        group.bench_with_input(BenchmarkId::from_parameter(candidates), &scores, |b, s| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| select_with_scale(black_box(s), 0.05, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    c.bench_function("gamma_shape_4", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| sample_gamma(black_box(4.0), 1.0, &mut rng));
    });
    c.bench_function("dirichlet_dim_16", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| sample_dirichlet_symmetric(black_box(16), 0.5, &mut rng));
    });
}

criterion_group!(benches, bench_laplace, bench_exponential_mechanism, bench_samplers);
criterion_main!(benches);
