//! Criterion benches for the contingency-table engine and the baselines'
//! inner loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privbayes_baselines::fourier::walsh_hadamard;
use privbayes_datasets::nltcs;
use privbayes_marginals::{Axis, ContingencyTable};
use std::hint::black_box;

fn bench_joint_materialisation(c: &mut Criterion) {
    let data = nltcs::nltcs_sized(1, 20_000).data;
    let mut group = c.benchmark_group("joint_materialisation_n20000");
    for k in [1usize, 3, 5] {
        let axes: Vec<Axis> = (0..=k).map(Axis::raw).collect();
        group.throughput(Throughput::Elements(data.n() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &axes, |b, axes| {
            b.iter(|| ContingencyTable::from_dataset(black_box(&data), axes));
        });
    }
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let data = nltcs::nltcs_sized(2, 5_000).data;
    let axes: Vec<Axis> = (0..12).map(Axis::raw).collect();
    let table = ContingencyTable::from_dataset(&data, &axes);
    c.bench_function("project_12way_to_3way", |b| {
        b.iter(|| black_box(&table).project(&[0, 5, 11]));
    });
}

fn bench_wht(c: &mut Criterion) {
    let mut group = c.benchmark_group("walsh_hadamard");
    for bits in [8u32, 16] {
        let cells = 1usize << bits;
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            let mut v: Vec<f64> = (0..cells).map(|i| i as f64).collect();
            b.iter(|| walsh_hadamard(black_box(&mut v)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joint_materialisation, bench_projection, bench_wht);
criterion_main!(benches);
