//! Criterion benches for distribution learning + ancestral sampling — the
//! phases that let PrivBayes avoid materialising the full domain (§3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privbayes::conditionals::noisy_conditionals_general;
use privbayes::greedy::{greedy_bayes_fixed_k, GreedySettings};
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes::sampler::sample_synthetic;
use privbayes::score::ScoreKind;
use privbayes_datasets::nltcs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_conditionals(c: &mut Criterion) {
    let data = nltcs::nltcs_sized(1, 8000).data;
    let mut rng = StdRng::seed_from_u64(1);
    let net = greedy_bayes_fixed_k(&data, 2, &GreedySettings::private(ScoreKind::F, 0.3), &mut rng)
        .unwrap();
    c.bench_function("noisy_conditionals_nltcs8000_k2", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            noisy_conditionals_general(black_box(&data), &net, Some(0.7), &mut rng).unwrap()
        });
    });
}

fn bench_sampling_throughput(c: &mut Criterion) {
    let data = nltcs::nltcs_sized(3, 8000).data;
    let mut rng = StdRng::seed_from_u64(3);
    let net = greedy_bayes_fixed_k(&data, 2, &GreedySettings::private(ScoreKind::F, 0.3), &mut rng)
        .unwrap();
    let model = noisy_conditionals_general(&data, &net, Some(0.7), &mut rng).unwrap();
    let mut group = c.benchmark_group("ancestral_sampling");
    for rows in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(4);
                sample_synthetic(black_box(&model), data.schema(), rows, &mut rng).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let data = nltcs::nltcs_sized(5, 4000).data;
    let mut group = c.benchmark_group("pipeline_end_to_end_nltcs4000");
    group.sample_size(10);
    for eps in [0.1f64, 1.6] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                PrivBayes::new(PrivBayesOptions::new(eps))
                    .synthesize(black_box(&data), &mut rng)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conditionals, bench_sampling_throughput, bench_end_to_end);
criterion_main!(benches);
