//! Criterion micro-benchmarks for §7 model inference vs ancestral sampling:
//! how expensive is answering a marginal exactly from the model, compared to
//! drawing the synthetic sample it would replace?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privbayes::inference::{model_marginal, DEFAULT_CELL_CAP};
use privbayes::pipeline::{PrivBayes, PrivBayesOptions};
use privbayes::sampler::sample_synthetic;
use privbayes_data::encoding::EncodingKind;
use privbayes_datasets::adult::adult_sized;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let data = adult_sized(1, 5_000).data;
    let mut rng = StdRng::seed_from_u64(2);
    let options = PrivBayesOptions::new(1.0).with_encoding(EncodingKind::Vanilla);
    let result = PrivBayes::new(options).synthesize(&data, &mut rng).expect("synthesis");
    let model = result.model;
    let schema = data.schema();

    let mut group = c.benchmark_group("model_inference");
    for width in [1usize, 2, 3] {
        let attrs: Vec<usize> = (0..width).collect();
        group.bench_with_input(BenchmarkId::new("exact_marginal", width), &attrs, |b, attrs| {
            b.iter(|| model_marginal(black_box(&model), schema, attrs, DEFAULT_CELL_CAP).unwrap());
        });
    }
    group.bench_function("sample_1000_rows", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            sample_synthetic(black_box(&model), schema, 1000, &mut rng).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
