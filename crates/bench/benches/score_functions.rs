//! Criterion benches for the three score functions — the empirical
//! counterpart of Table 4's time-complexity column: `I` and `R` are
//! O(cells); `F`'s dynamic program scales with n·2ᵏ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privbayes::score::{f_score, mutual_information, r_score};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// A random probability joint over 2×2ᵏ cells on the 1/n grid.
fn random_joint(k: u32, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cells = 2usize << k;
    let mut counts = vec![0u64; cells];
    for _ in 0..n {
        counts[rng.random_range(0..cells)] += 1;
    }
    counts.into_iter().map(|c| c as f64 / n as f64).collect()
}

fn bench_scores(c: &mut Criterion) {
    let n = 21_574; // NLTCS cardinality
    let mut group = c.benchmark_group("score_functions");
    for k in [1u32, 2, 4, 6] {
        let joint = random_joint(k, n, u64::from(k));
        group.bench_with_input(BenchmarkId::new("I", k), &joint, |b, j| {
            b.iter(|| mutual_information(black_box(j), 2));
        });
        group.bench_with_input(BenchmarkId::new("R", k), &joint, |b, j| {
            b.iter(|| r_score(black_box(j), 2));
        });
        group.bench_with_input(BenchmarkId::new("F", k), &joint, |b, j| {
            b.iter(|| f_score(black_box(j), 2, n).unwrap());
        });
    }
    group.finish();
}

fn bench_f_scaling_in_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("f_score_vs_n");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 50_000] {
        let joint = random_joint(4, n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &joint, |b, j| {
            b.iter(|| f_score(black_box(j), 2, n).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scores, bench_f_scaling_in_n);
criterion_main!(benches);
