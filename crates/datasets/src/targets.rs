//! Benchmark-dataset wrapper and classification targets (§6.1).
//!
//! Each evaluation dataset carries four binary classification targets: the
//! label is 1 when the target attribute's value falls in a designated
//! positive set (e.g. Adult's "holds a post-secondary degree" is a
//! binarisation of `education`).

use privbayes_data::Dataset;

/// A binary classification target over one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassificationTarget {
    /// Human-readable task name matching the paper's figure captions
    /// (e.g. `Y = outside`).
    pub name: String,
    /// Index of the predicted attribute.
    pub attr: usize,
    /// Attribute codes mapped to the positive label.
    pub positive: Vec<u32>,
}

impl ClassificationTarget {
    /// Creates a target.
    #[must_use]
    pub fn new(name: impl Into<String>, attr: usize, positive: Vec<u32>) -> Self {
        Self { name: name.into(), attr, positive }
    }

    /// The ±1 label of a row.
    #[must_use]
    pub fn label(&self, dataset: &Dataset, row: usize) -> f64 {
        if self.positive.contains(&dataset.value(row, self.attr)) {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of positive rows (sanity metric for the generators).
    #[must_use]
    pub fn positive_rate(&self, dataset: &Dataset) -> f64 {
        if dataset.n() == 0 {
            return 0.0;
        }
        let pos = dataset.column(self.attr).iter().filter(|v| self.positive.contains(v)).count();
        pos as f64 / dataset.n() as f64
    }
}

/// A named dataset plus its four classification tasks.
#[derive(Debug, Clone)]
pub struct BenchmarkDataset {
    /// Dataset name as used in the paper ("NLTCS", "ACS", "Adult", "BR2000").
    pub name: &'static str,
    /// The generated data.
    pub data: Dataset,
    /// The paper's four SVM targets for this dataset.
    pub targets: Vec<ClassificationTarget>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema};

    #[test]
    fn labels_follow_positive_set() {
        let schema = Schema::new(vec![Attribute::categorical("edu", 4).unwrap()]).unwrap();
        let ds = Dataset::from_rows(schema, &[vec![0], vec![2], vec![3], vec![1]]).unwrap();
        let t = ClassificationTarget::new("post-secondary", 0, vec![2, 3]);
        assert_eq!(t.label(&ds, 0), -1.0);
        assert_eq!(t.label(&ds, 1), 1.0);
        assert_eq!(t.label(&ds, 2), 1.0);
        assert!((t.positive_rate(&ds) - 0.5).abs() < 1e-12);
    }
}
