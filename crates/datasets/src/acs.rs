//! Synthetic ACS: 47,461 tuples × 23 binary person/household indicators from
//! the 2013–2014 IPUMS-USA sample \[44\].

use privbayes_data::{Attribute, Schema};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::random_network::GroundTruthNetwork;
use crate::targets::{BenchmarkDataset, ClassificationTarget};

/// The paper's cardinality for ACS (Table 5).
pub const CARDINALITY: usize = 47_461;

/// ACS indicator names; the four SVM targets of §6.1 come first
/// (owns dwelling / has mortgage / multi-generation household / attends school).
const ATTRIBUTES: [&str; 23] = [
    "dwelling",
    "mortgage",
    "multi-gen",
    "school",
    "employed",
    "veteran",
    "disabled",
    "married",
    "citizen",
    "metro",
    "english",
    "health-ins",
    "food-stamps",
    "broadband",
    "vehicle",
    "college",
    "male",
    "over-65",
    "hispanic",
    "poverty",
    "self-care",
    "moved",
    "grandchild",
];

/// The ACS schema: 23 binary attributes.
///
/// # Panics
/// Never (names are distinct).
#[must_use]
pub fn schema() -> Schema {
    Schema::new(ATTRIBUTES.iter().map(|a| Attribute::binary(*a)).collect()).expect("valid schema")
}

/// Generates the synthetic ACS dataset at the paper's size.
#[must_use]
pub fn acs(seed: u64) -> BenchmarkDataset {
    acs_sized(seed, CARDINALITY)
}

/// Generates a smaller ACS-shaped dataset (for tests and quick runs).
#[must_use]
pub fn acs_sized(seed: u64, n: usize) -> BenchmarkDataset {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(0x4143_5300 ^ seed);
    let net = GroundTruthNetwork::random(&schema, 3, 1.0, &mut rng);
    let data = net.sample(n, &mut rng);
    let targets = vec![
        ClassificationTarget::new("Y = dwelling", 0, vec![1]),
        ClassificationTarget::new("Y = mortgage", 1, vec![1]),
        ClassificationTarget::new("Y = multi-gen", 2, vec![1]),
        ClassificationTarget::new("Y = school", 3, vec![1]),
    ];
    BenchmarkDataset { name: "ACS", data, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_5() {
        let ds = acs_sized(1, 2000);
        assert_eq!(ds.data.d(), 23);
        assert!(ds.data.schema().all_binary());
        assert!((ds.data.schema().total_domain_log2() - 23.0).abs() < 1e-9);
    }

    #[test]
    fn targets_not_degenerate() {
        let ds = acs_sized(2, 1000);
        for t in &ds.targets {
            let rate = t.positive_rate(&ds.data);
            assert!(rate > 0.0 && rate < 1.0, "{}: {rate}", t.name);
        }
    }
}
