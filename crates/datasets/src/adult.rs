//! Synthetic Adult: 45,222 tuples × 15 mixed attributes mirroring the 1994
//! US Census extract \[1\], total domain ≈ 2⁵², with taxonomy trees for the
//! hierarchical encoding (Figures 2–3).

use privbayes_data::{Attribute, Schema, TaxonomyTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::random_network::GroundTruthNetwork;
use crate::targets::{BenchmarkDataset, ClassificationTarget};

/// The paper's cardinality for Adult (Table 5).
pub const CARDINALITY: usize = 45_222;

/// Continuous attributes use the paper's 16 equi-width bins (§5.1 fn. 3).
const BINS: usize = 16;

fn continuous(name: &str, min: f64, max: f64) -> Attribute {
    Attribute::continuous(name, min, max, BINS)
        .expect("valid range")
        .with_taxonomy(TaxonomyTree::balanced_binary(BINS).expect("16 leaves"))
        .expect("matching leaf count")
}

fn grouped(name: &str, labels: &[&str], groups: &[Vec<u32>]) -> Attribute {
    Attribute::categorical_labelled(name, labels.iter().copied())
        .expect("valid labels")
        .with_taxonomy(TaxonomyTree::from_groups(labels.len(), groups).expect("valid groups"))
        .expect("matching leaf count")
}

/// The Adult schema (15 attributes, ≈ 2⁵² total domain).
///
/// # Panics
/// Never (construction is static).
#[must_use]
pub fn schema() -> Schema {
    let workclass = grouped(
        "workclass",
        &[
            "self-emp-inc",
            "self-emp-not-inc",
            "federal-gov",
            "state-gov",
            "local-gov",
            "private",
            "without-pay",
            "never-worked",
        ],
        // Figure 3: self-employed / government / private / unemployed.
        &[vec![0, 1], vec![2, 3, 4], vec![5], vec![6, 7]],
    );
    let education = Attribute::categorical("education", 16)
        .expect("valid domain")
        .with_taxonomy(
            // pre-HS / HS / some-college / post-secondary.
            TaxonomyTree::from_groups(
                16,
                &[vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9, 10, 11], vec![12, 13, 14, 15]],
            )
            .expect("valid groups"),
        )
        .expect("matching leaf count");
    let marital = grouped(
        "marital",
        &[
            "married-civ",
            "married-af",
            "married-absent",
            "never-married",
            "divorced",
            "separated",
            "widowed",
        ],
        &[vec![0, 1, 2], vec![3], vec![4, 5], vec![6]],
    );
    let occupation = Attribute::categorical("occupation", 14)
        .expect("valid domain")
        .with_taxonomy(
            TaxonomyTree::from_groups(
                14,
                &[vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9, 10], vec![11, 12, 13]],
            )
            .expect("valid groups"),
        )
        .expect("matching leaf count");
    let relationship = Attribute::categorical("relationship", 6)
        .expect("valid domain")
        .with_taxonomy(
            TaxonomyTree::from_groups(6, &[vec![0, 1, 2], vec![3, 4, 5]]).expect("valid"),
        )
        .expect("matching leaf count");
    let race = Attribute::categorical("race", 5)
        .expect("valid domain")
        .with_taxonomy(TaxonomyTree::from_groups(5, &[vec![0], vec![1, 2, 3, 4]]).expect("valid"))
        .expect("matching leaf count");
    let country = Attribute::categorical("country", 42)
        .expect("valid domain")
        .with_taxonomy(
            // 42 countries → 6 regions → (regions are the top level; the
            // CIA-Factbook continent level would be size 3 and is modelled
            // by a second grouping).
            TaxonomyTree::from_parent_maps(
                42,
                vec![
                    (0..42u32).map(|c| c / 7).collect(), // 6 regions
                    vec![0, 0, 1, 1, 2, 2],              // 3 continents
                ],
            )
            .expect("valid maps"),
        )
        .expect("matching leaf count");

    Schema::new(vec![
        continuous("age", 17.0, 90.0),
        workclass,
        continuous("fnlwgt", 1e4, 1.5e6),
        education,
        continuous("education-num", 1.0, 17.0),
        marital,
        occupation,
        relationship,
        race,
        Attribute::binary("sex"),
        continuous("capital-gain", 0.0, 1e5),
        continuous("capital-loss", 0.0, 5e3),
        continuous("hours-per-week", 1.0, 99.0),
        country,
        Attribute::binary("salary"),
    ])
    .expect("valid schema")
}

/// Generates the synthetic Adult dataset at the paper's size.
#[must_use]
pub fn adult(seed: u64) -> BenchmarkDataset {
    adult_sized(seed, CARDINALITY)
}

/// Generates a smaller Adult-shaped dataset (for tests and quick runs).
#[must_use]
pub fn adult_sized(seed: u64, n: usize) -> BenchmarkDataset {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(0x4144_554c_5400 ^ seed);
    let net = GroundTruthNetwork::random(&schema, 2, 0.8, &mut rng);
    let data = net.sample(n, &mut rng);
    // §6.1: female / earns >50K / post-secondary degree / never married.
    let targets = vec![
        ClassificationTarget::new("Y = gender", 9, vec![1]),
        ClassificationTarget::new("Y = salary", 14, vec![1]),
        ClassificationTarget::new("Y = education", 3, vec![12, 13, 14, 15]),
        ClassificationTarget::new("Y = marital", 5, vec![3]),
    ];
    BenchmarkDataset { name: "Adult", data, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_5() {
        let ds = adult_sized(1, 1000);
        assert_eq!(ds.data.d(), 15);
        let log_dom = ds.data.schema().total_domain_log2();
        assert!((log_dom - 52.0).abs() < 3.0, "domain ≈ 2^52, got 2^{log_dom:.1}");
        assert!(!ds.data.schema().all_binary());
    }

    #[test]
    fn every_non_binary_attribute_has_taxonomy() {
        let s = schema();
        for a in s.attributes() {
            if a.domain_size() > 2 {
                assert!(a.taxonomy().is_some(), "attribute `{}` lacks a taxonomy", a.name());
            }
        }
    }

    #[test]
    fn country_taxonomy_has_two_levels_above_leaves() {
        let s = schema();
        let t = s.attribute(13).taxonomy().unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.level_size(1), 6);
        assert_eq!(t.level_size(2), 3);
    }

    #[test]
    fn targets_not_degenerate() {
        let ds = adult_sized(2, 3000);
        for t in &ds.targets {
            let rate = t.positive_rate(&ds.data);
            assert!(rate > 0.01 && rate < 0.99, "{}: {rate}", t.name);
        }
    }
}
