//! Synthetic stand-ins for the four evaluation datasets of §6.1 (Table 5).
//!
//! The real NLTCS, ACS/IPUMS, Adult, and BR2000 extracts are not
//! redistributable, so each generator reproduces the dataset's *shape* —
//! cardinality, dimensionality, attribute kinds, domain sizes, and taxonomy
//! trees — and samples tuples from a hidden ground-truth Bayesian network
//! with Dirichlet-distributed CPTs, so realistic low-order correlation exists
//! for PrivBayes to discover (substitution rationale: DESIGN.md §1).
//!
//! | Dataset | Cardinality | Dimensionality | Domain size |
//! |---------|-------------|----------------|-------------|
//! | NLTCS   | 21,574      | 16 (binary)    | ≈ 2¹⁶       |
//! | ACS     | 47,461      | 23 (binary)    | ≈ 2²³       |
//! | Adult   | 45,222      | 15 (mixed)     | ≈ 2⁵²       |
//! | BR2000  | 38,000      | 14 (mixed)     | ≈ 2³²       |

pub mod acs;
pub mod adult;
pub mod br2000;
pub mod nltcs;
pub mod random_network;
pub mod targets;

pub use random_network::GroundTruthNetwork;
pub use targets::{BenchmarkDataset, ClassificationTarget};

/// All four benchmark datasets with their default sizes (Table 5), generated
/// deterministically from `seed`.
#[must_use]
pub fn all_datasets(seed: u64) -> Vec<targets::BenchmarkDataset> {
    vec![
        nltcs::nltcs(seed),
        acs::acs(seed.wrapping_add(1)),
        adult::adult(seed.wrapping_add(2)),
        br2000::br2000(seed.wrapping_add(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_shapes() {
        let sets = all_datasets(7);
        let expect = [
            ("NLTCS", 21_574usize, 16usize, 16.0f64),
            ("ACS", 47_461, 23, 23.0),
            ("Adult", 45_222, 15, 52.0),
            ("BR2000", 38_000, 14, 32.0),
        ];
        for (ds, (name, n, d, log_dom)) in sets.iter().zip(expect) {
            assert_eq!(ds.name, name);
            assert_eq!(ds.data.n(), n, "{name} cardinality");
            assert_eq!(ds.data.d(), d, "{name} dimensionality");
            let got = ds.data.schema().total_domain_log2();
            assert!((got - log_dom).abs() < 3.0, "{name} domain ≈ 2^{log_dom}, got 2^{got:.1}");
            assert_eq!(ds.targets.len(), 4, "{name} has 4 classification targets");
        }
    }
}
