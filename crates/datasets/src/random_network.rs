//! Hidden ground-truth Bayesian networks used to generate correlated
//! synthetic data.
//!
//! Each generator builds a random DAG of bounded in-degree over the target
//! schema, fills every conditional probability table with a symmetric
//! Dirichlet draw (small α ⇒ skewed, strongly informative conditionals), and
//! samples tuples ancestrally. The resulting data has genuine low-order
//! structure — exactly the regime PrivBayes models — without copying any
//! private record.

use privbayes_data::{Dataset, Schema};
use privbayes_dp::stats::{sample_dirichlet_symmetric, sample_discrete};
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// One node of the hidden network.
#[derive(Debug, Clone)]
struct Node {
    attr: usize,
    parents: Vec<usize>,
    parent_dims: Vec<usize>,
    child_dim: usize,
    /// Parent-major, child-fastest CPT.
    cpt: Vec<f64>,
}

/// A randomly drawn ground-truth Bayesian network over a schema.
#[derive(Debug, Clone)]
pub struct GroundTruthNetwork {
    schema: Schema,
    nodes: Vec<Node>,
}

impl GroundTruthNetwork {
    /// Draws a random network of in-degree ≤ `max_parents` with
    /// `Dirichlet(alpha)` CPTs.
    ///
    /// # Panics
    /// Panics if `alpha <= 0`.
    pub fn random<R: Rng + ?Sized>(
        schema: &Schema,
        max_parents: usize,
        alpha: f64,
        rng: &mut R,
    ) -> Self {
        let d = schema.len();
        let mut order: Vec<usize> = (0..d).collect();
        order.shuffle(rng);
        let mut nodes = Vec::with_capacity(d);
        for (pos, &attr) in order.iter().enumerate() {
            let available = &order[..pos];
            let parent_count = max_parents.min(available.len());
            let parent_count =
                if parent_count == 0 { 0 } else { rng.random_range(1..=parent_count) };
            let mut pool: Vec<usize> = available.to_vec();
            pool.shuffle(rng);
            let parents: Vec<usize> = pool.into_iter().take(parent_count).collect();
            let parent_dims: Vec<usize> =
                parents.iter().map(|&p| schema.attribute(p).domain_size()).collect();
            let child_dim = schema.attribute(attr).domain_size();
            let combos: usize = parent_dims.iter().product();
            let mut cpt = Vec::with_capacity(combos * child_dim);
            for _ in 0..combos {
                cpt.extend(sample_dirichlet_symmetric(child_dim, alpha, rng));
            }
            nodes.push(Node { attr, parents, parent_dims, child_dim, cpt });
        }
        Self { schema: schema.clone(), nodes }
    }

    /// The schema the network was drawn over.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Maximum in-degree actually used.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.nodes.iter().map(|n| n.parents.len()).max().unwrap_or(0)
    }

    /// Samples `n` tuples ancestrally.
    ///
    /// # Panics
    /// Panics only on internal invariant violations.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let d = self.schema.len();
        let mut columns: Vec<Vec<u32>> = vec![vec![0u32; n]; d];
        let mut tuple = vec![0u32; d];
        #[allow(clippy::needless_range_loop)] // `row` indexes every column
        for row in 0..n {
            for node in &self.nodes {
                let mut idx = 0usize;
                for (&p, &dim) in node.parents.iter().zip(&node.parent_dims) {
                    idx = idx * dim + tuple[p] as usize;
                }
                let slice = &node.cpt[idx * node.child_dim..(idx + 1) * node.child_dim];
                let v = sample_discrete(slice, rng) as u32;
                tuple[node.attr] = v;
                columns[node.attr][row] = v;
            }
        }
        Dataset::from_columns(self.schema.clone(), columns).expect("codes drawn within domains")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::Attribute;
    use privbayes_marginals::{Axis, CountEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema(d: usize) -> Schema {
        Schema::new((0..d).map(|i| Attribute::binary(format!("x{i}"))).collect()).unwrap()
    }

    #[test]
    fn sample_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = GroundTruthNetwork::random(&schema(6), 2, 0.5, &mut rng);
        assert!(net.degree() <= 2);
        let ds = net.sample(500, &mut rng);
        assert_eq!(ds.n(), 500);
        assert_eq!(ds.d(), 6);
    }

    #[test]
    fn generated_data_contains_correlation() {
        // With α = 0.2 the CPTs are skewed, so some pair of attributes must
        // show non-trivial mutual dependence.
        let mut rng = StdRng::seed_from_u64(2);
        let net = GroundTruthNetwork::random(&schema(8), 3, 0.2, &mut rng);
        let ds = net.sample(5000, &mut rng);
        let engine = CountEngine::new(&ds);
        let mut max_dep: f64 = 0.0;
        for a in 0..8 {
            for b in a + 1..8 {
                let t = engine.joint_table(&[Axis::raw(a), Axis::raw(b)]);
                let v = t.values();
                let pa = v[0] + v[1];
                let pb = v[0] + v[2];
                max_dep = max_dep.max((v[0] - pa * pb).abs());
            }
        }
        assert!(max_dep > 0.02, "expected correlated pairs, max dependence {max_dep}");
    }

    #[test]
    fn deterministic_per_seed() {
        let make = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = GroundTruthNetwork::random(&schema(5), 2, 0.5, &mut rng);
            net.sample(50, &mut rng)
        };
        assert_eq!(make(9), make(9));
    }

    #[test]
    fn works_with_mixed_domains() {
        let schema = Schema::new(vec![
            Attribute::binary("a"),
            Attribute::categorical("b", 7).unwrap(),
            Attribute::categorical("c", 3).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let net = GroundTruthNetwork::random(&schema, 2, 1.0, &mut rng);
        let ds = net.sample(200, &mut rng);
        assert!(ds.column(1).iter().all(|&v| v < 7));
        assert!(ds.column(2).iter().all(|&v| v < 3));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For arbitrary shapes: in-degree respects the cap, every
            /// sampled value lies in its domain, and the empty sample works.
            #[test]
            fn prop_generator_invariants(
                d in 2usize..8,
                sizes in proptest::collection::vec(2usize..6, 8),
                max_parents in 1usize..4,
                alpha in 0.1f64..2.0,
                seed in any::<u64>(),
            ) {
                let schema = Schema::new(
                    (0..d)
                        .map(|i| Attribute::categorical(format!("x{i}"), sizes[i]).unwrap())
                        .collect(),
                )
                .unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let net = GroundTruthNetwork::random(&schema, max_parents, alpha, &mut rng);
                prop_assert!(net.degree() <= max_parents);
                let ds = net.sample(40, &mut rng);
                prop_assert_eq!(ds.n(), 40);
                for (attr, &size) in sizes.iter().enumerate().take(d) {
                    let dom = size as u32;
                    prop_assert!(ds.column(attr).iter().all(|&v| v < dom));
                }
                prop_assert_eq!(net.sample(0, &mut rng).n(), 0);
            }

            /// Smaller Dirichlet α means more skewed (lower-entropy)
            /// marginals on average — the knob the dataset generators rely
            /// on to mimic the real data's skew.
            #[test]
            fn prop_alpha_controls_skew(seed in any::<u64>()) {
                let schema = Schema::new(
                    (0..6).map(|i| Attribute::categorical(format!("x{i}"), 4).unwrap()).collect(),
                )
                .unwrap();
                let entropy_at = |alpha: f64| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let net = GroundTruthNetwork::random(&schema, 2, alpha, &mut rng);
                    let ds = net.sample(3000, &mut rng);
                    let engine = CountEngine::new(&ds);
                    let mut h = 0.0;
                    for attr in 0..6 {
                        let t = engine.joint_table(&[Axis::raw(attr)]);
                        for &p in t.values() {
                            if p > 0.0 {
                                h -= p * p.log2();
                            }
                        }
                    }
                    h
                };
                // Wide margin (0.05 vs 50) so the assertion is stable for
                // any seed.
                prop_assert!(entropy_at(0.05) < entropy_at(50.0));
            }
        }
    }
}
