//! Synthetic BR2000: 38,000 tuples × 14 mixed attributes mirroring the 2000
//! Brazilian census extract from IPUMS-International \[44\], total domain
//! ≈ 2³², with taxonomy trees.

use privbayes_data::{Attribute, Schema, TaxonomyTree};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::random_network::GroundTruthNetwork;
use crate::targets::{BenchmarkDataset, ClassificationTarget};

/// The paper's cardinality for BR2000 (Table 5).
pub const CARDINALITY: usize = 38_000;

fn with_binary_taxonomy(attr: Attribute) -> Attribute {
    let leaves = attr.domain_size();
    attr.with_taxonomy(TaxonomyTree::balanced_binary(leaves).expect("≥2 leaves"))
        .expect("matching leaf count")
}

/// The BR2000 schema (14 attributes, ≈ 2³² total domain).
///
/// # Panics
/// Never (construction is static).
#[must_use]
pub fn schema() -> Schema {
    let religion = Attribute::categorical_labelled(
        "religion",
        [
            "catholic",
            "evangelical",
            "pentecostal",
            "spiritist",
            "afro-brazilian",
            "other",
            "none",
            "undeclared",
        ],
    )
    .expect("valid labels")
    .with_taxonomy(
        TaxonomyTree::from_groups(8, &[vec![0], vec![1, 2], vec![3, 4, 5], vec![6, 7]])
            .expect("valid groups"),
    )
    .expect("matching leaf count");

    Schema::new(vec![
        with_binary_taxonomy(Attribute::continuous("age", 0.0, 80.0, 16).expect("valid")),
        Attribute::binary("gender"),
        religion,
        Attribute::binary("car"),
        with_binary_taxonomy(Attribute::categorical("children", 8).expect("valid")),
        with_binary_taxonomy(Attribute::categorical("marital", 4).expect("valid")),
        with_binary_taxonomy(Attribute::categorical("education", 8).expect("valid")),
        with_binary_taxonomy(Attribute::continuous("income", 0.0, 1e4, 16).expect("valid")),
        with_binary_taxonomy(Attribute::categorical("region", 16).expect("valid")),
        Attribute::binary("urban"),
        with_binary_taxonomy(Attribute::categorical("race", 4).expect("valid")),
        with_binary_taxonomy(Attribute::categorical("occupation", 8).expect("valid")),
        Attribute::binary("employed"),
        Attribute::binary("migrant"),
    ])
    .expect("valid schema")
}

/// Generates the synthetic BR2000 dataset at the paper's size.
#[must_use]
pub fn br2000(seed: u64) -> BenchmarkDataset {
    br2000_sized(seed, CARDINALITY)
}

/// Generates a smaller BR2000-shaped dataset (for tests and quick runs).
#[must_use]
pub fn br2000_sized(seed: u64, n: usize) -> BenchmarkDataset {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(0x4252_3230_3030 ^ seed);
    let net = GroundTruthNetwork::random(&schema, 2, 0.8, &mut rng);
    let data = net.sample(n, &mut rng);
    // §6.1: Catholic / owns a car / has ≥1 child / older than 20.
    let targets = vec![
        ClassificationTarget::new("Y = religion", 2, vec![0]),
        ClassificationTarget::new("Y = car", 3, vec![1]),
        ClassificationTarget::new("Y = child", 4, (1..8).collect()),
        // age bins are 5 years wide over (0, 80]; >20 is bins 4..16.
        ClassificationTarget::new("Y = age", 0, (4..16).collect()),
    ];
    BenchmarkDataset { name: "BR2000", data, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_5() {
        let ds = br2000_sized(1, 1000);
        assert_eq!(ds.data.d(), 14);
        let log_dom = ds.data.schema().total_domain_log2();
        assert!((log_dom - 32.0).abs() < 3.0, "domain ≈ 2^32, got 2^{log_dom:.1}");
    }

    #[test]
    fn non_binary_attributes_have_taxonomies() {
        for a in schema().attributes() {
            if a.domain_size() > 2 {
                assert!(a.taxonomy().is_some(), "`{}` lacks a taxonomy", a.name());
            }
        }
    }

    #[test]
    fn religion_taxonomy_groups_catholic_alone() {
        let s = schema();
        let t = s.attribute(2).taxonomy().unwrap();
        assert_eq!(t.leaves_of(0, 1), vec![0], "catholic is its own group");
    }

    #[test]
    fn targets_not_degenerate() {
        let ds = br2000_sized(2, 3000);
        for t in &ds.targets {
            let rate = t.positive_rate(&ds.data);
            assert!(rate > 0.01 && rate < 0.99, "{}: {rate}", t.name);
        }
    }
}
