//! Synthetic NLTCS: 21,574 tuples × 16 binary disability indicators \[35\].

use privbayes_data::{Attribute, Schema};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::random_network::GroundTruthNetwork;
use crate::targets::{BenchmarkDataset, ClassificationTarget};

/// The paper's cardinality for NLTCS (Table 5).
pub const CARDINALITY: usize = 21_574;

/// NLTCS activity-of-daily-living indicators (the four SVM targets of §6.1
/// first: unable to get outside / manage money / bathe / travel).
const ATTRIBUTES: [&str; 16] = [
    "outside",
    "money",
    "bathing",
    "traveling",
    "dressing",
    "toileting",
    "bed",
    "housework",
    "laundry",
    "cooking",
    "grocery",
    "walking",
    "eating",
    "medicine",
    "telephone",
    "wheelchair",
];

/// The NLTCS schema: 16 binary attributes.
///
/// # Panics
/// Never (names are distinct).
#[must_use]
pub fn schema() -> Schema {
    Schema::new(ATTRIBUTES.iter().map(|a| Attribute::binary(*a)).collect()).expect("valid schema")
}

/// Generates the synthetic NLTCS dataset at the paper's size.
#[must_use]
pub fn nltcs(seed: u64) -> BenchmarkDataset {
    nltcs_sized(seed, CARDINALITY)
}

/// Generates a smaller NLTCS-shaped dataset (for tests and quick runs).
#[must_use]
pub fn nltcs_sized(seed: u64, n: usize) -> BenchmarkDataset {
    let schema = schema();
    let mut rng = StdRng::seed_from_u64(0x4e4c_5443_5300 ^ seed);
    // Disability indicators are strongly cross-correlated: degree-3 network
    // with skewed CPTs (most people answer "able" on most items).
    let net = GroundTruthNetwork::random(&schema, 3, 1.0, &mut rng);
    let data = net.sample(n, &mut rng);
    let targets = vec![
        ClassificationTarget::new("Y = outside", 0, vec![1]),
        ClassificationTarget::new("Y = money", 1, vec![1]),
        ClassificationTarget::new("Y = bathing", 2, vec![1]),
        ClassificationTarget::new("Y = traveling", 3, vec![1]),
    ];
    BenchmarkDataset { name: "NLTCS", data, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_5() {
        let ds = nltcs_sized(1, 2000);
        assert_eq!(ds.data.d(), 16);
        assert_eq!(ds.data.n(), 2000);
        assert!(ds.data.schema().all_binary());
        assert!((ds.data.schema().total_domain_log2() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn targets_are_binary_attributes() {
        let ds = nltcs_sized(2, 500);
        for t in &ds.targets {
            let rate = t.positive_rate(&ds.data);
            assert!(rate > 0.0 && rate < 1.0, "target {} degenerate: {rate}", t.name);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(nltcs_sized(5, 100).data, nltcs_sized(5, 100).data);
    }
}
