//! A conditional PrivBayes model over the fact view, under group privacy.
//!
//! The fact view has one row per fact, so one individual influences up to
//! `m` rows (the fan-out cap). This is exactly the regime the paper's
//! concluding remarks flag: *"the impact of an individual (and hence the
//! scale of noise needed for privacy) may grow very large, and a more
//! careful analysis is needed."* The careful analysis here is group privacy
//! by budget scaling: a mechanism that is `ε/m`-DP with respect to one fact
//! row is `ε`-DP with respect to an individual's whole group of ≤ m rows
//! (compose a chain of single-row changes). Concretely:
//!
//! * each of the `d_f` exponential-mechanism selections runs with row-level
//!   budget `ε₁ / (d_f · m)`;
//! * each noisy joint receives `Lap(2 · d_f · m / (n_f · ε₂))` noise — the
//!   single-table scale of Algorithm 3 multiplied by `m`;
//! * θ-usefulness shrinks τ by the same factor `m`, so larger fan-out caps
//!   automatically select smaller parent sets.
//!
//! The learned network is *conditional*: entity attributes enter as evidence
//! roots whose distributions are never modelled (synthesis always supplies
//! their values), and only fact attributes get scored parent sets — drawn
//! from both entity attributes and earlier fact attributes.

use privbayes::conditionals::{conditional_from_joint, Conditional};
use privbayes::network::{ApPair, BayesianNetwork};
use privbayes::parent_sets::maximal_parent_sets;
use privbayes::score::ScoreKind;
use privbayes_data::Dataset;
use privbayes_dp::exponential::select_with_scale;
use privbayes_dp::laplace::sample_laplace;
use privbayes_marginals::{clamp_and_normalize, Axis, CountEngine};
use rand::Rng;

use crate::error::RelationalError;

/// Configuration of the conditional fact model.
#[derive(Debug, Clone, PartialEq)]
pub struct FactModelOptions {
    /// Group-level privacy budget for the fact phase; `None` fits without
    /// noise (ablation / testing).
    pub epsilon: Option<f64>,
    /// Split between structure (ε₁ = βε) and marginals (ε₂ = (1−β)ε).
    pub beta: f64,
    /// θ-usefulness threshold.
    pub theta: f64,
    /// Cap on parent-set cardinality.
    pub max_parents: usize,
}

impl Default for FactModelOptions {
    fn default() -> Self {
        Self { epsilon: Some(1.0), beta: 0.3, theta: 4.0, max_parents: 3 }
    }
}

/// A fitted conditional model `Pr*[fact attrs | entity attrs]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalFactModel {
    /// Number of leading evidence (entity) attributes in the view schema.
    entity_arity: usize,
    /// The network over the fact view (evidence roots first).
    network: BayesianNetwork,
    /// Conditionals for the fact attributes only, aligned with the network
    /// pairs `entity_arity..`.
    conditionals: Vec<Conditional>,
}

impl ConditionalFactModel {
    /// Reassembles a fact model from parts (deserialization path).
    ///
    /// The network's first `entity_arity` pairs must be the parentless
    /// evidence roots in attribute order; `conditionals` covers the
    /// remaining (fact) pairs, aligned one-to-one.
    ///
    /// # Errors
    /// Returns [`RelationalError::InvalidConfig`] if the evidence prefix,
    /// pair alignment, or conditional shapes are inconsistent.
    pub fn from_parts(
        entity_arity: usize,
        network: BayesianNetwork,
        conditionals: Vec<Conditional>,
    ) -> Result<Self, RelationalError> {
        let d = network.len();
        if entity_arity == 0 || entity_arity >= d {
            return Err(RelationalError::InvalidConfig(format!(
                "entity arity {entity_arity} must lie in 1..{d}"
            )));
        }
        if conditionals.len() != d - entity_arity {
            return Err(RelationalError::InvalidConfig(format!(
                "{} conditionals for {} fact pairs",
                conditionals.len(),
                d - entity_arity
            )));
        }
        for (i, pair) in network.pairs()[..entity_arity].iter().enumerate() {
            if pair.child != i || !pair.parents.is_empty() {
                return Err(RelationalError::InvalidConfig(format!(
                    "network pair {i} must be the parentless evidence root for attribute {i}"
                )));
            }
        }
        for (pair, cond) in network.pairs()[entity_arity..].iter().zip(&conditionals) {
            if pair.child != cond.child || pair.parents != cond.parents {
                return Err(RelationalError::InvalidConfig(format!(
                    "conditional for attribute {} does not match its network pair",
                    cond.child
                )));
            }
            let parent_cells: usize = cond.parent_dims.iter().product();
            if cond.probs.len() != parent_cells * cond.child_dim
                || cond.parent_dims.len() != cond.parents.len()
            {
                return Err(RelationalError::InvalidConfig(format!(
                    "conditional for attribute {} has inconsistent dimensions",
                    cond.child
                )));
            }
        }
        Ok(Self { entity_arity, network, conditionals })
    }

    /// The network over the fact-view schema (for inspection).
    #[must_use]
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// The fact-attribute conditionals, in network order.
    #[must_use]
    pub fn conditionals(&self) -> &[Conditional] {
        &self.conditionals
    }

    /// Number of evidence attributes.
    #[must_use]
    pub fn entity_arity(&self) -> usize {
        self.entity_arity
    }

    /// Samples one fact row (fact attributes only, in fact-view order) for an
    /// individual with the given entity attribute values.
    ///
    /// # Panics
    /// Panics if `entity_values.len() != entity_arity` (programming error).
    pub fn sample_fact<R: Rng + ?Sized>(&self, entity_values: &[u32], rng: &mut R) -> Vec<u32> {
        assert_eq!(entity_values.len(), self.entity_arity, "evidence arity mismatch");
        let d = self.entity_arity + self.conditionals.len();
        let mut values: Vec<u32> = vec![0; d];
        values[..self.entity_arity].copy_from_slice(entity_values);
        let mut codes = Vec::new();
        for cond in &self.conditionals {
            codes.clear();
            codes.extend(cond.parents.iter().map(|axis| {
                debug_assert_eq!(axis.level, 0, "fact model uses raw parents");
                values[axis.attr] as usize
            }));
            let slice = cond.child_distribution(cond.parent_index(&codes));
            values[cond.child] = sample_discrete(slice, rng) as u32;
        }
        values[self.entity_arity..].to_vec()
    }
}

/// Draws an index from a normalised probability slice.
fn sample_discrete<R: Rng + ?Sized>(probs: &[f64], rng: &mut R) -> usize {
    use rand::RngExt;
    let mut u: f64 = rng.random::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1 // float round-off fallback
}

/// Fits the conditional fact model on a fact view (entity attributes first).
///
/// `fanout_cap` is the group size `m` used for the privacy scaling described
/// at the module level. An empty view yields the uniform conditional model
/// (no data is accessed, so no budget is spent).
///
/// # Errors
/// Returns [`RelationalError::InvalidConfig`] for invalid arities or budget
/// parameters, and propagates core failures.
pub fn fit_fact_model<R: Rng + ?Sized>(
    view: &Dataset,
    entity_arity: usize,
    fanout_cap: usize,
    options: &FactModelOptions,
    rng: &mut R,
) -> Result<ConditionalFactModel, RelationalError> {
    let d = view.d();
    if entity_arity == 0 || entity_arity >= d {
        return Err(RelationalError::InvalidConfig(format!(
            "entity arity {entity_arity} must lie in 1..{d}"
        )));
    }
    if fanout_cap == 0 {
        return Err(RelationalError::InvalidConfig("fanout_cap must be at least 1".into()));
    }
    if !(options.beta > 0.0 && options.beta < 1.0) {
        return Err(RelationalError::InvalidConfig(format!(
            "beta must lie in (0,1), got {}",
            options.beta
        )));
    }
    if !(options.theta > 0.0 && options.theta.is_finite()) {
        return Err(RelationalError::InvalidConfig(format!(
            "theta must be positive, got {}",
            options.theta
        )));
    }
    if let Some(e) = options.epsilon {
        if !(e > 0.0 && e.is_finite()) {
            return Err(RelationalError::InvalidConfig(format!(
                "epsilon must be positive, got {e}"
            )));
        }
    }

    let d_f = d - entity_arity;
    let n_f = view.n();
    let m = fanout_cap as f64;
    let domain_sizes = view.schema().domain_sizes();

    if n_f == 0 {
        return Ok(uniform_model(view, entity_arity));
    }

    let (eps1, eps2) = match options.epsilon {
        Some(e) => (Some(options.beta * e), Some((1.0 - options.beta) * e)),
        None => (None, None),
    };

    // One engine serves both phases: candidate joints counted while scoring
    // are cache hits when the noisy conditionals materialise them again, and
    // no phase ever re-scans the fact view's rows directly.
    let engine = CountEngine::new(view);

    // --- Structure learning: greedy conditional GreedyBayes. ---
    let mut placed: Vec<usize> = (0..entity_arity).collect();
    let mut unplaced: Vec<usize> = (entity_arity..d).collect();
    let mut pairs: Vec<ApPair> = (0..entity_arity).map(|a| ApPair::new(a, vec![])).collect();

    while !unplaced.is_empty() {
        // Candidate (X, Π) pairs across all unplaced fact attributes.
        let mut candidates: Vec<(usize, Vec<usize>)> = Vec::new();
        for &x in &unplaced {
            let tau = match eps2 {
                // θ-usefulness with the group-scaled noise (module docs).
                Some(e2) => {
                    n_f as f64 * e2
                        / (2.0 * d_f as f64 * m * options.theta)
                        / domain_sizes[x] as f64
                }
                None => f64::INFINITY,
            };
            let sets = maximal_parent_sets(&placed, &domain_sizes, tau, options.max_parents);
            if sets.is_empty() {
                candidates.push((x, Vec::new()));
            } else {
                for set in sets {
                    candidates.push((x, set));
                }
            }
        }
        let scores: Vec<f64> = candidates
            .iter()
            .map(|(x, parents)| {
                let mut axes: Vec<Axis> = parents.iter().map(|&p| Axis::raw(p)).collect();
                axes.push(Axis::raw(*x));
                let joint = engine.joint_table(&axes);
                ScoreKind::R
                    .compute(joint.values(), domain_sizes[*x], n_f)
                    .expect("R supports general domains")
            })
            .collect();
        let chosen = match eps1 {
            Some(e1) => {
                // Row-level sensitivity scaled to the group: Δ = d_f·m·S(R)/ε₁.
                let delta = d_f as f64 * m * ScoreKind::R.sensitivity(n_f, false) / e1;
                select_with_scale(&scores, delta, rng)
                    .map_err(|e| RelationalError::InvalidConfig(e.to_string()))?
            }
            None => {
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("candidates nonempty")
                    .0
            }
        };
        let (x, parents) = candidates.swap_remove(chosen);
        pairs.push(ApPair::new(x, parents));
        placed.push(x);
        unplaced.retain(|&u| u != x);
    }
    let network = BayesianNetwork::new(pairs, view.schema())?;

    // --- Distribution learning: group-scaled Algorithm 3 on fact pairs. ---
    let scale = eps2.map(|e2| 2.0 * d_f as f64 * m / (n_f as f64 * e2));
    let conditionals: Vec<Conditional> = network.pairs()[entity_arity..]
        .iter()
        .map(|pair| {
            let mut axes: Vec<Axis> = pair.parents.clone();
            axes.push(Axis::raw(pair.child));
            let mut joint = engine.joint_table(&axes);
            if let Some(scale) = scale {
                for v in joint.values_mut() {
                    *v += sample_laplace(scale, rng);
                }
                clamp_and_normalize(joint.values_mut(), 1.0);
            }
            conditional_from_joint(&joint, pair.child)
        })
        .collect();

    Ok(ConditionalFactModel { entity_arity, network, conditionals })
}

/// The no-data fallback: every fact attribute independent and uniform.
fn uniform_model(view: &Dataset, entity_arity: usize) -> ConditionalFactModel {
    let d = view.d();
    let mut pairs: Vec<ApPair> = (0..entity_arity).map(|a| ApPair::new(a, vec![])).collect();
    let mut conditionals = Vec::with_capacity(d - entity_arity);
    for x in entity_arity..d {
        pairs.push(ApPair::new(x, vec![]));
        let dim = view.schema().attribute(x).domain_size();
        conditionals.push(Conditional {
            child: x,
            parents: vec![],
            parent_dims: vec![],
            child_dim: dim,
            probs: vec![1.0 / dim as f64; dim],
        });
    }
    let network = BayesianNetwork::new(pairs, view.schema()).expect("uniform network is valid");
    ConditionalFactModel { entity_arity, network, conditionals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privbayes_data::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Fact view where dx strongly follows the (entity) smoker flag.
    fn correlated_view(n: usize, seed: u64) -> Dataset {
        let schema = Schema::new(vec![
            Attribute::binary("smoker"),
            Attribute::categorical("dx", 3).unwrap(),
            Attribute::binary("inpatient"),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                let smoker = u32::from(rng.random::<f64>() < 0.4);
                let dx = if rng.random::<f64>() < 0.9 { smoker * 2 } else { 1 };
                let inpatient = u32::from(dx == 2) ^ u32::from(rng.random::<f64>() < 0.05);
                vec![smoker, dx, inpatient]
            })
            .collect();
        Dataset::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn noise_free_model_recovers_conditional() {
        let view = correlated_view(4000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let options = FactModelOptions { epsilon: None, ..FactModelOptions::default() };
        let model = fit_fact_model(&view, 1, 3, &options, &mut rng).unwrap();
        assert_eq!(model.entity_arity(), 1);
        assert_eq!(model.conditionals().len(), 2);
        // Sampling facts for a smoker should produce dx=2 ~90% of the time.
        let mut dx2 = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            let fact = model.sample_fact(&[1], &mut rng);
            if fact[0] == 2 {
                dx2 += 1;
            }
        }
        let frac = dx2 as f64 / trials as f64;
        assert!((frac - 0.9).abs() < 0.05, "Pr[dx=2 | smoker] ≈ 0.9, got {frac}");
    }

    #[test]
    fn private_model_is_valid_and_samples_in_domain() {
        let view = correlated_view(2000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let options = FactModelOptions { epsilon: Some(2.0), ..FactModelOptions::default() };
        let model = fit_fact_model(&view, 1, 4, &options, &mut rng).unwrap();
        for cond in model.conditionals() {
            for slice in cond.probs.chunks_exact(cond.child_dim) {
                assert!((slice.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(slice.iter().all(|&p| p >= 0.0));
            }
        }
        for _ in 0..100 {
            let fact = model.sample_fact(&[0], &mut rng);
            assert!(fact[0] < 3 && fact[1] < 2);
        }
    }

    #[test]
    fn larger_fanout_cap_shrinks_parent_sets() {
        // With the same budget, a fan-out cap of 64 must forbid the parent
        // sets a cap of 1 would allow (θ-usefulness divides τ by m).
        let view = correlated_view(600, 5);
        let options_small =
            FactModelOptions { epsilon: Some(0.5), max_parents: 3, ..FactModelOptions::default() };
        let fit_degree = |cap: usize, rng: &mut StdRng| {
            fit_fact_model(&view, 1, cap, &options_small, rng).unwrap().network().degree()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let tight = fit_degree(1, &mut rng);
        let loose = fit_degree(64, &mut rng);
        assert!(
            loose <= tight,
            "cap 64 (degree {loose}) must not out-spend cap 1 (degree {tight})"
        );
    }

    #[test]
    fn empty_view_yields_uniform_model() {
        let schema = Schema::new(vec![
            Attribute::binary("smoker"),
            Attribute::categorical("dx", 4).unwrap(),
        ])
        .unwrap();
        let view = Dataset::empty(schema);
        let mut rng = StdRng::seed_from_u64(7);
        let model = fit_fact_model(&view, 1, 2, &FactModelOptions::default(), &mut rng).unwrap();
        let cond = &model.conditionals()[0];
        assert!(cond.probs.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn rejects_bad_configuration() {
        let view = correlated_view(100, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let base = FactModelOptions::default();
        assert!(fit_fact_model(&view, 0, 2, &base, &mut rng).is_err(), "no evidence attrs");
        assert!(fit_fact_model(&view, 3, 2, &base, &mut rng).is_err(), "no fact attrs");
        assert!(fit_fact_model(&view, 1, 0, &base, &mut rng).is_err(), "zero fanout");
        let bad = FactModelOptions { beta: 1.5, ..base.clone() };
        assert!(fit_fact_model(&view, 1, 2, &bad, &mut rng).is_err());
        let bad = FactModelOptions { epsilon: Some(-1.0), ..base };
        assert!(fit_fact_model(&view, 1, 2, &bad, &mut rng).is_err());
    }

    #[test]
    fn from_parts_round_trips_a_fitted_model() {
        let view = correlated_view(500, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let model = fit_fact_model(&view, 1, 2, &FactModelOptions::default(), &mut rng).unwrap();
        let rebuilt = ConditionalFactModel::from_parts(
            model.entity_arity(),
            model.network().clone(),
            model.conditionals().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, model);
    }

    #[test]
    fn from_parts_rejects_inconsistent_parts() {
        let view = correlated_view(300, 14);
        let mut rng = StdRng::seed_from_u64(15);
        let model = fit_fact_model(&view, 1, 2, &FactModelOptions::default(), &mut rng).unwrap();
        // Wrong arity.
        assert!(ConditionalFactModel::from_parts(
            2,
            model.network().clone(),
            model.conditionals().to_vec()
        )
        .is_err());
        // Dropped conditional.
        assert!(ConditionalFactModel::from_parts(
            1,
            model.network().clone(),
            model.conditionals()[1..].to_vec()
        )
        .is_err());
        // Mangled probability table.
        let mut conds = model.conditionals().to_vec();
        conds[0].probs.pop();
        assert!(ConditionalFactModel::from_parts(1, model.network().clone(), conds).is_err());
    }

    #[test]
    fn evidence_roots_are_never_modelled() {
        let view = correlated_view(500, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let model = fit_fact_model(&view, 1, 2, &FactModelOptions::default(), &mut rng).unwrap();
        // Network pair 0 is the evidence root with no parents; conditionals
        // cover only the two fact attributes.
        assert_eq!(model.network().pairs()[0].parents.len(), 0);
        assert_eq!(model.conditionals().len(), 2);
        assert!(model.conditionals().iter().all(|c| c.child >= 1));
    }
}
