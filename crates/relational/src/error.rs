//! Error type for the relational extension.

use std::fmt;

use privbayes::error::PrivBayesError;
use privbayes_data::DataError;

/// Errors raised while constructing relational schemas/datasets or running
/// relational synthesis.
#[derive(Debug)]
pub enum RelationalError {
    /// A foreign key referenced a nonexistent entity row.
    DanglingForeignKey {
        /// Index of the offending fact row.
        fact_row: usize,
        /// The owner index it referenced.
        owner: usize,
        /// Number of entity rows.
        entities: usize,
    },
    /// An individual owned more facts than the declared fan-out cap.
    FanoutExceeded {
        /// Entity row index.
        entity: usize,
        /// Number of facts owned.
        owned: usize,
        /// The declared cap.
        cap: usize,
    },
    /// Schema-level misconfiguration (empty schemas, name collisions,
    /// zero fan-out cap, invalid budgets).
    InvalidConfig(String),
    /// An underlying data-model failure.
    Data(DataError),
    /// An underlying PrivBayes failure.
    Core(PrivBayesError),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DanglingForeignKey { fact_row, owner, entities } => write!(
                f,
                "fact row {fact_row} references entity {owner}, but only {entities} entities exist"
            ),
            RelationalError::FanoutExceeded { entity, owned, cap } => {
                write!(f, "entity {entity} owns {owned} facts, exceeding the fan-out cap {cap}")
            }
            RelationalError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RelationalError::Data(e) => write!(f, "data: {e}"),
            RelationalError::Core(e) => write!(f, "privbayes: {e}"),
        }
    }
}

impl std::error::Error for RelationalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelationalError::Data(e) => Some(e),
            RelationalError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for RelationalError {
    fn from(e: DataError) -> Self {
        RelationalError::Data(e)
    }
}

impl From<PrivBayesError> for RelationalError {
    fn from(e: PrivBayesError) -> Self {
        RelationalError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_carry_indices() {
        let e = RelationalError::DanglingForeignKey { fact_row: 7, owner: 99, entities: 10 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("99") && s.contains("10"));

        let e = RelationalError::FanoutExceeded { entity: 3, owned: 9, cap: 5 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('5'));
    }

    #[test]
    fn error_is_std_error_with_source() {
        let e = RelationalError::Data(DataError::UnknownAttribute("x".into()));
        assert!(std::error::Error::source(&e).is_some());
        let e = RelationalError::InvalidConfig("boom".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
