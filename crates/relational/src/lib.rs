//! Multi-table extension of PrivBayes — the "natural next step" of the
//! paper's concluding remarks.
//!
//! The paper evaluates single-table databases where each individual affects
//! one row. This crate extends the release pipeline to a two-table
//! entity/fact schema with a bounded fan-out `m` (each individual owns at
//! most `m` fact rows) and keeps the privacy unit at the **individual**:
//!
//! * [`RelationalSchema`] / [`RelationalDataset`] model the two tables, the
//!   foreign key, and the fan-out cap, with eager validation;
//! * [`RelationalDataset::flatten_counts`] restores the single-row-per-
//!   individual regime for entity attributes (plus the owned-fact count);
//! * [`model`] fits a *conditional* PrivBayes model over the per-fact view
//!   under group privacy — every mechanism's budget is scaled by `m`,
//!   exactly the "more careful analysis" the paper calls for;
//! * [`RelationalPrivBayes`] composes both into an end-to-end
//!   `(ε_entity + ε_fact)`-DP synthesis of a complete two-table database;
//! * [`generator::clinic_benchmark`] provides a ground-truth relational
//!   workload for tests and the `ext_multitable` experiment.
//!
//! # Example
//!
//! ```
//! use privbayes_relational::{
//!     clinic_benchmark, RelationalOptions, RelationalPrivBayes,
//! };
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let data = clinic_benchmark(500, 3, 42);
//! let mut rng = StdRng::seed_from_u64(0);
//! let result = RelationalPrivBayes::new(RelationalOptions::new(2.0))
//!     .synthesize(&data, &mut rng)
//!     .unwrap();
//! assert_eq!(result.synthetic.n_entities(), 500);
//! assert!(result.synthetic.fanouts().iter().all(|&f| f <= 3));
//! ```

pub mod dataset;
pub mod error;
pub mod generator;
pub mod model;
pub mod schema;
pub mod synthesize;

pub use dataset::RelationalDataset;
pub use error::RelationalError;
pub use generator::clinic_benchmark;
pub use model::{fit_fact_model, ConditionalFactModel, FactModelOptions};
pub use schema::{RelationalSchema, EVENT_COUNT_ATTR};
pub use synthesize::{RelationalOptions, RelationalPrivBayes, RelationalSynthesis};
